//! Road-load force decomposition (the paper's Eq. 1–5).

use ev_units::{MetersPerSecond, Newtons};
use serde::{Deserialize, Serialize};

use crate::{VehicleParams, GRAVITY};

/// The decomposed longitudinal forces acting on the vehicle at one
/// operating point.
///
/// # Examples
///
/// ```
/// use ev_powertrain::{RoadLoad, VehicleParams};
/// use ev_units::MetersPerSecond;
///
/// let params = VehicleParams::nissan_leaf();
/// let load = RoadLoad::at(&params, MetersPerSecond::new(25.0), 0.0, 0.0);
/// // At highway speed, aero drag dominates rolling resistance.
/// assert!(load.aero.value() > load.rolling.value());
/// assert_eq!(load.grade.value(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoadLoad {
    /// Aerodynamic drag `F_aero` (Eq. 2).
    pub aero: Newtons,
    /// Gravitational (grade) force `F_gr` (Eq. 3); negative downhill.
    pub grade: Newtons,
    /// Rolling resistance `F_roll` (Eq. 4).
    pub rolling: Newtons,
    /// Inertial force `m·a` (the acceleration term of Eq. 5).
    pub inertial: Newtons,
}

impl RoadLoad {
    /// Evaluates all force components at speed `v`, acceleration `a`
    /// (m/s²) and road grade `slope_percent` (100 % = 45°).
    #[must_use]
    pub fn at(params: &VehicleParams, v: MetersPerSecond, a: f64, slope_percent: f64) -> Self {
        let m = params.mass.value();
        let v_air = v.value() + params.wind_speed.value();
        let aero = 0.5
            * params.air_density
            * params.drag_coefficient
            * params.frontal_area
            * v_air
            * v_air
            * v_air.signum();
        let grade = m * GRAVITY * (slope_percent / 100.0).atan().sin();
        // Rolling resistance opposes motion and vanishes at standstill.
        let rolling = if v.value() > 0.0 {
            m * GRAVITY * (params.rolling_c0 + params.rolling_c1 * v.value() * v.value())
        } else {
            0.0
        };
        Self {
            aero: Newtons::new(aero),
            grade: Newtons::new(grade),
            rolling: Newtons::new(rolling),
            inertial: Newtons::new(m * a),
        }
    }

    /// The road load `F_rd = F_gr + F_aero + F_roll` (Eq. 1).
    #[must_use]
    pub fn road(&self) -> Newtons {
        self.aero + self.grade + self.rolling
    }

    /// The tractive force `F_tr = F_rd + m·a` (Eq. 5) the motor must
    /// provide (negative = braking).
    #[must_use]
    pub fn tractive(&self) -> Newtons {
        self.road() + self.inertial
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf() -> VehicleParams {
        VehicleParams::nissan_leaf()
    }

    #[test]
    fn aero_drag_hand_calculation() {
        // ½·1.2041·0.28·2.27·25² = 239.2 N
        let load = RoadLoad::at(&leaf(), MetersPerSecond::new(25.0), 0.0, 0.0);
        let expected = 0.5 * 1.2041 * 0.28 * 2.27 * 625.0;
        assert!((load.aero.value() - expected).abs() < 1e-9);
    }

    #[test]
    fn aero_drag_includes_head_wind() {
        let params = VehicleParams::builder()
            .wind(MetersPerSecond::new(5.0))
            .build();
        let with_wind = RoadLoad::at(&params, MetersPerSecond::new(20.0), 0.0, 0.0);
        let calm = RoadLoad::at(&leaf(), MetersPerSecond::new(20.0), 0.0, 0.0);
        assert!(with_wind.aero.value() > calm.aero.value());
        // (25/20)² ratio.
        assert!((with_wind.aero.value() / calm.aero.value() - 625.0 / 400.0).abs() < 1e-9);
    }

    #[test]
    fn grade_force_hand_calculation() {
        // 5 % grade: sin(atan(0.05)) ≈ 0.049938.
        let load = RoadLoad::at(&leaf(), MetersPerSecond::new(10.0), 0.0, 5.0);
        let expected = 1625.0 * GRAVITY * (0.05f64).atan().sin();
        assert!((load.grade.value() - expected).abs() < 1e-9);
        // Downhill is negative.
        let down = RoadLoad::at(&leaf(), MetersPerSecond::new(10.0), 0.0, -5.0);
        assert!((down.grade.value() + expected).abs() < 1e-9);
    }

    #[test]
    fn hundred_percent_grade_is_45_degrees() {
        let load = RoadLoad::at(&leaf(), MetersPerSecond::new(1.0), 0.0, 100.0);
        let expected = 1625.0 * GRAVITY * (std::f64::consts::FRAC_PI_4).sin();
        assert!((load.grade.value() - expected).abs() < 1e-6);
    }

    #[test]
    fn rolling_resistance_vanishes_at_standstill() {
        let load = RoadLoad::at(&leaf(), MetersPerSecond::ZERO, 0.0, 0.0);
        assert_eq!(load.rolling.value(), 0.0);
        assert_eq!(load.road().value(), 0.0);
    }

    #[test]
    fn rolling_resistance_grows_with_speed_squared() {
        let slow = RoadLoad::at(&leaf(), MetersPerSecond::new(10.0), 0.0, 0.0);
        let fast = RoadLoad::at(&leaf(), MetersPerSecond::new(30.0), 0.0, 0.0);
        let c0 = 0.01;
        let c1 = 1.2e-6;
        let ratio = (c0 + c1 * 900.0) / (c0 + c1 * 100.0);
        assert!((fast.rolling.value() / slow.rolling.value() - ratio).abs() < 1e-9);
    }

    #[test]
    fn tractive_combines_all_terms() {
        let load = RoadLoad::at(&leaf(), MetersPerSecond::new(15.0), 1.0, 2.0);
        let sum = load.aero + load.grade + load.rolling + load.inertial;
        assert_eq!(load.tractive(), sum);
        assert!((load.inertial.value() - 1625.0).abs() < 1e-9);
    }

    #[test]
    fn braking_can_make_tractive_negative() {
        let load = RoadLoad::at(&leaf(), MetersPerSecond::new(15.0), -2.5, 0.0);
        assert!(load.tractive().value() < 0.0);
    }
}
