//! A small Mamdani fuzzy-inference engine.
//!
//! The paper's second baseline (its ref [10]) is a fuzzy temperature
//! controller; this module provides the inference machinery it needs:
//! triangular/trapezoidal membership functions, min–max Mamdani
//! composition and centroid defuzzification.

/// A membership function over a real universe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MembershipFunction {
    /// Triangle with feet at `a` and `c` and peak at `b`.
    Triangle {
        /// Left foot.
        a: f64,
        /// Peak.
        b: f64,
        /// Right foot.
        c: f64,
    },
    /// Trapezoid with feet at `a`/`d` and plateau `b..c`.
    Trapezoid {
        /// Left foot.
        a: f64,
        /// Plateau start.
        b: f64,
        /// Plateau end.
        c: f64,
        /// Right foot.
        d: f64,
    },
}

impl MembershipFunction {
    /// Degree of membership of `x`, in `[0, 1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ev_control::fuzzy::MembershipFunction;
    ///
    /// let tri = MembershipFunction::Triangle { a: 0.0, b: 1.0, c: 2.0 };
    /// assert_eq!(tri.degree(1.0), 1.0);
    /// assert_eq!(tri.degree(0.5), 0.5);
    /// assert_eq!(tri.degree(3.0), 0.0);
    /// ```
    #[must_use]
    pub fn degree(&self, x: f64) -> f64 {
        match *self {
            Self::Triangle { a, b, c } => {
                if x <= a || x >= c {
                    // A foot shared with the peak means a shoulder.
                    if (x <= a && a == b) || (x >= c && c == b) {
                        1.0
                    } else {
                        0.0
                    }
                } else if x <= b {
                    if b == a {
                        1.0
                    } else {
                        (x - a) / (b - a)
                    }
                } else if c == b {
                    1.0
                } else {
                    (c - x) / (c - b)
                }
            }
            Self::Trapezoid { a, b, c, d } => {
                if x < a || x > d {
                    0.0
                } else if x < b {
                    if b == a {
                        1.0
                    } else {
                        (x - a) / (b - a)
                    }
                } else if x <= c || d == c {
                    1.0
                } else {
                    (d - x) / (d - c)
                }
            }
        }
    }
}

/// A named linguistic term: a label plus its membership function.
#[derive(Debug, Clone, PartialEq)]
pub struct Term {
    /// The label (e.g. `"negative-large"`).
    pub label: &'static str,
    /// The membership function.
    pub mf: MembershipFunction,
}

/// A fuzzy rule: IF input₀ is term(i₀) AND input₁ is term(i₁) … THEN
/// output is term(o). Antecedent indices refer to each input variable's
/// term list; `None` means "don't care".
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// One optional term index per input variable.
    pub antecedents: Vec<Option<usize>>,
    /// Output term index.
    pub consequent: usize,
}

/// A Mamdani fuzzy system with any number of inputs and one output.
///
/// # Examples
///
/// ```
/// use ev_control::fuzzy::{FuzzyEngine, MembershipFunction, Rule, Term};
///
/// // One input (error in [−1, 1]) with two terms, one output (duty).
/// let neg = Term { label: "neg", mf: MembershipFunction::Triangle { a: -1.0, b: -1.0, c: 0.0 } };
/// let pos = Term { label: "pos", mf: MembershipFunction::Triangle { a: 0.0, b: 1.0, c: 1.0 } };
/// let engine = FuzzyEngine::new(
///     vec![vec![neg.clone(), pos.clone()]],
///     vec![neg, pos],
///     (-1.0, 1.0),
///     vec![
///         Rule { antecedents: vec![Some(0)], consequent: 0 },
///         Rule { antecedents: vec![Some(1)], consequent: 1 },
///     ],
/// );
/// assert!(engine.infer(&[0.8]) > 0.3);
/// assert!(engine.infer(&[-0.8]) < -0.3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzyEngine {
    inputs: Vec<Vec<Term>>,
    output_terms: Vec<Term>,
    output_universe: (f64, f64),
    rules: Vec<Rule>,
}

impl FuzzyEngine {
    /// Resolution of the centroid integration.
    const SAMPLES: usize = 101;

    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if there are no inputs, output terms or rules, if the
    /// output universe is empty, or if any rule index is out of range.
    #[must_use]
    pub fn new(
        inputs: Vec<Vec<Term>>,
        output_terms: Vec<Term>,
        output_universe: (f64, f64),
        rules: Vec<Rule>,
    ) -> Self {
        assert!(!inputs.is_empty(), "fuzzy engine needs at least one input");
        assert!(!output_terms.is_empty(), "fuzzy engine needs output terms");
        assert!(!rules.is_empty(), "fuzzy engine needs rules");
        assert!(
            output_universe.1 > output_universe.0,
            "output universe must be a non-empty interval"
        );
        for rule in &rules {
            assert_eq!(
                rule.antecedents.len(),
                inputs.len(),
                "rule antecedent count must match input count"
            );
            for (var, term) in rule.antecedents.iter().enumerate() {
                if let Some(t) = term {
                    assert!(*t < inputs[var].len(), "rule antecedent index out of range");
                }
            }
            assert!(
                rule.consequent < output_terms.len(),
                "rule consequent index out of range"
            );
        }
        Self {
            inputs,
            output_terms,
            output_universe,
            rules,
        }
    }

    /// Runs Mamdani inference (min AND, max aggregation, centroid
    /// defuzzification) for crisp input values.
    ///
    /// Returns the centroid of the aggregated output set, or the universe
    /// midpoint when no rule fires.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` does not match the number of inputs.
    #[must_use]
    pub fn infer(&self, values: &[f64]) -> f64 {
        assert_eq!(
            values.len(),
            self.inputs.len(),
            "fuzzy input count mismatch"
        );
        // Firing strength of each rule.
        let strengths: Vec<f64> = self
            .rules
            .iter()
            .map(|rule| {
                rule.antecedents
                    .iter()
                    .enumerate()
                    .filter_map(|(var, term)| {
                        term.map(|t| self.inputs[var][t].mf.degree(values[var]))
                    })
                    .fold(1.0, f64::min)
            })
            .collect();

        // Aggregate (max of clipped consequents) and take the centroid.
        let (lo, hi) = self.output_universe;
        let mut num = 0.0;
        let mut den = 0.0;
        for k in 0..Self::SAMPLES {
            let y = lo + (hi - lo) * (k as f64) / ((Self::SAMPLES - 1) as f64);
            let mut mu: f64 = 0.0;
            for (rule, &s) in self.rules.iter().zip(&strengths) {
                if s > 0.0 {
                    let clipped = s.min(self.output_terms[rule.consequent].mf.degree(y));
                    mu = mu.max(clipped);
                }
            }
            num += mu * y;
            den += mu;
        }
        if den == 0.0 {
            0.5 * (lo + hi)
        } else {
            num / den
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri(a: f64, b: f64, c: f64) -> MembershipFunction {
        MembershipFunction::Triangle { a, b, c }
    }

    #[test]
    fn triangle_degrees() {
        let m = tri(-1.0, 0.0, 2.0);
        assert_eq!(m.degree(-1.0), 0.0);
        assert_eq!(m.degree(0.0), 1.0);
        assert_eq!(m.degree(1.0), 0.5);
        assert_eq!(m.degree(2.0), 0.0);
        assert_eq!(m.degree(5.0), 0.0);
    }

    #[test]
    fn shoulder_triangles_saturate() {
        // Left shoulder: a == b.
        let left = tri(-1.0, -1.0, 0.0);
        assert_eq!(left.degree(-1.0), 1.0);
        assert_eq!(left.degree(-2.0), 1.0);
        assert_eq!(left.degree(-0.5), 0.5);
        // Right shoulder: b == c.
        let right = tri(0.0, 1.0, 1.0);
        assert_eq!(right.degree(1.0), 1.0);
        assert_eq!(right.degree(2.0), 1.0);
    }

    #[test]
    fn trapezoid_degrees() {
        let m = MembershipFunction::Trapezoid {
            a: 0.0,
            b: 1.0,
            c: 2.0,
            d: 4.0,
        };
        assert_eq!(m.degree(0.5), 0.5);
        assert_eq!(m.degree(1.5), 1.0);
        assert_eq!(m.degree(3.0), 0.5);
        assert_eq!(m.degree(5.0), 0.0);
    }

    fn two_term_engine() -> FuzzyEngine {
        let neg = Term {
            label: "neg",
            mf: tri(-1.0, -1.0, 0.0),
        };
        let pos = Term {
            label: "pos",
            mf: tri(0.0, 1.0, 1.0),
        };
        FuzzyEngine::new(
            vec![vec![neg.clone(), pos.clone()]],
            vec![neg, pos],
            (-1.0, 1.0),
            vec![
                Rule {
                    antecedents: vec![Some(0)],
                    consequent: 0,
                },
                Rule {
                    antecedents: vec![Some(1)],
                    consequent: 1,
                },
            ],
        )
    }

    #[test]
    fn inference_tracks_input_sign() {
        let e = two_term_engine();
        assert!(e.infer(&[0.9]) > 0.3);
        assert!(e.infer(&[-0.9]) < -0.3);
        // Balanced input fires both rules equally: centroid near zero.
        assert!(e.infer(&[0.0]).abs() < 0.05);
    }

    #[test]
    fn inference_is_monotone_for_monotone_rules() {
        let e = two_term_engine();
        let mut prev = f64::NEG_INFINITY;
        for k in 0..=20 {
            let x = -1.0 + 0.1 * f64::from(k);
            let y = e.infer(&[x]);
            assert!(y >= prev - 1e-9, "non-monotone at {x}");
            prev = y;
        }
    }

    #[test]
    fn dont_care_antecedents() {
        let any = Term {
            label: "any",
            mf: MembershipFunction::Trapezoid {
                a: -2.0,
                b: -1.0,
                c: 1.0,
                d: 2.0,
            },
        };
        let e = FuzzyEngine::new(
            vec![vec![any.clone()], vec![any.clone()]],
            vec![any],
            (0.0, 2.0),
            vec![Rule {
                antecedents: vec![None, Some(0)],
                consequent: 0,
            }],
        );
        // First input ignored entirely.
        assert_eq!(e.infer(&[99.0, 0.0]), e.infer(&[-99.0, 0.0]));
    }

    #[test]
    fn no_firing_returns_midpoint() {
        let narrow = Term {
            label: "narrow",
            mf: tri(0.4, 0.5, 0.6),
        };
        let e = FuzzyEngine::new(
            vec![vec![narrow.clone()]],
            vec![narrow],
            (0.0, 1.0),
            vec![Rule {
                antecedents: vec![Some(0)],
                consequent: 0,
            }],
        );
        assert_eq!(e.infer(&[-5.0]), 0.5);
    }

    #[test]
    #[should_panic(expected = "antecedent count")]
    fn rejects_malformed_rule() {
        let t = Term {
            label: "t",
            mf: tri(0.0, 0.5, 1.0),
        };
        let _ = FuzzyEngine::new(
            vec![vec![t.clone()], vec![t.clone()]],
            vec![t],
            (0.0, 1.0),
            vec![Rule {
                antecedents: vec![Some(0)],
                consequent: 0,
            }],
        );
    }
}
