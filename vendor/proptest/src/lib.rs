#![allow(clippy::all, clippy::pedantic, clippy::nursery, unnameable_test_items)]
//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access, so this workspace
//! vendors the slice of the proptest API its test suites use:
//! range/tuple/`prop_map`/`collection::vec` strategies, the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]`
//! header, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case panics with the generating
//!   arguments printed; it is already deterministic and reproducible
//!   because seeds derive from the test's module path and name.
//! - **No persistence files.** Reproducibility comes from determinism.

#![forbid(unsafe_code)]

// Let the crate's own tests spell paths the way downstream users do
// (`proptest::collection::vec`).
extern crate self as proptest;

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property is violated — the whole test fails.
    Fail(String),
    /// The inputs don't satisfy a precondition — resample.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// A rejection (e.g. from `prop_assume!`) with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fail(m) => write!(f, "test case failed: {m}"),
            Self::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Deterministic per-case random source (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a float in `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns an integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "cannot sample an empty range");
        self.next_u64() % n
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Drives one property: samples cases until `cfg.cases` are accepted,
/// panicking (with the generating arguments) on the first failure.
///
/// Called by the [`proptest!`] macro; not part of the public proptest
/// API but must be `pub` for the macro expansion.
///
/// # Panics
///
/// Panics when a case fails or when too many cases are rejected.
pub fn run_proptest<F>(cfg: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    // FNV-1a over the fully qualified test name: deterministic seeds
    // that still differ between tests.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }

    let mut accepted: u32 = 0;
    let mut attempts: u64 = 0;
    let max_attempts = u64::from(cfg.cases).saturating_mul(20).max(1000);
    while accepted < cfg.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "{name}: too many rejected cases ({attempts} attempts for {accepted} accepted)"
        );
        let mut rng = TestRng::from_seed(seed.wrapping_add(attempts.wrapping_mul(0x9E37)));
        let (args, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed: {msg}\n  inputs: {args}")
            }
        }
    }
}

/// Declares deterministic property tests.
///
/// Supports an optional `#![proptest_config(expr)]` header followed by
/// any number of `#[test] fn name(arg in strategy, ...) { body }`
/// items. The body may use `?` on `Result<_, TestCaseError>` and the
/// `prop_assert*`/`prop_assume!` macros.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::run_proptest(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
                |rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), rng);)*
                    let args_debug = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&format!("{:?}, ", &$arg));
                        )*
                        s
                    };
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    (args_debug, outcome)
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking directly) so the harness can report the inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Rejects the current case when a precondition doesn't hold; the
/// harness resamples instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                ::std::string::String::from(concat!("assumption failed: ", stringify!($cond))),
            ));
        }
    };
}

/// The common imports (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.0f64..3.0, n in 1usize..5) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_size(v in proptest::collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (0.0f64..1.0, 10.0f64..20.0).prop_map(|(a, b)| a + b),
        ) {
            prop_assert!((10.0..21.0).contains(&pair));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0.0f64..1.0) {
            prop_assume!(x > 0.1);
            prop_assert!(x > 0.1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::TestRng::from_seed(5);
        let mut b = super::TestRng::from_seed(5);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #[test]
            fn inner(x in 0.0f64..1.0) {
                prop_assert!(x < 0.0, "x was {x}");
            }
        }
        inner();
    }
}
