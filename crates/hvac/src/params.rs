//! Cabin and HVAC machine parameters.

use ev_units::{Celsius, JoulesPerKelvin, JoulesPerKgKelvin, KgPerSecond, Watts, WattsPerKelvin};
use serde::{Deserialize, Serialize};

/// Thermal parameters of the cabin (zone) — the paper's Eq. 7–8 constants.
///
/// Defaults describe a compact-EV cabin (i-MiEV/Leaf class, the systems the
/// paper's HVAC references \[8\]\[9\] are calibrated on): a lumped thermal
/// capacitance covering air, walls and seats, and a single conductance to
/// the outside.
///
/// # Examples
///
/// ```
/// use ev_hvac::CabinParams;
///
/// let cabin = CabinParams::default();
/// assert!(cabin.thermal_capacitance.value() > 1e4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CabinParams {
    /// Lumped thermal capacitance `Mc` of air, walls and seats (J/K).
    pub thermal_capacitance: JoulesPerKelvin,
    /// Specific heat of air `cp` (J/(kg·K)).
    pub air_heat_capacity: JoulesPerKgKelvin,
    /// Wall heat-exchange conductance `cx·Ax` (W/K).
    pub shell_conductance: WattsPerKelvin,
}

impl Default for CabinParams {
    fn default() -> Self {
        Self {
            thermal_capacitance: JoulesPerKelvin::new(8.0e4),
            air_heat_capacity: JoulesPerKgKelvin::new(1006.0),
            shell_conductance: WattsPerKelvin::new(55.0),
        }
    }
}

impl CabinParams {
    /// Creates parameters, validating positivity.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is not strictly positive.
    #[must_use]
    pub fn new(
        thermal_capacitance: JoulesPerKelvin,
        air_heat_capacity: JoulesPerKgKelvin,
        shell_conductance: WattsPerKelvin,
    ) -> Self {
        assert!(
            thermal_capacitance.value() > 0.0,
            "thermal capacitance must be positive"
        );
        assert!(
            air_heat_capacity.value() > 0.0,
            "air heat capacity must be positive"
        );
        assert!(
            shell_conductance.value() > 0.0,
            "shell conductance must be positive"
        );
        Self {
            thermal_capacitance,
            air_heat_capacity,
            shell_conductance,
        }
    }
}

/// Machine limits and efficiencies of the VAV HVAC unit — the constants of
/// the paper's Eq. 10–12 and constraint set C1–C10.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HvacParams {
    /// Minimum supply air flow `ṁ̲z` (C1 lower bound).
    pub min_flow: KgPerSecond,
    /// Maximum supply air flow `ṁ̄z` (C1 upper bound).
    pub max_flow: KgPerSecond,
    /// Heating-process efficiency `ηh` (Eq. 10).
    pub heater_efficiency: f64,
    /// Cooling-process efficiency `ηc` (Eq. 11).
    pub cooler_efficiency: f64,
    /// Fan constant `kf` (W·s²/kg², Eq. 12).
    pub fan_coefficient: f64,
    /// Minimum cooling-coil outlet temperature `T̲c` (C5).
    pub min_coil_temp: Celsius,
    /// Maximum heater outlet temperature `T̄h` (C6).
    pub max_supply_temp: Celsius,
    /// Maximum recirculated-air fraction `d̄r` (C7).
    pub max_recirculation: f64,
    /// Heater maximum power `P̄h` (C8).
    pub max_heating_power: Watts,
    /// Cooler maximum power `P̄c` (C9).
    pub max_cooling_power: Watts,
    /// Fan maximum power `P̄m` (C10).
    pub max_fan_power: Watts,
}

impl Default for HvacParams {
    fn default() -> Self {
        Self {
            min_flow: KgPerSecond::new(0.02),
            max_flow: KgPerSecond::new(0.25),
            heater_efficiency: 0.90,
            cooler_efficiency: 0.85,
            fan_coefficient: 4800.0,
            min_coil_temp: Celsius::new(4.0),
            max_supply_temp: Celsius::new(60.0),
            max_recirculation: 0.70,
            max_heating_power: Watts::new(6000.0),
            max_cooling_power: Watts::new(6000.0),
            max_fan_power: Watts::new(500.0),
        }
    }
}

impl HvacParams {
    /// Validates the parameter set for internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if efficiencies are outside `(0, 1]`, flows are inverted or
    /// non-positive, or temperature limits are inverted.
    #[must_use]
    pub fn validated(self) -> Self {
        assert!(
            self.heater_efficiency > 0.0 && self.heater_efficiency <= 1.0,
            "heater efficiency must lie in (0, 1]"
        );
        assert!(
            self.cooler_efficiency > 0.0 && self.cooler_efficiency <= 1.0,
            "cooler efficiency must lie in (0, 1]"
        );
        assert!(
            self.min_flow.value() > 0.0 && self.max_flow.value() > self.min_flow.value(),
            "flow limits must satisfy 0 < min < max"
        );
        assert!(
            self.min_coil_temp < self.max_supply_temp,
            "coil temperature limits are inverted"
        );
        assert!(
            (0.0..=1.0).contains(&self.max_recirculation),
            "recirculation limit must lie in [0, 1]"
        );
        assert!(
            self.fan_coefficient > 0.0,
            "fan coefficient must be positive"
        );
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_self_consistent() {
        let p = HvacParams::default().validated();
        assert!(p.max_flow.value() > p.min_flow.value());
        // At max flow the fan stays within its power cap.
        let pf = p.fan_coefficient * p.max_flow.value().powi(2);
        assert!(pf <= p.max_fan_power.value());
    }

    #[test]
    fn cabin_defaults_plausible() {
        let c = CabinParams::default();
        // Passive time constant Mc/(cx·Ax) of a parked car: tens of minutes.
        let tau = c.thermal_capacitance.value() / c.shell_conductance.value();
        assert!(tau > 1200.0 && tau < 14400.0, "tau {tau}");
    }

    #[test]
    #[should_panic(expected = "capacitance must be positive")]
    fn cabin_rejects_zero_capacitance() {
        let _ = CabinParams::new(
            JoulesPerKelvin::ZERO,
            JoulesPerKgKelvin::new(1006.0),
            WattsPerKelvin::new(25.0),
        );
    }

    #[test]
    #[should_panic(expected = "flow limits")]
    fn params_reject_inverted_flows() {
        let p = HvacParams {
            min_flow: KgPerSecond::new(0.3),
            ..HvacParams::default()
        };
        let _ = p.validated();
    }

    #[test]
    #[should_panic(expected = "(0, 1]")]
    fn params_reject_bad_efficiency() {
        let p = HvacParams {
            cooler_efficiency: 1.2,
            ..HvacParams::default()
        };
        let _ = p.validated();
    }
}
