//! Battery pack parameters and the open-circuit-voltage curve.

use ev_units::{AmpereHours, Amperes, KilowattHours, Ohms, Percent, Volts};
use serde::{Deserialize, Serialize};

/// Open-circuit voltage as a piecewise-linear function of SoC.
///
/// # Examples
///
/// ```
/// use ev_battery::OcvCurve;
/// use ev_units::Percent;
///
/// let curve = OcvCurve::leaf_pack();
/// let v_low = curve.voltage(Percent::new(10.0));
/// let v_high = curve.voltage(Percent::new(90.0));
/// assert!(v_high.value() > v_low.value());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OcvCurve {
    /// `(SoC %, volts)` breakpoints, ascending in SoC.
    points: Vec<(f64, f64)>,
}

impl OcvCurve {
    /// Creates a curve from `(SoC %, V)` breakpoints.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two points are given, SoC values are not
    /// strictly ascending, or any voltage is non-positive.
    #[must_use]
    pub fn from_breakpoints(points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "ocv curve needs at least two points");
        let mut prev = f64::NEG_INFINITY;
        for &(soc, v) in points {
            assert!(soc > prev, "ocv soc values must strictly ascend");
            assert!(v > 0.0, "ocv voltage must be positive");
            prev = soc;
        }
        Self {
            points: points.to_vec(),
        }
    }

    /// The 96s2p Leaf pack: ≈300 V empty to ≈403 V full, with the typical
    /// flat mid-SoC plateau of a manganese-oxide chemistry.
    #[must_use]
    pub fn leaf_pack() -> Self {
        Self::from_breakpoints(&[
            (0.0, 300.0),
            (10.0, 340.0),
            (20.0, 355.0),
            (50.0, 370.0),
            (80.0, 385.0),
            (90.0, 394.0),
            (100.0, 403.0),
        ])
    }

    /// Interpolated open-circuit voltage at the given SoC (clamped).
    #[must_use]
    pub fn voltage(&self, soc: Percent) -> Volts {
        let s = soc.value();
        let pts = &self.points;
        if s <= pts[0].0 {
            return Volts::new(pts[0].1);
        }
        let last = pts[pts.len() - 1];
        if s >= last.0 {
            return Volts::new(last.1);
        }
        let idx = pts.partition_point(|&(p, _)| p <= s);
        let (s0, v0) = pts[idx - 1];
        let (s1, v1) = pts[idx];
        Volts::new(v0 + (s - s0) / (s1 - s0) * (v1 - v0))
    }
}

/// Parameters of the traction battery pack — the constants of the paper's
/// Eq. 13–14 plus the terminal-voltage model used to convert power into
/// current.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatteryParams {
    /// Nominal capacity `Cn`, measured at the nominal current.
    pub nominal_capacity: AmpereHours,
    /// Nominal (rated) current `In` at which `Cn` was measured.
    pub nominal_current: Amperes,
    /// Peukert constant `pc` (1.0 = ideal; Li-ion ≈ 1.03–1.15).
    pub peukert_constant: f64,
    /// Open-circuit voltage curve.
    pub ocv: OcvCurve,
    /// Internal (pack) resistance.
    pub internal_resistance: Ohms,
    /// Coulombic efficiency applied to charge (regeneration) current.
    pub charge_efficiency: f64,
    /// Initial state of charge at the start of a drive.
    pub initial_soc: Percent,
    /// SoC floor below which the BMS cuts discharge.
    pub min_soc: Percent,
    /// SoC ceiling above which the BMS refuses charge.
    pub max_soc: Percent,
}

impl BatteryParams {
    /// The Nissan Leaf 24 kWh pack: 66.2 Ah at 360 V nominal, C/3 rated
    /// current, mild Peukert exponent typical of Li-ion.
    #[must_use]
    pub fn leaf_24kwh() -> Self {
        Self {
            nominal_capacity: KilowattHours::new(24.0).to_ampere_hours(Volts::new(360.0)),
            nominal_current: Amperes::new(22.0),
            peukert_constant: 1.10,
            ocv: OcvCurve::leaf_pack(),
            internal_resistance: Ohms::new(0.10),
            charge_efficiency: 0.95,
            initial_soc: Percent::new(95.0),
            min_soc: Percent::new(10.0),
            max_soc: Percent::new(100.0),
        }
    }

    /// Validates the parameter set.
    ///
    /// # Panics
    ///
    /// Panics if capacities/currents are non-positive, the Peukert
    /// constant is below 1, efficiencies are outside `(0, 1]`, or SoC
    /// limits are inconsistent.
    #[must_use]
    pub fn validated(self) -> Self {
        assert!(
            self.nominal_capacity.value() > 0.0,
            "capacity must be positive"
        );
        assert!(
            self.nominal_current.value() > 0.0,
            "nominal current must be positive"
        );
        assert!(
            self.peukert_constant >= 1.0,
            "peukert constant must be >= 1"
        );
        assert!(
            self.charge_efficiency > 0.0 && self.charge_efficiency <= 1.0,
            "charge efficiency must lie in (0, 1]"
        );
        assert!(
            self.internal_resistance.value() >= 0.0,
            "resistance must be non-negative"
        );
        assert!(
            self.min_soc.value() < self.max_soc.value(),
            "soc limits are inverted"
        );
        assert!(
            self.initial_soc.value() >= self.min_soc.value()
                && self.initial_soc.value() <= self.max_soc.value(),
            "initial soc outside limits"
        );
        self
    }
}

impl Default for BatteryParams {
    fn default() -> Self {
        Self::leaf_24kwh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_capacity_matches_energy() {
        let p = BatteryParams::leaf_24kwh().validated();
        assert!((p.nominal_capacity.value() - 66.667).abs() < 0.1);
    }

    #[test]
    fn ocv_interpolates_and_clamps() {
        let c = OcvCurve::leaf_pack();
        assert_eq!(c.voltage(Percent::new(-5.0)).value(), 300.0);
        assert_eq!(c.voltage(Percent::new(150.0)).value(), 403.0);
        let mid = c.voltage(Percent::new(35.0)).value();
        assert!((mid - (355.0 + 370.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn ocv_is_monotone_for_leaf() {
        let c = OcvCurve::leaf_pack();
        let mut prev = 0.0;
        for s in 0..=100 {
            let v = c.voltage(Percent::new(f64::from(s))).value();
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascend")]
    fn ocv_rejects_unsorted() {
        let _ = OcvCurve::from_breakpoints(&[(50.0, 370.0), (10.0, 340.0)]);
    }

    #[test]
    #[should_panic(expected = "peukert")]
    fn rejects_sub_unity_peukert() {
        let p = BatteryParams {
            peukert_constant: 0.9,
            ..BatteryParams::leaf_24kwh()
        };
        let _ = p.validated();
    }

    #[test]
    #[should_panic(expected = "initial soc")]
    fn rejects_initial_soc_outside_limits() {
        let p = BatteryParams {
            initial_soc: Percent::new(5.0),
            ..BatteryParams::leaf_24kwh()
        };
        let _ = p.validated();
    }
}
