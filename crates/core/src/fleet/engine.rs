//! The sharded fleet engine: shared-nothing session workers behind
//! bounded command queues.
//!
//! Vehicle ids are hash-partitioned onto `N` shards. Each shard is one
//! OS thread owning a [`Slab`] of [`VehicleSession`]s and consuming a
//! [`BoundedQueue`] of commands — no session state is ever shared
//! between shards, so there are no per-step locks: a vehicle's commands
//! execute in submission order on its home shard, and the MPC warm
//! start cached inside its controller is only ever touched by that
//! shard's thread.
//!
//! Backpressure is explicit at the submission boundary:
//! [`FleetEngine::step`] *parks* the caller while the home shard's
//! queue is full, [`FleetEngine::try_step`] *sheds* (returns
//! [`FleetError::Shed`]). Either way the queue never exceeds its
//! configured capacity.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use ev_telemetry::{Counter, Gauge, Histogram, HistogramSpec, Registry};

use crate::params::{ControllerKind, ControllerSetup};
use crate::sim::Simulation;
use crate::EvParams;

use super::bounded::{BoundedQueue, TryPushError};
use super::pool::available_workers;
use super::session::{SessionSummary, VehicleSession};
use super::slab::Slab;

/// Configuration for [`FleetEngine::new`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Shard (worker thread) count; `0` = the machine's available
    /// parallelism.
    pub shards: usize,
    /// Per-shard command-queue bound (the backpressure window).
    pub queue_capacity: usize,
    /// Vehicle parameters every instantiated controller uses.
    pub params: EvParams,
    /// Observability wiring shared by all sessions. Point
    /// `setup.telemetry` at an enabled [`Registry`] to get fleet-wide
    /// merged metrics (solve-latency histograms, warm-start counters)
    /// for the scrape endpoint.
    pub setup: ControllerSetup,
}

impl FleetConfig {
    /// A config with automatic sharding and a 256-command window.
    #[must_use]
    pub fn new(params: EvParams) -> Self {
        Self {
            shards: 0,
            queue_capacity: 256,
            params,
            setup: ControllerSetup::default(),
        }
    }
}

/// Why a fleet submission failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// `try_step` found the home shard's queue full; the command was
    /// shed, the caller decides whether to retry, park or drop.
    Shed,
    /// The engine is shutting down; no further commands are accepted.
    ShuttingDown,
    /// The vehicle has no open session on its home shard.
    UnknownSession(u64),
    /// The vehicle already has an open session.
    SessionExists(u64),
    /// Controller instantiation failed (only possible with pathological
    /// overrides, e.g. a zero SQP iteration cap).
    Controller(String),
}

impl core::fmt::Display for FleetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FleetError::Shed => f.write_str("command shed: shard queue full"),
            FleetError::ShuttingDown => f.write_str("fleet engine is shutting down"),
            FleetError::UnknownSession(id) => write!(f, "no open session for vehicle {id}"),
            FleetError::SessionExists(id) => write!(f, "vehicle {id} already has a session"),
            FleetError::Controller(msg) => write!(f, "controller instantiation failed: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// Commands a shard consumes, in strict submission order per shard.
enum Command {
    Open {
        vehicle_id: u64,
        sim: Arc<Simulation>,
        kind: ControllerKind,
    },
    Step {
        vehicle_id: u64,
        steps: usize,
    },
    /// Run the vehicle's current drive to the end of its profile.
    Drain {
        vehicle_id: u64,
    },
    Reset {
        vehicle_id: u64,
        sim: Arc<Simulation>,
    },
    Close {
        vehicle_id: u64,
        reply: mpsc::Sender<Result<SessionSummary, FleetError>>,
    },
    Query {
        vehicle_id: u64,
        reply: mpsc::Sender<Result<SessionSummary, FleetError>>,
    },
    /// Barrier: the shard replies once every earlier command has run.
    Sync {
        reply: mpsc::Sender<()>,
    },
    /// Test-only: block the shard until the receiver yields, so tests
    /// can fill its queue deterministically.
    #[cfg(test)]
    Park(mpsc::Receiver<()>),
}

/// Counters one shard accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Plant steps executed.
    pub steps: u64,
    /// Sessions opened.
    pub opened: u64,
    /// Sessions closed.
    pub closed: u64,
    /// Session resets (drive handovers, warm starts invalidated).
    pub resets: u64,
    /// Drives stepped all the way to the end of their profile.
    pub finished_drives: u64,
    /// Commands rejected (unknown vehicle, duplicate open, bad
    /// controller config).
    pub rejected: u64,
}

impl ShardStats {
    fn merge(&mut self, other: &ShardStats) {
        self.steps += other.steps;
        self.opened += other.opened;
        self.closed += other.closed;
        self.resets += other.resets;
        self.finished_drives += other.finished_drives;
        self.rejected += other.rejected;
    }
}

/// Aggregate counters returned by [`FleetEngine::shutdown`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Sum over all shards.
    pub total: ShardStats,
    /// Per-shard breakdown (index = shard).
    pub per_shard: Vec<ShardStats>,
}

struct Shard {
    queue: Arc<BoundedQueue<Command>>,
    worker: JoinHandle<ShardStats>,
    /// Submission-side backpressure metrics, labeled `{shard="i"}`:
    /// depth of this shard's queue, commands that had to park, commands
    /// shed by `try_step`. Updated at the submission boundary because
    /// that is where parking and shedding happen.
    queue_depth: Gauge,
    parked_total: Counter,
    shed_total: Counter,
}

/// The fleet engine. See the module docs for the sharding and
/// backpressure model.
pub struct FleetEngine {
    shards: Vec<Shard>,
    registry: Registry,
}

impl FleetEngine {
    /// Spawns the shard workers and returns the engine handle.
    ///
    /// # Panics
    ///
    /// Panics if `config.queue_capacity` is zero.
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        let n = if config.shards == 0 {
            available_workers()
        } else {
            config.shards
        };
        let registry = config.setup.telemetry.clone();
        let shards = (0..n)
            .map(|i| {
                let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
                let worker_queue = Arc::clone(&queue);
                let params = config.params.clone();
                // Everything a shard mints — engine counters, command
                // latencies, and through the controller factory every
                // MPC solve-outcome counter — carries this shard label.
                let shard_registry = registry.scoped(&[("shard", &i.to_string())]);
                let setup = ControllerSetup {
                    telemetry: shard_registry.clone(),
                    ..config.setup.clone()
                };
                let worker = std::thread::Builder::new()
                    .name(format!("fleet-shard-{i}"))
                    .spawn(move || shard_main(&worker_queue, &params, &setup, i))
                    .expect("spawning a fleet shard worker");
                Shard {
                    queue,
                    worker,
                    queue_depth: shard_registry.gauge("fleet_queue_depth"),
                    parked_total: shard_registry.counter("fleet_commands_parked_total"),
                    shed_total: shard_registry.counter("fleet_commands_shed_total"),
                }
            })
            .collect();
        Self { shards, registry }
    }

    /// Number of shards (worker threads).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The telemetry registry all sessions record into.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Total commands currently queued across all shards (racy,
    /// diagnostics only).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    fn shard_of(&self, vehicle_id: u64) -> &Shard {
        // Fibonacci mix so dense id ranges still spread evenly, then a
        // modulo onto the (not necessarily power-of-two) shard count.
        let mixed = vehicle_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let idx = (mixed % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    fn submit(&self, vehicle_id: u64, cmd: Command) -> Result<(), FleetError> {
        let shard = self.shard_of(vehicle_id);
        match shard.queue.push(cmd) {
            Ok(parked) => {
                if parked {
                    shard.parked_total.inc();
                }
                shard.queue_depth.set(shard.queue.len() as f64);
                Ok(())
            }
            Err(_) => Err(FleetError::ShuttingDown),
        }
    }

    /// Opens a session for `vehicle_id`: the home shard instantiates a
    /// private controller of `kind` and a fresh plant on `sim`.
    /// Fire-and-forget; parks while the shard queue is full. A
    /// duplicate open is rejected shard-side (visible in the stats and
    /// via [`query`](Self::query)).
    ///
    /// # Errors
    ///
    /// [`FleetError::ShuttingDown`] after [`shutdown`](Self::shutdown)
    /// has begun.
    pub fn open(
        &self,
        vehicle_id: u64,
        sim: Arc<Simulation>,
        kind: ControllerKind,
    ) -> Result<(), FleetError> {
        self.submit(
            vehicle_id,
            Command::Open {
                vehicle_id,
                sim,
                kind,
            },
        )
    }

    /// Advances `vehicle_id` by `steps` plant steps, **parking** while
    /// the home shard's queue is full.
    ///
    /// # Errors
    ///
    /// [`FleetError::ShuttingDown`] once the engine is closing.
    pub fn step(&self, vehicle_id: u64, steps: usize) -> Result<(), FleetError> {
        self.submit(vehicle_id, Command::Step { vehicle_id, steps })
    }

    /// Advances `vehicle_id` by `steps` plant steps, **shedding**
    /// (returning [`FleetError::Shed`]) if the home shard's queue is
    /// full right now. Never blocks.
    ///
    /// # Errors
    ///
    /// [`FleetError::Shed`] on a full queue, [`FleetError::ShuttingDown`]
    /// once the engine is closing.
    pub fn try_step(&self, vehicle_id: u64, steps: usize) -> Result<(), FleetError> {
        let shard = self.shard_of(vehicle_id);
        match shard.queue.try_push(Command::Step { vehicle_id, steps }) {
            Ok(()) => {
                shard.queue_depth.set(shard.queue.len() as f64);
                Ok(())
            }
            Err(TryPushError::Full(_)) => {
                shard.shed_total.inc();
                Err(FleetError::Shed)
            }
            Err(TryPushError::Closed(_)) => Err(FleetError::ShuttingDown),
        }
    }

    /// Runs `vehicle_id`'s current drive to the end of its profile.
    ///
    /// # Errors
    ///
    /// [`FleetError::ShuttingDown`] once the engine is closing.
    pub fn drain(&self, vehicle_id: u64) -> Result<(), FleetError> {
        self.submit(vehicle_id, Command::Drain { vehicle_id })
    }

    /// Hands `vehicle_id`'s slot to a new drive on `sim`, invalidating
    /// all controller state tied to the previous trajectory.
    ///
    /// # Errors
    ///
    /// [`FleetError::ShuttingDown`] once the engine is closing.
    pub fn reset(&self, vehicle_id: u64, sim: Arc<Simulation>) -> Result<(), FleetError> {
        self.submit(vehicle_id, Command::Reset { vehicle_id, sim })
    }

    /// Closes `vehicle_id`'s session and returns its final summary.
    /// Blocks until the shard has processed every earlier command for
    /// that vehicle.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownSession`] if no session is open,
    /// [`FleetError::ShuttingDown`] once the engine is closing.
    pub fn close(&self, vehicle_id: u64) -> Result<SessionSummary, FleetError> {
        let (reply, rx) = mpsc::channel();
        self.submit(vehicle_id, Command::Close { vehicle_id, reply })?;
        rx.recv().map_err(|_| FleetError::ShuttingDown)?
    }

    /// Returns a point-in-time summary of `vehicle_id`'s session
    /// without closing it.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownSession`] if no session is open,
    /// [`FleetError::ShuttingDown`] once the engine is closing.
    pub fn query(&self, vehicle_id: u64) -> Result<SessionSummary, FleetError> {
        let (reply, rx) = mpsc::channel();
        self.submit(vehicle_id, Command::Query { vehicle_id, reply })?;
        rx.recv().map_err(|_| FleetError::ShuttingDown)?
    }

    /// Barrier: returns once every command submitted before this call
    /// has been executed on every shard.
    pub fn sync(&self) {
        let receivers: Vec<mpsc::Receiver<()>> = self
            .shards
            .iter()
            .filter_map(|s| {
                let (reply, rx) = mpsc::channel();
                s.queue.push(Command::Sync { reply }).ok().map(|_| rx)
            })
            .collect();
        for rx in receivers {
            let _ = rx.recv();
        }
    }

    /// Shuts the engine down: closes every queue, lets the shards drain
    /// what was already accepted, joins them, folds the final counters
    /// into the registry as `fleet_shutdown_*_final` gauges (so a last
    /// scrape after drain reflects the true totals) and returns the
    /// merged counters.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker itself panicked (a bug: sessions never
    /// run user code outside controller implementations).
    #[must_use]
    pub fn shutdown(self) -> FleetStats {
        for shard in &self.shards {
            shard.queue.close();
        }
        let per_shard: Vec<ShardStats> = self
            .shards
            .into_iter()
            .map(|s| s.worker.join().expect("fleet shard worker panicked"))
            .collect();
        let mut total = ShardStats::default();
        for stats in &per_shard {
            total.merge(stats);
        }
        let final_gauge = |name: &str, v: u64| self.registry.gauge(name).set(v as f64);
        final_gauge("fleet_shutdown_steps_final", total.steps);
        final_gauge("fleet_shutdown_sessions_final", total.closed);
        final_gauge("fleet_shutdown_sessions_opened_final", total.opened);
        final_gauge(
            "fleet_shutdown_finished_drives_final",
            total.finished_drives,
        );
        final_gauge("fleet_shutdown_rejected_final", total.rejected);
        for (i, stats) in per_shard.iter().enumerate() {
            self.registry
                .gauge_with(
                    "fleet_shutdown_shard_steps_final",
                    &[("shard", &i.to_string())],
                )
                .set(stats.steps as f64);
        }
        FleetStats { total, per_shard }
    }
}

/// One shard's event loop: pop commands until the queue closes, then
/// report lifetime counters. `setup.telemetry` arrives pre-scoped with
/// this shard's label, so everything minted here — and every metric the
/// controller factory mints per session — is a per-shard series.
fn shard_main(
    queue: &BoundedQueue<Command>,
    params: &EvParams,
    setup: &ControllerSetup,
    shard_index: usize,
) -> ShardStats {
    let mut sessions: Slab<VehicleSession> = Slab::with_capacity(64);
    let mut by_vehicle: HashMap<u64, usize> = HashMap::new();
    let mut stats = ShardStats::default();
    let steps_total = setup.telemetry.counter("fleet_steps_total");
    let opened_total = setup.telemetry.counter("fleet_sessions_opened_total");
    let closed_total = setup.telemetry.counter("fleet_sessions_closed_total");
    let resets_total = setup.telemetry.counter("fleet_session_resets_total");
    let live_sessions = setup.telemetry.gauge("fleet_live_sessions");
    // Consumer-side view of the same depth gauge the submitters set:
    // identical (name, labels) key → shared storage.
    let queue_depth = setup.telemetry.gauge("fleet_queue_depth");
    let cmd_seconds = |cmd: &str| -> Histogram {
        setup.telemetry.histogram_with(
            "fleet_cmd_seconds",
            HistogramSpec::latency_seconds(),
            &[("cmd", cmd)],
        )
    };
    let open_seconds = cmd_seconds("open");
    let step_seconds = cmd_seconds("step");
    let drain_seconds = cmd_seconds("drain");
    let reset_seconds = cmd_seconds("reset");
    let close_seconds = cmd_seconds("close");
    let query_seconds = cmd_seconds("query");
    // Trace span names (ids resolve to 0 on a disabled ring).
    let t_session = setup.trace.intern("session");
    let t_step = setup.trace.intern("step");
    let t_drain = setup.trace.intern("drain");

    while let Some(cmd) = queue.pop() {
        queue_depth.set(queue.len() as f64);
        match cmd {
            Command::Open {
                vehicle_id,
                sim,
                kind,
            } => {
                let _lat = open_seconds.start_span();
                if by_vehicle.contains_key(&vehicle_id) {
                    stats.rejected += 1;
                    continue;
                }
                // The per-session sampling decision happens here: an
                // unsampled vehicle gets a disabled ring and its whole
                // session (controller solve spans included) stays out
                // of the capture.
                let session_trace = setup.trace.scoped(shard_index as u64, vehicle_id);
                let session_setup = ControllerSetup {
                    trace: session_trace.clone(),
                    ..setup.clone()
                };
                match kind.instantiate_configured(params, &session_setup) {
                    Ok(controller) => {
                        session_trace.begin(t_session);
                        let key = sessions.insert(
                            VehicleSession::new(vehicle_id, sim, controller)
                                .with_trace(session_trace),
                        );
                        by_vehicle.insert(vehicle_id, key);
                        stats.opened += 1;
                        opened_total.inc();
                        live_sessions.add(1.0);
                    }
                    Err(_) => stats.rejected += 1,
                }
            }
            Command::Step { vehicle_id, steps } => {
                let lat = step_seconds.start_span();
                let Some(session) = by_vehicle
                    .get(&vehicle_id)
                    .and_then(|&key| sessions.get_mut(key))
                else {
                    stats.rejected += 1;
                    continue;
                };
                let trace_span = session.trace().span(t_step);
                let was_finished = session.finished();
                let ran = session.step_many(steps);
                // The latency observation carries the trace span that
                // produced it: a slow-bucket exemplar in
                // fleet_cmd_seconds resolves to this exact step in the
                // Chrome-trace export.
                lat.finish_with_exemplar(trace_span.finish_id());
                stats.steps += ran as u64;
                steps_total.add(ran as u64);
                if !was_finished && session.finished() {
                    stats.finished_drives += 1;
                }
            }
            Command::Drain { vehicle_id } => {
                let lat = drain_seconds.start_span();
                let Some(session) = by_vehicle
                    .get(&vehicle_id)
                    .and_then(|&key| sessions.get_mut(key))
                else {
                    stats.rejected += 1;
                    continue;
                };
                let trace_span = session.trace().span(t_drain);
                let was_finished = session.finished();
                let ran = session.step_many(usize::MAX);
                lat.finish_with_exemplar(trace_span.finish_id());
                stats.steps += ran as u64;
                steps_total.add(ran as u64);
                if !was_finished {
                    stats.finished_drives += 1;
                }
            }
            Command::Reset { vehicle_id, sim } => {
                let _lat = reset_seconds.start_span();
                let Some(session) = by_vehicle
                    .get(&vehicle_id)
                    .and_then(|&key| sessions.get_mut(key))
                else {
                    stats.rejected += 1;
                    continue;
                };
                session.reset(sim);
                stats.resets += 1;
                resets_total.inc();
            }
            Command::Close { vehicle_id, reply } => {
                let _lat = close_seconds.start_span();
                let result = match by_vehicle.remove(&vehicle_id) {
                    Some(key) => {
                        let session = sessions.remove(key).expect("vehicle map points at slab");
                        session.trace().end(t_session);
                        stats.closed += 1;
                        closed_total.inc();
                        live_sessions.sub(1.0);
                        Ok(session.summary())
                    }
                    None => {
                        stats.rejected += 1;
                        Err(FleetError::UnknownSession(vehicle_id))
                    }
                };
                let _ = reply.send(result);
            }
            Command::Query { vehicle_id, reply } => {
                let _lat = query_seconds.start_span();
                let result = by_vehicle
                    .get(&vehicle_id)
                    .and_then(|&key| sessions.get(key))
                    .map(VehicleSession::summary)
                    .ok_or(FleetError::UnknownSession(vehicle_id));
                if result.is_err() {
                    stats.rejected += 1;
                }
                let _ = reply.send(result);
            }
            Command::Sync { reply } => {
                let _ = reply.send(());
            }
            #[cfg(test)]
            Command::Park(rx) => {
                let _ = rx.recv();
            }
        }
    }
    queue_depth.set(0.0);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_drive::{AmbientConditions, DriveCycle, DriveProfile};
    use ev_units::{Celsius, Seconds};

    fn small_sim() -> Arc<Simulation> {
        let params = EvParams::nissan_leaf_like();
        let profile = DriveProfile::from_cycle(
            &DriveCycle::ece_eudc(),
            AmbientConditions::constant(Celsius::new(35.0)),
            Seconds::new(1.0),
        );
        Arc::new(Simulation::new(params, profile).expect("profile non-empty"))
    }

    fn engine(shards: usize, queue_capacity: usize) -> FleetEngine {
        let mut config = FleetConfig::new(EvParams::nissan_leaf_like());
        config.shards = shards;
        config.queue_capacity = queue_capacity;
        FleetEngine::new(config)
    }

    #[test]
    fn open_step_close_round_trip() {
        let fleet = engine(2, 64);
        let sim = small_sim();
        fleet
            .open(7, Arc::clone(&sim), ControllerKind::OnOff)
            .unwrap();
        fleet.step(7, 50).unwrap();
        let summary = fleet.close(7).unwrap();
        assert_eq!(summary.vehicle_id, 7);
        assert_eq!(summary.steps, 50);
        assert!(!summary.finished);
        let stats = fleet.shutdown();
        assert_eq!(stats.total.steps, 50);
        assert_eq!(stats.total.opened, 1);
        assert_eq!(stats.total.closed, 1);
    }

    #[test]
    fn unknown_and_duplicate_sessions_are_rejected_not_fatal() {
        let fleet = engine(1, 64);
        let sim = small_sim();
        assert_eq!(fleet.close(1), Err(FleetError::UnknownSession(1)));
        fleet
            .open(1, Arc::clone(&sim), ControllerKind::Pid)
            .unwrap();
        fleet
            .open(1, Arc::clone(&sim), ControllerKind::Pid)
            .unwrap();
        fleet.sync();
        assert!(fleet.query(1).is_ok());
        let stats = fleet.shutdown();
        assert_eq!(stats.total.opened, 1);
        assert_eq!(stats.total.rejected, 2, "one unknown close, one dup open");
    }

    #[test]
    fn drain_runs_to_profile_end_and_counts_finished_drive() {
        let fleet = engine(1, 64);
        let sim = small_sim();
        let len = sim.profile().len() as u64;
        fleet
            .open(3, Arc::clone(&sim), ControllerKind::OnOff)
            .unwrap();
        fleet.drain(3).unwrap();
        let summary = fleet.close(3).unwrap();
        assert!(summary.finished);
        assert_eq!(summary.steps, len);
        let stats = fleet.shutdown();
        assert_eq!(stats.total.finished_drives, 1);
    }

    #[test]
    fn reset_rebinds_the_slot_to_a_new_drive() {
        let fleet = engine(1, 64);
        let sim = small_sim();
        fleet
            .open(9, Arc::clone(&sim), ControllerKind::Fuzzy)
            .unwrap();
        fleet.step(9, 30).unwrap();
        fleet.reset(9, Arc::clone(&sim)).unwrap();
        fleet.step(9, 5).unwrap();
        let summary = fleet.close(9).unwrap();
        assert_eq!(summary.drives, 2);
        assert_eq!(summary.steps, 35, "steps accumulate across drives");
        let stats = fleet.shutdown();
        assert_eq!(stats.total.resets, 1);
    }

    #[test]
    fn backpressure_sheds_at_capacity_and_never_grows_the_queue() {
        let capacity = 4;
        let fleet = engine(1, capacity);
        let sim = small_sim();
        // Park the single shard so nothing drains while we flood it.
        let (unpark, parked) = mpsc::channel();
        assert!(fleet.shards[0].queue.push(Command::Park(parked)).is_ok());
        fleet
            .open(1, Arc::clone(&sim), ControllerKind::OnOff)
            .unwrap();
        // Wait until the shard has consumed the Park command (queue
        // drains to just the Open).
        while fleet.queue_depth() > 1 {
            std::thread::yield_now();
        }
        // Fill the remaining slots, then observe deterministic shedding.
        let mut accepted = 0;
        let mut shed = 0;
        for _ in 0..capacity + 10 {
            match fleet.try_step(1, 1) {
                Ok(()) => accepted += 1,
                Err(FleetError::Shed) => shed += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(fleet.queue_depth() <= capacity, "queue grew past its bound");
        }
        assert_eq!(accepted, capacity - 1, "Open holds one slot");
        assert_eq!(shed, 11);
        unpark.send(()).unwrap();
        fleet.sync();
        let summary = fleet.close(1).unwrap();
        assert_eq!(summary.steps, (capacity - 1) as u64);
        let _ = fleet.shutdown();
    }

    #[test]
    fn commands_for_one_vehicle_execute_in_submission_order() {
        let fleet = engine(4, 128);
        let sim = small_sim();
        for id in 0..12u64 {
            fleet
                .open(id, Arc::clone(&sim), ControllerKind::OnOff)
                .unwrap();
            for _ in 0..10 {
                fleet.step(id, 1).unwrap();
            }
        }
        fleet.sync();
        for id in 0..12u64 {
            assert_eq!(fleet.query(id).unwrap().steps, 10);
        }
        let stats = fleet.shutdown();
        assert_eq!(stats.total.steps, 120);
        assert_eq!(stats.per_shard.len(), 4);
    }
}
