//! Householder QR factorization and least-squares solves.

use crate::{LinalgError, Matrix};

/// Householder QR factorization of an `m × n` matrix with `m ≥ n`.
///
/// The primary consumer is least-squares subproblems (e.g. fitting
/// efficiency maps and validating Gauss-Newton steps); `Qr` stores the
/// Householder reflectors implicitly and exposes
/// [`Qr::solve_least_squares`], which minimizes `‖A·x − b‖₂`.
///
/// # Examples
///
/// ```
/// use ev_linalg::{Matrix, Qr};
///
/// # fn main() -> Result<(), ev_linalg::LinalgError> {
/// // Overdetermined: fit y = c0 + c1·t through three points.
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
/// let qr = Qr::factor(&a)?;
/// let c = qr.solve_least_squares(&[1.0, 2.0, 3.0])?;
/// assert!((c[0] - 1.0).abs() < 1e-10);
/// assert!((c[1] - 1.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed reflectors (below diagonal) and R (upper triangle).
    qr: Matrix,
    /// Scalar `τ` of each Householder reflector.
    tau: Vec<f64>,
}

impl Qr {
    /// Rank-deficiency threshold on the diagonal of `R`.
    const RANK_TOL: f64 = 1e-12;

    /// Factors the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the matrix has fewer
    /// rows than columns and [`LinalgError::Empty`] if it is empty.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, n),
                actual: (m, n),
            });
        }
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Build the reflector for column k from rows k..m.
            let mut norm = 0.0;
            for r in k..m {
                let v = qr.get(r, k);
                norm += v * v;
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if qr.get(k, k) >= 0.0 { -norm } else { norm };
            let mut v0 = qr.get(k, k) - alpha;
            // Normalize reflector so v[k] = 1 (stored implicitly).
            let mut vnorm2 = v0 * v0;
            for r in (k + 1)..m {
                let v = qr.get(r, k);
                vnorm2 += v * v;
            }
            if vnorm2 == 0.0 {
                tau[k] = 0.0;
                qr.set(k, k, alpha);
                continue;
            }
            tau[k] = 2.0 * v0 * v0 / vnorm2;
            for r in (k + 1)..m {
                let v = qr.get(r, k) / v0;
                qr.set(r, k, v);
            }
            v0 = 1.0;
            let _ = v0;
            qr.set(k, k, alpha);
            // Apply the reflector to the remaining columns.
            for c in (k + 1)..n {
                // w = vᵀ·col(c), with v = [1, qr[k+1..m, k]].
                let mut w = qr.get(k, c);
                for r in (k + 1)..m {
                    w += qr.get(r, k) * qr.get(r, c);
                }
                w *= tau[k];
                qr.add_at(k, c, -w);
                for r in (k + 1)..m {
                    let vk = qr.get(r, k);
                    qr.add_at(r, c, -w * vk);
                }
            }
        }
        Ok(Self { qr, tau })
    }

    /// Rows of the factored matrix.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Columns of the factored matrix.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// Solves `min_x ‖A·x − b‖₂`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != rows()` and
    /// [`LinalgError::Singular`] if `R` is rank deficient.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                expected: (m, 1),
                actual: (b.len(), 1),
            });
        }
        // y = Qᵀ·b, applying reflectors in order.
        let mut y = b.to_vec();
        for k in 0..n {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut w = y[k];
            for r in (k + 1)..m {
                w += self.qr.get(r, k) * y[r];
            }
            w *= self.tau[k];
            y[k] -= w;
            for r in (k + 1)..m {
                y[r] -= w * self.qr.get(r, k);
            }
        }
        // Back substitution with R (top n × n block).
        let scale = self.qr.norm_max().max(1.0);
        let mut x = vec![0.0; n];
        for r in (0..n).rev() {
            let mut sum = y[r];
            for c in (r + 1)..n {
                sum -= self.qr.get(r, c) * x[c];
            }
            let d = self.qr.get(r, r);
            if d.abs() <= Self::RANK_TOL * scale {
                return Err(LinalgError::Singular);
            }
            x[r] = sum / d;
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_solve_via_least_squares() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = Qr::factor(&a)
            .unwrap()
            .solve_least_squares(&[5.0, 10.0])
            .unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn overdetermined_line_fit() {
        // Points (0,1), (1,3), (2,5), (3,7): exact line y = 1 + 2t.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let x = Qr::factor(&a)
            .unwrap()
            .solve_least_squares(&[1.0, 3.0, 5.0, 7.0])
            .unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn inconsistent_system_minimizes_residual() {
        // Same t for two different y values: LS picks the mean.
        let a = Matrix::from_rows(&[&[1.0], &[1.0]]).unwrap();
        let x = Qr::factor(&a)
            .unwrap()
            .solve_least_squares(&[0.0, 2.0])
            .unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_underdetermined() {
        let a = Matrix::zeros(2, 3);
        assert!(Qr::factor(&a).is_err());
    }

    #[test]
    fn detects_rank_deficiency() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        assert_eq!(
            qr.solve_least_squares(&[1.0, 1.0, 1.0]).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn rejects_wrong_rhs_len() {
        let a = Matrix::identity(2);
        let qr = Qr::factor(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0]).is_err());
    }
}
