//! Test harness for the evclimate simulator: physics-invariant checkers
//! over step-level traces and a golden-trace snapshot harness.
//!
//! The crate is consumed from integration tests only (it sits *above*
//! [`ev_core`], whose [`StepObserver`](ev_core::StepObserver) hook it
//! builds on):
//!
//! * [`invariants`] — [`InvariantObserver`] checks, at every simulated
//!   step, the statements that must hold for any correct run: SoC stays
//!   bounded and only rises under regeneration, the BMS-metered power
//!   decomposes into motor + HVAC + accessories, ∫power dt matches the
//!   metered energy, the cabin stays inside the actuator-reachable
//!   envelope and the HVAC respects the paper's C1–C10 caps.
//! * [`golden`] — [`GoldenTrace`] snapshots pin a downsampled trace per
//!   (cycle × controller) cell to `tests/golden/`; drift is reported as
//!   the first diverging step, and `UPDATE_GOLDEN=1` re-baselines.
//! * [`run`] — one-call runners ([`run_checked`], [`run_traced`]) that
//!   wire the observers into a simulation.
//!
//! # Examples
//!
//! ```
//! use ev_core::{ControllerKind, EvParams};
//! use ev_core::experiments::profile_at;
//! use ev_drive::DriveCycle;
//! use ev_testkit::run_checked;
//!
//! let params = EvParams::nissan_leaf_like();
//! let profile = profile_at(&DriveCycle::ece15(), 35.0);
//! let (result, trace, report) = run_checked(&params, profile, ControllerKind::OnOff);
//! assert_eq!(trace.records().len(), result.series.t.len());
//! report.assert_clean();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod golden;
pub mod invariants;
pub mod qpgen;
pub mod run;

pub use golden::{
    golden_filename, verify_or_update, verify_or_update_text, GoldenStep, GoldenTolerance,
    GoldenTrace,
};
pub use invariants::{
    check_trace, InvariantConfig, InvariantObserver, InvariantReport, InvariantViolation,
};
pub use qpgen::{GeneratedQp, QpAsNlp, QpFamily};
pub use run::{dump_on_violation, run_checked, run_recorded, run_traced, run_with};
