//! The constraint set C1–C10 of the paper's Section III-A.

use ev_units::Celsius;
use serde::{Deserialize, Serialize};

use crate::{Hvac, HvacInput, HvacState};

/// A violated HVAC constraint, labelled with the paper's numbering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConstraintViolation {
    /// C1: supply air flow outside `[ṁ̲z, ṁ̄z]`.
    C1FlowRange {
        /// The offending flow (kg/s).
        mz: f64,
    },
    /// C2: cabin temperature outside the comfort zone.
    C2ComfortZone {
        /// The offending cabin temperature (°C).
        tz: f64,
    },
    /// C3: heater would decrease temperature (`Ts < Tc`).
    C3HeaterDirection,
    /// C4: cooler would increase temperature (`Tc > Tm`).
    C4CoolerDirection,
    /// C5: cooling-coil outlet below its minimum.
    C5CoilTooCold {
        /// The offending coil temperature (°C).
        tc: f64,
    },
    /// C6: supply temperature above the heater maximum.
    C6SupplyTooHot {
        /// The offending supply temperature (°C).
        ts: f64,
    },
    /// C7: recirculation fraction outside `[0, d̄r]`.
    C7Recirculation {
        /// The offending fraction.
        dr: f64,
    },
    /// C8: heating power above its cap.
    C8HeatingPower {
        /// The offending power (W).
        ph: f64,
    },
    /// C9: cooling power above its cap.
    C9CoolingPower {
        /// The offending power (W).
        pc: f64,
    },
    /// C10: fan power above its cap.
    C10FanPower {
        /// The offending power (W).
        pf: f64,
    },
}

impl core::fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::C1FlowRange { mz } => write!(f, "c1: supply flow {mz} kg/s out of range"),
            Self::C2ComfortZone { tz } => {
                write!(f, "c2: cabin temperature {tz} °C outside comfort zone")
            }
            Self::C3HeaterDirection => write!(f, "c3: heater commanded to cool (ts < tc)"),
            Self::C4CoolerDirection => write!(f, "c4: cooler commanded to heat (tc > tm)"),
            Self::C5CoilTooCold { tc } => write!(f, "c5: coil outlet {tc} °C below minimum"),
            Self::C6SupplyTooHot { ts } => write!(f, "c6: supply {ts} °C above heater maximum"),
            Self::C7Recirculation { dr } => {
                write!(f, "c7: recirculation fraction {dr} out of range")
            }
            Self::C8HeatingPower { ph } => write!(f, "c8: heating power {ph} W above cap"),
            Self::C9CoolingPower { pc } => write!(f, "c9: cooling power {pc} W above cap"),
            Self::C10FanPower { pf } => write!(f, "c10: fan power {pf} W above cap"),
        }
    }
}

impl std::error::Error for ConstraintViolation {}

/// The full constraint set, parameterized by the comfort zone.
///
/// # Examples
///
/// ```
/// use ev_hvac::{CabinParams, Hvac, HvacInput, HvacLimits, HvacParams, HvacState};
/// use ev_units::Celsius;
///
/// let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
/// let limits = HvacLimits::comfort_band(Celsius::new(24.0), 3.0);
/// let state = HvacState::new(Celsius::new(24.0));
/// let input = HvacInput::idle(hvac.params(), Celsius::new(24.0));
/// assert!(limits.validate(&hvac, &input, state, Celsius::new(24.0)).is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HvacLimits {
    /// Comfort-zone lower bound `T̲z` (C2).
    pub comfort_min: Celsius,
    /// Comfort-zone upper bound `T̄z` (C2).
    pub comfort_max: Celsius,
}

impl HvacLimits {
    /// Builds limits from a target temperature and a symmetric band
    /// half-width in kelvins.
    ///
    /// # Panics
    ///
    /// Panics if `half_width < 0`.
    #[must_use]
    pub fn comfort_band(target: Celsius, half_width: f64) -> Self {
        assert!(half_width >= 0.0, "comfort half-width must be non-negative");
        Self {
            comfort_min: target.offset(-half_width),
            comfort_max: target.offset(half_width),
        }
    }

    /// Checks every constraint; returns the first violation found, in the
    /// paper's C1…C10 order.
    ///
    /// # Errors
    ///
    /// Returns the violated constraint with its offending value.
    pub fn validate(
        &self,
        hvac: &Hvac,
        input: &HvacInput,
        state: HvacState,
        to: Celsius,
    ) -> Result<(), ConstraintViolation> {
        let p = hvac.params();
        const EPS: f64 = 1e-9;
        // C1 flow range.
        if input.mz.value() < p.min_flow.value() - EPS
            || input.mz.value() > p.max_flow.value() + EPS
        {
            return Err(ConstraintViolation::C1FlowRange {
                mz: input.mz.value(),
            });
        }
        // C2 comfort zone.
        if state.tz < self.comfort_min.offset(-EPS) || state.tz > self.comfort_max.offset(EPS) {
            return Err(ConstraintViolation::C2ComfortZone {
                tz: state.tz.value(),
            });
        }
        // C3 heater direction.
        if input.ts < input.tc.offset(-EPS) {
            return Err(ConstraintViolation::C3HeaterDirection);
        }
        // C4 cooler direction.
        let tm = hvac.mixed_air(input, state.tz, to);
        if input.tc > tm.offset(EPS) {
            return Err(ConstraintViolation::C4CoolerDirection);
        }
        // C5 coil minimum. The evaporator floor protects against icing
        // while *actively cooling*; a passive coil tracking a cold air
        // mix (heating mode in winter) is not a violation.
        if input.tc < p.min_coil_temp.offset(-EPS) && input.tc < tm.offset(-EPS) {
            return Err(ConstraintViolation::C5CoilTooCold {
                tc: input.tc.value(),
            });
        }
        // C6 supply maximum.
        if input.ts > p.max_supply_temp.offset(EPS) {
            return Err(ConstraintViolation::C6SupplyTooHot {
                ts: input.ts.value(),
            });
        }
        // C7 recirculation.
        if input.dr < -EPS || input.dr > p.max_recirculation + EPS {
            return Err(ConstraintViolation::C7Recirculation { dr: input.dr });
        }
        // C8–C10 power caps.
        let power = hvac.power(input, state, to);
        if power.heating.value() > p.max_heating_power.value() + EPS {
            return Err(ConstraintViolation::C8HeatingPower {
                ph: power.heating.value(),
            });
        }
        if power.cooling.value() > p.max_cooling_power.value() + EPS {
            return Err(ConstraintViolation::C9CoolingPower {
                pc: power.cooling.value(),
            });
        }
        if power.fan.value() > p.max_fan_power.value() + EPS {
            return Err(ConstraintViolation::C10FanPower {
                pf: power.fan.value(),
            });
        }
        Ok(())
    }

    /// Clamps a raw input into the statically checkable constraint box
    /// (C1, C5–C7 and the coil-direction orderings). Power caps (C8–C10)
    /// and the comfort zone (C2) are dynamic and remain the controller's
    /// responsibility.
    #[must_use]
    pub fn clamp_input(
        &self,
        hvac: &Hvac,
        input: HvacInput,
        state: HvacState,
        to: Celsius,
    ) -> HvacInput {
        let p = hvac.params();
        let mz = input.mz.clamp(p.min_flow, p.max_flow);
        let dr = input.dr.clamp(0.0, p.max_recirculation);
        let mut clamped = HvacInput {
            ts: input.ts,
            tc: input.tc,
            dr,
            mz,
        };
        let tm = hvac.mixed_air(&clamped, state.tz, to);
        // Active cooling may not go below the coil floor; a passive coil
        // may track an air mix colder than the floor (winter heating).
        let tc_floor = p.min_coil_temp.min(tm);
        clamped.tc = clamped.tc.clamp(tc_floor, tm.max(tc_floor));
        clamped.ts = clamped.ts.clamp(clamped.tc, p.max_supply_temp);
        clamped
    }
}

impl Default for HvacLimits {
    /// The paper's experimental comfort zone: 24 °C ± 3 K.
    fn default() -> Self {
        Self::comfort_band(Celsius::new(24.0), 3.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CabinParams, HvacParams};
    use ev_units::KgPerSecond;

    fn hvac() -> Hvac {
        Hvac::new(CabinParams::default(), HvacParams::default())
    }

    fn ok_input() -> HvacInput {
        HvacInput {
            ts: Celsius::new(14.0),
            tc: Celsius::new(14.0),
            dr: 0.5,
            mz: KgPerSecond::new(0.15),
        }
    }

    fn state() -> HvacState {
        HvacState::new(Celsius::new(24.0))
    }

    fn limits() -> HvacLimits {
        HvacLimits::default()
    }

    #[test]
    fn valid_input_passes() {
        assert!(limits()
            .validate(&hvac(), &ok_input(), state(), Celsius::new(35.0))
            .is_ok());
    }

    #[test]
    fn each_constraint_fires() {
        let h = hvac();
        let to = Celsius::new(35.0);
        let l = limits();

        let mut i = ok_input();
        i.mz = KgPerSecond::new(0.5);
        assert!(matches!(
            l.validate(&h, &i, state(), to),
            Err(ConstraintViolation::C1FlowRange { .. })
        ));

        assert!(matches!(
            l.validate(&h, &ok_input(), HvacState::new(Celsius::new(30.0)), to),
            Err(ConstraintViolation::C2ComfortZone { .. })
        ));

        let mut i = ok_input();
        i.ts = Celsius::new(10.0); // below tc = 14
        assert!(matches!(
            l.validate(&h, &i, state(), to),
            Err(ConstraintViolation::C3HeaterDirection)
        ));

        let mut i = ok_input();
        i.tc = Celsius::new(33.0); // above tm = 29.5
        i.ts = Celsius::new(40.0);
        assert!(matches!(
            l.validate(&h, &i, state(), to),
            Err(ConstraintViolation::C4CoolerDirection)
        ));

        let mut i = ok_input();
        i.tc = Celsius::new(1.0);
        i.ts = Celsius::new(10.0);
        assert!(matches!(
            l.validate(&h, &i, state(), to),
            Err(ConstraintViolation::C5CoilTooCold { .. })
        ));

        let mut i = ok_input();
        i.ts = Celsius::new(70.0);
        assert!(matches!(
            l.validate(&h, &i, state(), to),
            Err(ConstraintViolation::C6SupplyTooHot { .. })
        ));

        let mut i = ok_input();
        i.dr = 0.85;
        assert!(matches!(
            l.validate(&h, &i, state(), to),
            Err(ConstraintViolation::C7Recirculation { .. })
        ));
    }

    #[test]
    fn power_caps_fire() {
        let h = hvac();
        let l = limits();
        // Huge heating: ts − tc = 55 K at max flow ⇒ Ph ≈ 15 kW > 6 kW.
        let i = HvacInput {
            ts: Celsius::new(60.0),
            tc: Celsius::new(5.0),
            dr: 0.7,
            mz: KgPerSecond::new(0.25),
        };
        assert!(matches!(
            l.validate(
                &h,
                &i,
                HvacState::new(Celsius::new(22.0)),
                Celsius::new(-10.0)
            ),
            Err(ConstraintViolation::C8HeatingPower { .. })
        ));
        // Huge cooling at 43 °C with no recirculation.
        let i = HvacInput {
            ts: Celsius::new(5.0),
            tc: Celsius::new(5.0),
            dr: 0.0,
            mz: KgPerSecond::new(0.25),
        };
        assert!(matches!(
            l.validate(
                &h,
                &i,
                HvacState::new(Celsius::new(26.0)),
                Celsius::new(43.0)
            ),
            Err(ConstraintViolation::C9CoolingPower { .. })
        ));
    }

    #[test]
    fn clamp_produces_valid_box_values() {
        let h = hvac();
        let l = limits();
        let wild = HvacInput {
            ts: Celsius::new(200.0),
            tc: Celsius::new(-40.0),
            dr: 2.0,
            mz: KgPerSecond::new(9.0),
        };
        let c = l.clamp_input(&h, wild, state(), Celsius::new(35.0));
        assert!(c.mz.value() <= 0.25 && c.mz.value() >= 0.02);
        assert!(c.dr >= 0.0 && c.dr <= 0.9);
        assert!(c.tc >= h.params().min_coil_temp);
        assert!(c.ts <= h.params().max_supply_temp);
        assert!(c.ts >= c.tc);
    }

    #[test]
    fn comfort_band_constructor() {
        let l = HvacLimits::comfort_band(Celsius::new(22.0), 2.0);
        assert_eq!(l.comfort_min, Celsius::new(20.0));
        assert_eq!(l.comfort_max, Celsius::new(24.0));
    }

    #[test]
    fn violation_messages_are_labelled() {
        let v = ConstraintViolation::C9CoolingPower { pc: 9000.0 };
        assert!(v.to_string().starts_with("c9"));
    }
}
