//! A year of commuting: accumulate per-cycle SoH degradation (Eq. 15)
//! over 250 working days under each climate controller and extrapolate
//! the pack's service life.
//!
//! This is the paper's battery-lifetime story told in calendar terms: a
//! 14 % smaller ΔSoH per cycle is roughly 14 % more years until the pack
//! hits the 80 % end-of-life threshold.
//!
//! ```text
//! cargo run --release --example battery_aging
//! ```

use evclimate::battery::SohModel;
use evclimate::core::ControllerKind;
use evclimate::drive::synthetic::DiurnalClimate;
use evclimate::prelude::*;

/// Seasonal commute scenarios: (label, share of the year, ambient °C).
const SEASONS: [(&str, f64, f64); 4] = [
    ("winter", 0.25, 0.0),
    ("spring", 0.25, 15.0),
    ("summer", 0.25, 33.0),
    ("autumn", 0.25, 12.0),
];

const WORKDAYS_PER_YEAR: f64 = 250.0;
/// Two commutes (there and back) per working day.
const CYCLES_PER_YEAR: f64 = 2.0 * WORKDAYS_PER_YEAR;

fn per_cycle_soh(kind: ControllerKind, ambient_c: f64) -> Result<f64, Box<dyn std::error::Error>> {
    let profile = DriveProfile::from_cycle(
        &DriveCycle::udds(),
        AmbientConditions::constant(Celsius::new(ambient_c)),
        Seconds::new(1.0),
    );
    let mut params = EvParams::nissan_leaf_like();
    params.initial_cabin = Some(params.target);
    let sim = Simulation::new(params.clone(), profile)?;
    let mut controller = kind.instantiate(&params)?;
    Ok(sim
        .run(controller.as_mut())?
        .metrics()
        .delta_soh_milli_percent
        / 1000.0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Show the seasonal context.
    let climate = DiurnalClimate::new(Celsius::new(-4.0), Celsius::new(6.0));
    println!(
        "(for reference, a winter morning commute at 08:00 sees {:.1})",
        climate.temperature_at_hour(8.0)
    );
    println!("\nUDDS city commute, 500 cycles/year, seasonal ambient mix\n");
    println!(
        "{:<28} {:>16} {:>14} {:>12}",
        "controller", "ΔSoH %/year", "years to 80 %", "vs On/Off"
    );
    let mut baseline_years = None;
    for kind in ControllerKind::paper_lineup() {
        // Season-weighted annual degradation.
        let mut annual = 0.0;
        for (_, share, ambient) in SEASONS {
            annual += share * CYCLES_PER_YEAR * per_cycle_soh(kind, ambient)?;
        }
        let years = SohModel::EOL_FADE_PERCENT / annual;
        let vs = match baseline_years {
            None => {
                baseline_years = Some(years);
                "—".to_owned()
            }
            Some(base) => format!("{:+.1}%", 100.0 * (years - base) / base),
        };
        println!(
            "{:<28} {:>15.3}% {:>13.1}y {:>12}",
            kind.label(),
            annual,
            years,
            vs
        );
    }
    Ok(())
}
