//! Property-based tests for the integrators: convergence order, linearity
//! and stability properties on randomized linear systems.

use ev_ode::{euler, integrate, rk4, trapezoidal, OdeSystem, Rkf45, StepMethod};
use proptest::prelude::*;

/// A scalar linear system x' = −λx with λ > 0.
struct Decay {
    lambda: f64,
}
impl OdeSystem for Decay {
    fn dim(&self) -> usize {
        1
    }
    fn rhs(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
        dx[0] = -self.lambda * x[0];
    }
}

/// A 2-D rotation (energy-preserving) with angular rate ω.
struct Rotation {
    omega: f64,
}
impl OdeSystem for Rotation {
    fn dim(&self) -> usize {
        2
    }
    fn rhs(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
        dx[0] = -self.omega * x[1];
        dx[1] = self.omega * x[0];
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rk4_matches_exponential(
        lambda in 0.1f64..2.0,
        x0 in 0.1f64..5.0,
    ) {
        let traj = integrate(&Decay { lambda }, &[x0], 0.0, 1.0, 0.01, StepMethod::Rk4);
        let exact = x0 * (-lambda).exp();
        prop_assert!((traj.last_state()[0] - exact).abs() < 1e-8 * x0.max(1.0));
    }

    #[test]
    fn euler_error_shrinks_linearly(
        lambda in 0.2f64..1.5,
    ) {
        let run = |h: f64| {
            let mut x = [1.0];
            let steps = (1.0 / h).round() as usize;
            for k in 0..steps {
                euler(&Decay { lambda }, k as f64 * h, &mut x, h);
            }
            (x[0] - (-lambda).exp()).abs()
        };
        let e1 = run(0.02);
        let e2 = run(0.01);
        let ratio = e1 / e2;
        prop_assert!(ratio > 1.6 && ratio < 2.4, "order-1 ratio {ratio}");
    }

    #[test]
    fn integration_is_linear_in_initial_condition(
        lambda in 0.1f64..2.0,
        x0 in 0.1f64..3.0,
        scale in 0.5f64..3.0,
    ) {
        // For linear systems, x(t; s·x0) = s·x(t; x0).
        let a = integrate(&Decay { lambda }, &[x0], 0.0, 0.7, 0.01, StepMethod::Rk4);
        let b = integrate(&Decay { lambda }, &[scale * x0], 0.0, 0.7, 0.01, StepMethod::Rk4);
        prop_assert!(
            (b.last_state()[0] - scale * a.last_state()[0]).abs() < 1e-10
        );
    }

    #[test]
    fn rk4_preserves_rotation_norm(
        omega in 0.2f64..3.0,
        x0 in 0.2f64..2.0,
        y0 in -2.0f64..2.0,
    ) {
        let mut x = [x0, y0];
        let r0 = (x0 * x0 + y0 * y0).sqrt();
        for k in 0..500 {
            rk4(&Rotation { omega }, k as f64 * 0.01, &mut x, 0.01);
        }
        let r = (x[0] * x[0] + x[1] * x[1]).sqrt();
        prop_assert!((r - r0).abs() < 1e-6 * r0.max(1.0), "radius {r0} → {r}");
    }

    #[test]
    fn rkf45_agrees_with_rk4(
        lambda in 0.1f64..2.0,
        x0 in 0.1f64..3.0,
    ) {
        let fixed = integrate(&Decay { lambda }, &[x0], 0.0, 2.0, 0.001, StepMethod::Rk4);
        let adaptive = Rkf45::new(ev_ode::AdaptiveOptions::default())
            .integrate(&Decay { lambda }, &[x0], 0.0, 2.0)
            .expect("smooth problem");
        prop_assert!(
            (fixed.last_state()[0] - adaptive.last_state()[0]).abs() < 1e-6
        );
    }

    #[test]
    fn trapezoidal_is_unconditionally_stable(
        b in 0.1f64..100.0,
        h in 0.1f64..100.0,
        x0 in -100.0f64..100.0,
    ) {
        // c·x' = −b·x̄: |x⁺| ≤ |x| for any step size (A-stability).
        let next = trapezoidal(x0, 1.0, 0.0, b, h);
        prop_assert!(next.abs() <= x0.abs() + 1e-12, "{x0} → {next}");
    }

    #[test]
    fn trapezoidal_fixed_point_is_a_over_b(
        a in -50.0f64..50.0,
        b in 0.1f64..10.0,
        h in 0.01f64..10.0,
    ) {
        let xstar = a / b;
        let next = trapezoidal(xstar, 2.0, a, b, h);
        prop_assert!((next - xstar).abs() < 1e-9 * xstar.abs().max(1.0));
    }

    #[test]
    fn trajectory_times_are_monotone(
        lambda in 0.1f64..1.0,
        dt in 0.01f64..0.3,
        t1 in 0.5f64..3.0,
    ) {
        let traj = integrate(&Decay { lambda }, &[1.0], 0.0, t1, dt, StepMethod::Euler);
        let times = traj.times();
        for w in times.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        prop_assert!((times[times.len() - 1] - t1).abs() < 1e-9);
    }
}
