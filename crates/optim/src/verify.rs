//! Solver-independent KKT optimality verification.
//!
//! For a convex QP, a point satisfying the Karush–Kuhn–Tucker conditions
//! *is* a global minimizer, so checking the KKT residuals certifies a
//! solution without trusting anything about how it was produced. The
//! solver battery ([ROADMAP item 5]) leans on this: every backend's answer
//! is accepted only if [`verify_kkt`] signs off on it, which makes the
//! battery's reference objectives independently auditable.
//!
//! [ROADMAP item 5]: https://github.com/evclimate/evclimate

use ev_linalg::vecops;

use crate::qp::QpView;
use crate::OptimError;

/// The five KKT residuals of a candidate QP solution, plus the data scale
/// they are judged against.
///
/// All residuals are reported raw (unscaled); [`KktReport::satisfied`]
/// compares the worst of them against `tol · scale`, where
/// [`scale`](Self::scale) is `1 + ‖H‖ + ‖g‖ + ‖A‖ + ‖b‖` — the same
/// relative convergence criterion the interior-point solver itself uses,
/// so a solution the solver accepts at tolerance `t` verifies at `t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KktReport {
    /// Stationarity residual `‖Hz + g + A_eqᵀy + A_inᵀλ‖∞`.
    pub stationarity: f64,
    /// Equality feasibility residual `‖A_eq·z − b_eq‖∞`.
    pub primal_eq: f64,
    /// Inequality violation `maxᵢ (A_in·z − b_in)ᵢ⁺`.
    pub primal_ineq: f64,
    /// Worst negative multiplier `maxᵢ (−λᵢ)⁺`.
    pub dual_nonneg: f64,
    /// Complementary slackness `maxᵢ |λᵢ · (b_in − A_in·z)ᵢ|`.
    pub complementarity: f64,
    /// Problem-data magnitude the residuals are judged relative to.
    pub scale: f64,
}

impl KktReport {
    /// The worst of the five residuals.
    #[must_use]
    pub fn max_residual(&self) -> f64 {
        self.stationarity
            .max(self.primal_eq)
            .max(self.primal_ineq)
            .max(self.dual_nonneg)
            .max(self.complementarity)
    }

    /// Whether every residual is within `tol` relative to the data scale.
    #[must_use]
    pub fn satisfied(&self, tol: f64) -> bool {
        self.max_residual() <= tol * self.scale
    }
}

/// Computes the KKT residuals of the candidate `(z, y_eq, lambda_in)`
/// without judging them; see [`verify_kkt`] for the asserting variant.
///
/// # Errors
///
/// Returns [`OptimError::DimensionMismatch`] if any of the three vectors
/// does not match the problem's dimensions.
pub fn kkt_report(
    problem: &QpView<'_>,
    z: &[f64],
    y_eq: &[f64],
    lambda_in: &[f64],
) -> Result<KktReport, OptimError> {
    let n = problem.num_vars();
    let me = problem.num_eq();
    let mi = problem.num_ineq();
    if z.len() != n {
        return Err(OptimError::DimensionMismatch { what: "z vs H" });
    }
    if y_eq.len() != me {
        return Err(OptimError::DimensionMismatch {
            what: "y_eq vs A_eq",
        });
    }
    if lambda_in.len() != mi {
        return Err(OptimError::DimensionMismatch {
            what: "lambda_in vs A_in",
        });
    }

    // Stationarity: Hz + g + A_eqᵀy + A_inᵀλ.
    let mut rd = problem.h().matvec(z).expect("dimension checked above");
    for (r, gi) in rd.iter_mut().zip(problem.g()) {
        *r += gi;
    }
    if let Some(a_eq) = problem.a_eq_ref() {
        for (r, &yi) in y_eq.iter().enumerate() {
            a_eq.add_scaled_row(r, yi, &mut rd);
        }
    }
    let mut primal_ineq = 0.0f64;
    let mut complementarity = 0.0f64;
    let mut dual_nonneg = 0.0f64;
    if let Some(a_in) = problem.a_in_ref() {
        let mut cz = vec![0.0; mi];
        a_in.matvec_into(z, &mut cz);
        for (i, &li) in lambda_in.iter().enumerate() {
            a_in.add_scaled_row(i, li, &mut rd);
            let slack = problem.b_in()[i] - cz[i];
            primal_ineq = primal_ineq.max(-slack);
            complementarity = complementarity.max((li * slack).abs());
            dual_nonneg = dual_nonneg.max(-li);
        }
    }
    let mut primal_eq = 0.0f64;
    if let Some(a_eq) = problem.a_eq_ref() {
        let mut az = vec![0.0; me];
        a_eq.matvec_into(z, &mut az);
        for (ai, bi) in az.iter().zip(problem.b_eq()) {
            primal_eq = primal_eq.max((ai - bi).abs());
        }
    }

    let scale = 1.0
        + problem.h().norm_max()
        + vecops::norm_inf(problem.g())
        + problem.a_eq_ref().map_or(0.0, |a| a.norm_max())
        + problem.a_in_ref().map_or(0.0, |a| a.norm_max())
        + vecops::norm_inf(problem.b_eq())
        + vecops::norm_inf(problem.b_in());

    Ok(KktReport {
        stationarity: vecops::norm_inf(&rd),
        primal_eq,
        primal_ineq: primal_ineq.max(0.0),
        dual_nonneg: dual_nonneg.max(0.0),
        complementarity,
        scale,
    })
}

/// Asserts that `(z, y_eq, lambda_in)` satisfies the KKT conditions of
/// `problem` to relative tolerance `tol`.
///
/// This is the battery's independent optimality oracle: it reads only the
/// problem data and the candidate point, never solver internals, so any
/// consumer (tests, the differential fuzz harness, external callers) can
/// certify a solution regardless of which backend produced it. For a
/// convex QP a KKT point is a global optimum, so a passing report is a
/// proof of optimality up to the residual tolerance.
///
/// # Errors
///
/// Returns [`OptimError::DimensionMismatch`] on shape mismatches and
/// [`OptimError::KktViolation`] when any residual exceeds `tol` relative
/// to the problem-data scale; the violation carries the worst residual so
/// failures are diagnosable without re-deriving them.
pub fn verify_kkt(
    problem: &QpView<'_>,
    z: &[f64],
    y_eq: &[f64],
    lambda_in: &[f64],
    tol: f64,
) -> Result<KktReport, OptimError> {
    let report = kkt_report(problem, z, y_eq, lambda_in)?;
    if report.satisfied(tol) {
        Ok(report)
    } else {
        Err(OptimError::KktViolation {
            residual: report.max_residual(),
            scale: report.scale,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QpProblem, QpSolver};
    use ev_linalg::Matrix;

    fn box_qp() -> QpProblem {
        // min (z0−3)² + z1², s.t. z0 ≤ 1, −z1 ≤ 2.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, -1.0]]).unwrap();
        QpProblem::new(Matrix::from_diag(&[2.0, 2.0]), vec![-6.0, 0.0])
            .unwrap()
            .with_inequalities(a, vec![1.0, 2.0])
            .unwrap()
    }

    #[test]
    fn verifies_a_converged_solution() {
        let p = box_qp();
        let sol = QpSolver::default().solve(&p).unwrap();
        let report = verify_kkt(&p.as_view(), &sol.z, &sol.y_eq, &sol.lambda_in, 1e-6).unwrap();
        assert!(report.max_residual() < 1e-6 * report.scale);
    }

    #[test]
    fn rejects_a_non_optimal_point() {
        let p = box_qp();
        let err = verify_kkt(&p.as_view(), &[0.0, 0.0], &[], &[0.0, 0.0], 1e-6).unwrap_err();
        assert!(matches!(err, OptimError::KktViolation { .. }), "{err:?}");
    }

    #[test]
    fn rejects_negative_multipliers() {
        let p = box_qp();
        // Correct primal point but a negative multiplier.
        let report = kkt_report(&p.as_view(), &[1.0, 0.0], &[], &[-4.0, 0.0]).unwrap();
        assert!(report.dual_nonneg > 0.0);
        assert!(!report.satisfied(1e-6));
    }

    #[test]
    fn rejects_infeasible_point_with_matching_duals() {
        let p = box_qp();
        // z0 = 2 violates z0 ≤ 1 even though stationarity can be faked.
        let report = kkt_report(&p.as_view(), &[2.0, 0.0], &[], &[2.0, 0.0]).unwrap();
        assert!(report.primal_ineq >= 1.0 - 1e-12);
    }

    #[test]
    fn dimension_mismatches_are_routable() {
        let p = box_qp();
        assert!(verify_kkt(&p.as_view(), &[0.0], &[], &[0.0, 0.0], 1e-6).is_err());
        assert!(verify_kkt(&p.as_view(), &[0.0, 0.0], &[0.0], &[0.0, 0.0], 1e-6).is_err());
        assert!(verify_kkt(&p.as_view(), &[0.0, 0.0], &[], &[0.0], 1e-6).is_err());
    }

    #[test]
    fn equality_residuals_are_reported() {
        // min z² s.t. z = 2 → z = 2, y = −4.
        let p = QpProblem::new(Matrix::from_diag(&[2.0]), vec![0.0])
            .unwrap()
            .with_equalities(Matrix::from_rows(&[&[1.0]]).unwrap(), vec![2.0])
            .unwrap();
        let ok = verify_kkt(&p.as_view(), &[2.0], &[-4.0], &[], 1e-8).unwrap();
        assert!(ok.primal_eq < 1e-12);
        let bad = kkt_report(&p.as_view(), &[1.0], &[-4.0], &[]).unwrap();
        assert!(bad.primal_eq >= 1.0 - 1e-12);
    }
}
