//! Property-based tests for the exposition parser and the tsdb segment
//! reader: label values survive a render → parse round trip whatever
//! characters they carry, and a segment cut anywhere mid-write decodes
//! to an intact frame prefix instead of an error.

use ev_telemetry::export::{self, PromSample};
use ev_telemetry::tsdb;
use ev_telemetry::Registry;
use proptest::collection::vec;
use proptest::prelude::*;

/// Characters chosen to stress the exposition escaper: the three escape
/// classes (`\\`, `\"`, `\n`), multi-byte unicode, and plain filler.
const PALETTE: &[char] = &[
    '\\', '"', '\n', 'a', 'Z', '0', ' ', '=', ',', '{', '}', 'é', '雪', '🔋',
];

fn label_value(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|&i| PALETTE[i % PALETTE.len()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any label value — escapes, unicode, empty — round-trips through
    /// `to_prometheus` → `parse_prometheus` unchanged, and the parsed
    /// samples match `snapshot_samples` exactly.
    #[test]
    fn parse_prometheus_round_trips_label_values(
        raw_a in vec(0usize..PALETTE.len(), 0..12),
        raw_b in vec(0usize..PALETTE.len(), 0..12),
        count in 0u64..1000,
    ) {
        let (va, vb) = (label_value(&raw_a), label_value(&raw_b));
        let registry = Registry::enabled();
        registry
            .counter_with("requests_total", &[("path", &va), ("zone", &vb)])
            .add(count);
        registry.gauge_with("depth", &[("path", &va)]).set(3.5);
        let snapshot = registry.snapshot();

        let text = export::to_prometheus(&snapshot);
        let parsed = export::parse_prometheus(&text)
            .map_err(proptest::TestCaseError::fail)?;
        let expected: Vec<PromSample> = export::snapshot_samples(&snapshot);
        prop_assert_eq!(&parsed, &expected, "exposition:\n{}", text);

        let counter = parsed
            .iter()
            .find(|s| s.name == "requests_total")
            .expect("counter sample present");
        let find = |k: &str| {
            counter
                .labels
                .iter()
                .find(|(lk, _)| lk == k)
                .map(|(_, v)| v.as_str())
        };
        prop_assert_eq!(find("path"), Some(va.as_str()));
        prop_assert_eq!(find("zone"), Some(vb.as_str()));
    }

    /// Cutting a segment file at ANY byte offset past the magic leaves
    /// a readable file: the reader yields an intact frame prefix and
    /// only flags `truncated` when the cut tore a record.
    #[test]
    fn segment_reader_survives_a_cut_at_any_offset(
        frames in 1usize..6,
        cut_back in 0usize..64,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "evtsdb-prop-{}-{frames}-{cut_back}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("seg.evts");

        let mut writer = tsdb::SegmentWriter::create(&path).expect("create");
        for f in 0..frames {
            let samples = vec![
                PromSample {
                    name: "steps_total".into(),
                    labels: vec![("shard".into(), "0".into())],
                    value: (f * 7) as f64,
                    exemplar: None,
                },
                PromSample {
                    name: "depth".into(),
                    labels: vec![],
                    value: f as f64 * 0.5,
                    exemplar: None,
                },
            ];
            writer.append((f as u64 + 1) * 1000, &samples).expect("append");
        }
        drop(writer);

        let bytes = std::fs::read(&path).expect("read back");
        let cut = bytes.len().saturating_sub(cut_back).max(8);
        std::fs::write(&path, &bytes[..cut]).expect("truncate");

        let seg = tsdb::read_segment(&path)
            .map_err(proptest::TestCaseError::fail)?;
        // Frames decode as a strict prefix with their original stamps.
        prop_assert!(seg.frames.len() <= frames);
        for (i, frame) in seg.frames.iter().enumerate() {
            prop_assert_eq!(frame.t_ms, (i as u64 + 1) * 1000);
        }
        // A cut that removed bytes but left the file undamaged at a
        // record boundary is not flagged; any torn record must be.
        if cut == bytes.len() {
            prop_assert!(!seg.truncated, "whole file is never truncated");
            prop_assert_eq!(seg.frames.len(), frames);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
