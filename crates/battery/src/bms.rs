//! The battery management system facade and SoC cycle statistics.

use ev_units::{Percent, Seconds, Watts};
use serde::{Deserialize, Serialize};

use crate::{Battery, BatteryParams, SohModel};

/// SoC statistics of a discharge cycle: the average (Eq. 17) and the RMS
/// deviation (Eq. 16) that drive the SoH degradation model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SocStats {
    /// `SoC_avg` in percent.
    pub avg: f64,
    /// `SoC_dev` in percent (root-mean-square deviation from the mean).
    pub dev: f64,
}

impl SocStats {
    /// Computes the statistics from a uniformly sampled SoC trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    #[must_use]
    pub fn from_trace(soc: &[f64]) -> Self {
        assert!(!soc.is_empty(), "soc trace must be non-empty");
        let n = soc.len() as f64;
        let avg = soc.iter().sum::<f64>() / n;
        let var = soc.iter().map(|s| (s - avg).powi(2)).sum::<f64>() / n;
        Self {
            avg,
            dev: var.sqrt(),
        }
    }
}

/// The battery management system: wraps the [`Battery`], enforces power
/// limits, records the SoC trace of the drive, and evaluates the cycle's
/// SoH degradation.
///
/// This is the component the paper's climate controller *coordinates
/// with*: the controller asks the BMS for the current SoC and running
/// SoC average; the BMS meters every power request into the pack.
///
/// # Examples
///
/// ```
/// use ev_battery::{BatteryParams, Bms, SohModel};
/// use ev_units::{Seconds, Watts};
///
/// let mut bms = Bms::new(BatteryParams::leaf_24kwh(), SohModel::default());
/// for _ in 0..600 {
///     bms.apply_load(Watts::new(15_000.0), Seconds::new(1.0));
/// }
/// let stats = bms.cycle_stats();
/// assert!(stats.avg < 95.0);
/// assert!(bms.cycle_degradation() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bms {
    battery: Battery,
    soh_model: SohModel,
    /// Maximum discharge power the BMS allows.
    max_discharge: Watts,
    /// Maximum charge (regeneration) power the BMS allows.
    max_charge: Watts,
    /// Recorded SoC trace for the current cycle (one entry per step).
    trace: Vec<f64>,
}

impl Bms {
    /// Creates a BMS with Leaf-appropriate power limits (90 kW discharge,
    /// 50 kW charge).
    #[must_use]
    pub fn new(params: BatteryParams, soh_model: SohModel) -> Self {
        let battery = Battery::new(params);
        let initial = battery.soc().value();
        Self {
            battery,
            soh_model,
            max_discharge: Watts::new(90_000.0),
            max_charge: Watts::new(50_000.0),
            trace: vec![initial],
        }
    }

    /// Sets custom power limits.
    ///
    /// # Panics
    ///
    /// Panics if either limit is negative.
    #[must_use]
    pub fn with_power_limits(mut self, max_discharge: Watts, max_charge: Watts) -> Self {
        assert!(
            max_discharge.value() >= 0.0 && max_charge.value() >= 0.0,
            "power limits must be non-negative"
        );
        self.max_discharge = max_discharge;
        self.max_charge = max_charge;
        self
    }

    /// Borrows the wrapped battery.
    #[must_use]
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Current SoC.
    #[must_use]
    pub fn soc(&self) -> Percent {
        self.battery.soc()
    }

    /// Running SoC average over the cycle so far (Eq. 17 prefix) — the
    /// quantity the MPC cost function references.
    #[must_use]
    pub fn running_soc_avg(&self) -> f64 {
        self.trace.iter().sum::<f64>() / self.trace.len() as f64
    }

    /// Meters a power request into the battery, clamped to the BMS power
    /// limits, and records the SoC. Returns the power actually applied.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn apply_load(&mut self, power: Watts, dt: Seconds) -> Watts {
        let clamped = Watts::new(
            power
                .value()
                .clamp(-self.max_charge.value(), self.max_discharge.value()),
        );
        self.battery.step(clamped, dt);
        self.trace.push(self.battery.soc().value());
        clamped
    }

    /// SoC statistics of the recorded cycle (Eq. 16–17).
    #[must_use]
    pub fn cycle_stats(&self) -> SocStats {
        SocStats::from_trace(&self.trace)
    }

    /// ΔSoH of the recorded cycle (Eq. 15), in percent capacity.
    #[must_use]
    pub fn cycle_degradation(&self) -> f64 {
        self.soh_model.degradation(self.cycle_stats())
    }

    /// Battery lifetime if every cycle looked like the recorded one.
    #[must_use]
    pub fn cycles_to_eol(&self) -> f64 {
        self.soh_model.cycles_to_eol(self.cycle_stats())
    }

    /// Borrows the recorded SoC trace.
    #[must_use]
    pub fn trace(&self) -> &[f64] {
        &self.trace
    }

    /// Starts a new cycle: clears the trace (the battery SoC carries
    /// over) .
    pub fn start_cycle(&mut self) {
        let soc = self.battery.soc().value();
        self.trace.clear();
        self.trace.push(soc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bms() -> Bms {
        Bms::new(BatteryParams::leaf_24kwh(), SohModel::default())
    }

    #[test]
    fn soc_stats_hand_calculation() {
        let s = SocStats::from_trace(&[90.0, 80.0, 70.0]);
        assert!((s.avg - 80.0).abs() < 1e-12);
        let expected_dev = (200.0f64 / 3.0).sqrt();
        assert!((s.dev - expected_dev).abs() < 1e-12);
    }

    #[test]
    fn constant_trace_has_zero_dev() {
        let s = SocStats::from_trace(&[75.0; 10]);
        assert_eq!(s.avg, 75.0);
        assert_eq!(s.dev, 0.0);
    }

    #[test]
    fn power_limit_clamps() {
        let mut b = bms().with_power_limits(Watts::new(10_000.0), Watts::new(5_000.0));
        let applied = b.apply_load(Watts::new(50_000.0), Seconds::new(1.0));
        assert_eq!(applied.value(), 10_000.0);
        let regen = b.apply_load(Watts::new(-50_000.0), Seconds::new(1.0));
        assert_eq!(regen.value(), -5_000.0);
    }

    #[test]
    fn trace_grows_and_stats_follow() {
        let mut b = bms();
        for _ in 0..10 {
            b.apply_load(Watts::new(30_000.0), Seconds::new(10.0));
        }
        assert_eq!(b.trace().len(), 11);
        let stats = b.cycle_stats();
        assert!(stats.avg < 95.0 && stats.dev > 0.0);
        assert!(b.cycle_degradation() > 0.0);
        assert!(b.cycles_to_eol().is_finite());
    }

    #[test]
    fn flat_load_degrades_less_than_spiky_load_of_same_energy() {
        // Same total energy: constant 15 kW vs alternating 0 / 30 kW.
        let mut flat = bms();
        let mut spiky = bms();
        for k in 0..600 {
            flat.apply_load(Watts::new(15_000.0), Seconds::new(1.0));
            let p = if k % 2 == 0 { 30_000.0 } else { 0.0 };
            spiky.apply_load(Watts::new(p), Seconds::new(1.0));
        }
        // The spiky load suffers extra Peukert losses (lower final SoC)…
        assert!(spiky.soc().value() <= flat.soc().value() + 1e-9);
        // …and this shows up as at least as much degradation.
        assert!(spiky.cycle_degradation() >= flat.cycle_degradation() - 1e-12);
    }

    #[test]
    fn running_avg_tracks_trace() {
        let mut b = bms();
        b.apply_load(Watts::new(40_000.0), Seconds::new(300.0));
        let avg = b.running_soc_avg();
        let manual = b.trace().iter().sum::<f64>() / b.trace().len() as f64;
        assert!((avg - manual).abs() < 1e-12);
    }

    #[test]
    fn start_cycle_resets_trace_only() {
        let mut b = bms();
        b.apply_load(Watts::new(30_000.0), Seconds::new(600.0));
        let soc = b.soc().value();
        b.start_cycle();
        assert_eq!(b.trace().len(), 1);
        assert_eq!(b.trace()[0], soc);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn stats_reject_empty_trace() {
        let _ = SocStats::from_trace(&[]);
    }
}
