//! LU factorization with partial pivoting.

use crate::{LinalgError, Matrix};

/// LU factorization of a square matrix with partial (row) pivoting.
///
/// Factors `P·A = L·U` and solves `A·x = b` by forward/back substitution.
/// This is the factorization used for the KKT systems inside the active-set
/// QP solver, which are symmetric but indefinite — hence LU rather than
/// Cholesky.
///
/// # Examples
///
/// ```
/// use ev_linalg::{Lu, Matrix};
///
/// # fn main() -> Result<(), ev_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]])?; // needs pivoting
/// let lu = Lu::factor(&a)?;
/// let x = lu.solve(&[2.0, 2.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strict lower, unit diagonal implied) and U (upper).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for the determinant.
    perm_sign: f64,
}

impl Lu {
    /// Pivot threshold below which the matrix is declared singular.
    const SINGULAR_TOL: f64 = 1e-13;

    /// Factors the matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular input and
    /// [`LinalgError::Singular`] if a pivot falls below a tolerance scaled
    /// by the matrix magnitude.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let scale = a.norm_max().max(1.0);

        for k in 0..n {
            // Find pivot row.
            let mut pivot_row = k;
            let mut pivot_val = lu.get(k, k).abs();
            for r in (k + 1)..n {
                let v = lu.get(r, k).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val <= Self::SINGULAR_TOL * scale {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                for c in 0..n {
                    let tmp = lu.get(k, c);
                    lu.set(k, c, lu.get(pivot_row, c));
                    lu.set(pivot_row, c, tmp);
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu.get(k, k);
            for r in (k + 1)..n {
                let factor = lu.get(r, k) / pivot;
                lu.set(r, k, factor);
                for c in (k + 1)..n {
                    lu.add_at(r, c, -factor * lu.get(k, c));
                }
            }
        }
        Ok(Self {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    #[inline]
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, 1),
                actual: (b.len(), 1),
            });
        }
        // Apply permutation, then forward substitution with unit-lower L.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            let mut sum = x[r];
            for c in 0..r {
                sum -= self.lu.get(r, c) * x[c];
            }
            x[r] = sum;
        }
        // Back substitution with U.
        for r in (0..n).rev() {
            let mut sum = x[r];
            for c in (r + 1)..n {
                sum -= self.lu.get(r, c) * x[c];
            }
            x[r] = sum / self.lu.get(r, r);
        }
        Ok(x)
    }

    /// Determinant of the factored matrix.
    #[must_use]
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu.get(i, i);
        }
        d
    }

    /// Computes the inverse of the factored matrix column by column.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur once factoring succeeded, but
    /// the signature is kept fallible for uniformity).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let col = self.solve(&e)?;
            for (r, v) in col.iter().enumerate() {
                inv.set(r, c, *v);
            }
            e[c] = 0.0;
        }
        Ok(inv)
    }
}

/// Convenience one-shot solve of `A·x = b` via LU.
///
/// # Errors
///
/// Returns any error from [`Lu::factor`] or [`Lu::solve`].
///
/// # Examples
///
/// ```
/// use ev_linalg::{Matrix, solve};
///
/// # fn main() -> Result<(), ev_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]])?;
/// assert_eq!(solve(&a, &[2.0, 8.0])?, vec![1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    Lu::factor(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[1.0, 3.0, 2.0], &[1.0, 0.0, 0.0]]).unwrap();
        let x = solve(&a, &[4.0, 5.0, 6.0]).unwrap();
        // x = [6, 15, -23]: check residual.
        let r = a.matvec(&x).unwrap();
        for (ri, bi) in r.iter().zip(&[4.0, 5.0, 6.0]) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn requires_pivoting() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = solve(&a, &[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(Lu::factor(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            Lu::factor(&a).unwrap_err(),
            LinalgError::NotSquare { rows: 2, cols: 3 }
        ));
    }

    #[test]
    fn determinant_with_pivot_sign() {
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[3.0, 0.0]]).unwrap();
        let lu = Lu::factor(&a).unwrap();
        assert!((lu.det() - (-6.0)).abs() < 1e-12);
        let i = Lu::factor(&Matrix::identity(4)).unwrap();
        assert!((i.det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = Lu::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let err = prod.sub(&Matrix::identity(2)).unwrap().norm_max();
        assert!(err < 1e-12);
    }

    #[test]
    fn solve_rejects_wrong_rhs_len() {
        let lu = Lu::factor(&Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn well_scaled_tiny_pivots_still_solve() {
        // A tiny but well-conditioned matrix: scaling in the singularity
        // test keeps it factorable.
        let a = Matrix::from_rows(&[&[1e-8, 0.0], &[0.0, 1e-8]]).unwrap();
        let x = solve(&a, &[1e-8, 2e-8]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-6);
        assert!((x[1] - 2.0).abs() < 1e-6);
    }
}
