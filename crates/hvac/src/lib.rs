//! Single-zone variable-air-volume automotive HVAC model.
//!
//! Implements the paper's Section II-C: a single-zone VAV system in which a
//! variable-speed fan drives supply air through a cooling coil and a
//! heating coil into the cabin, with a damper recirculating a fraction of
//! cabin air back into the intake:
//!
//! ```text
//! Mc·dTz/dt = Q + ṁz·cp·(Ts − Tz)          cabin energy balance (Eq. 7)
//! Q = Q_solar + cx·Ax·(To − Tz)            thermal loads (Eq. 8)
//! Tm = (1 − dr)·To + dr·Tz                 air mixer (Eq. 9)
//! Ph = cp/ηh · ṁz · (Ts − Tc)              heating coil power (Eq. 10)
//! Pc = cp/ηc · ṁz · (Tm − Tc)              cooling coil power (Eq. 11)
//! Pf = kf · ṁz²                            fan power (Eq. 12)
//! ```
//!
//! The control inputs are the supply temperature `Ts`, the cooling-coil
//! outlet temperature `Tc`, the recirculation fraction `dr` and the supply
//! air flow `ṁz` ([`HvacInput`]); the single state is the cabin
//! temperature `Tz` ([`HvacState`]). The constraint set C1–C10 of the
//! paper's Section III-A is enforced by [`HvacLimits`].
//!
//! Both the plant simulation and the MPC's internal prediction use the
//! exact trapezoidal discretization of the cabin dynamics (the paper's
//! Eq. 18–19), provided by [`Hvac::step`].
//!
//! # Examples
//!
//! ```
//! use ev_hvac::{CabinParams, Hvac, HvacInput, HvacParams, HvacState};
//! use ev_units::{Celsius, KgPerSecond, Seconds, Watts};
//!
//! let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
//! let state = HvacState::new(Celsius::new(30.0)); // hot-soaked cabin
//! let input = HvacInput {
//!     ts: Celsius::new(12.0),
//!     tc: Celsius::new(12.0),
//!     dr: 0.5,
//!     mz: KgPerSecond::new(0.2),
//! };
//! let (next, power) = hvac.step(
//!     state,
//!     &input,
//!     Celsius::new(35.0),
//!     Watts::new(400.0),
//!     Seconds::new(1.0),
//! );
//! assert!(next.tz.value() < 30.0); // cabin cools
//! assert!(power.total().value() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod limits;
mod model;
pub mod moist_air;
mod params;

pub use limits::{ConstraintViolation, HvacLimits};
pub use model::{Hvac, HvacInput, HvacPower, HvacState};
pub use params::{CabinParams, HvacParams};
