//! Deterministic synthetic-fleet load generator.
//!
//! Drives N vehicle sessions through the [`FleetEngine`] from a seeded
//! arrival process over a drive-cycle × ambient mix, then reports
//! throughput and solve latency. Everything the *simulation* produces
//! is reproducible: the same seed yields the same cycle/ambient draws,
//! the same per-session step counts and therefore the same final fleet
//! state, captured in an order-independent digest. Wall-clock figures
//! (steps/sec, solve-latency quantiles, shed counts) are measured, not
//! derived, and sit outside the determinism guarantee.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use ev_drive::{AmbientConditions, DriveCycle, DriveProfile};
use ev_telemetry::Registry;
use ev_units::{Celsius, Seconds};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::params::{ControllerKind, ControllerSetup};
use crate::sim::Simulation;
use crate::EvParams;

use super::engine::{FleetConfig, FleetEngine, FleetError};
use super::pool::available_workers;
use super::session::SessionSummary;

/// Configuration for [`run_loadgen`].
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Number of vehicle sessions to serve.
    pub sessions: usize,
    /// Plant steps each session executes (clamped by its profile).
    pub steps_per_session: usize,
    /// Steps per submitted command (the fan-out granularity).
    pub chunk: usize,
    /// Seed for the arrival process and scenario mix.
    pub seed: u64,
    /// Shard count handed to the engine (`0` = auto).
    pub shards: usize,
    /// Per-shard command-queue bound.
    pub queue_capacity: usize,
    /// Controller every session runs.
    pub controller: ControllerKind,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            sessions: 100,
            steps_per_session: 120,
            chunk: 16,
            seed: 42,
            shards: 0,
            queue_capacity: 256,
            controller: ControllerKind::Mpc,
        }
    }
}

/// What a loadgen run produced. The fields up to and including
/// [`fleet_digest`](Self::fleet_digest) are **deterministic** in the
/// config (same seed → bit-identical values); the rest are wall-clock
/// measurements.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Sessions served.
    pub sessions: usize,
    /// Total plant steps executed fleet-wide.
    pub total_steps: u64,
    /// Drives stepped to the end of their profile.
    pub finished_drives: u64,
    /// MPC warm-start hits fleet-wide.
    pub warm_start_hits: u64,
    /// MPC warm-start misses fleet-wide.
    pub warm_start_misses: u64,
    /// Order-independent digest of every session's final state
    /// (id, steps, SoC, cabin temperature). Equal seeds must produce
    /// equal digests; a digest change flags a cross-session leak.
    pub fleet_digest: u64,
    /// Step submissions shed by backpressure before the parking retry
    /// (timing-dependent).
    pub shed_events: u64,
    /// Wall-clock duration of the run.
    pub wall_seconds: f64,
    /// Throughput: plant steps per wall-clock second.
    pub steps_per_second: f64,
    /// Sessions served per available core.
    pub sessions_per_core: f64,
    /// Median MPC control-step latency (milliseconds; NaN when the
    /// controller records no solve timings).
    pub p50_solve_ms: f64,
    /// 99th-percentile MPC control-step latency (milliseconds).
    pub p99_solve_ms: f64,
    /// Shards the engine ran with.
    pub shards: usize,
}

/// One splitmix64 avalanche round.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes one session summary into a single word.
fn summary_digest(s: &SessionSummary) -> u64 {
    let mut h = mix64(s.vehicle_id ^ 0x5EED_F1EE_7D16_E575);
    h = mix64(h ^ s.steps);
    h = mix64(h ^ u64::from(s.drives));
    h = mix64(h ^ u64::from(s.finished));
    h = mix64(h ^ s.soc_percent.to_bits());
    mix64(h ^ s.cabin_temp_c.to_bits())
}

/// Folds per-session digests **order-independently** (wrapping sum), so
/// shard scheduling cannot perturb the fleet digest.
fn fleet_digest(summaries: &[SessionSummary]) -> u64 {
    summaries
        .iter()
        .fold(0u64, |acc, s| acc.wrapping_add(summary_digest(s)))
}

/// The drive-cycle mix the generator draws from.
fn cycle_mix() -> [DriveCycle; 3] {
    [
        DriveCycle::ece_eudc(),
        DriveCycle::udds(),
        DriveCycle::us06(),
    ]
}

/// The ambient mix (°C): deep winter, freezing, mild, paper-hot.
const AMBIENT_MIX_C: [f64; 4] = [-10.0, 0.0, 20.0, 35.0];

/// Runs the synthetic fleet and reports. See [`LoadgenConfig`].
///
/// # Panics
///
/// Panics if `sessions` is zero or a built-in drive profile fails to
/// construct (it does not).
#[must_use]
pub fn run_loadgen(config: &LoadgenConfig) -> LoadgenReport {
    run_loadgen_on(config, &Registry::enabled())
}

/// [`run_loadgen`] recording into a caller-supplied registry — the
/// `evsim serve` path, where the same registry backs the scrape
/// endpoint so a burst's metrics are observable while it runs.
///
/// # Panics
///
/// Panics if `sessions` is zero or a built-in drive profile fails to
/// construct (it does not).
#[must_use]
pub fn run_loadgen_on(config: &LoadgenConfig, registry: &Registry) -> LoadgenReport {
    assert!(config.sessions > 0, "loadgen needs at least one session");
    let params = EvParams::nissan_leaf_like();
    let registry = registry.clone();
    let fleet = FleetEngine::new(FleetConfig {
        shards: config.shards,
        queue_capacity: config.queue_capacity,
        params: params.clone(),
        setup: ControllerSetup {
            telemetry: registry.clone(),
            ..ControllerSetup::default()
        },
    });
    let shards = fleet.shards();
    let cycles = cycle_mix();
    let chunk = config.chunk.max(1);
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Profiles are immutable and expensive (precomputed motor-power
    // vectors), so every (cycle, ambient) pair is built once and shared
    // across its sessions.
    let mut sim_cache: HashMap<(usize, usize), Arc<Simulation>> = HashMap::new();
    let started = Instant::now();

    let mut shed_events = 0u64;
    // (vehicle_id, remaining steps), in arrival order.
    let mut active: Vec<(u64, usize)> = Vec::with_capacity(config.sessions);
    let mut summaries: Vec<SessionSummary> = Vec::with_capacity(config.sessions);
    let mut opened = 0usize;

    // Submits one chunk with shed-then-park backpressure handling: a
    // full queue is *counted* (the shed event) and then waited out, so
    // every generated step eventually executes and the totals stay
    // deterministic.
    let submit_chunk =
        |fleet: &FleetEngine, id: u64, n: usize, shed: &mut u64| match fleet.try_step(id, n) {
            Ok(()) => {}
            Err(FleetError::Shed) => {
                *shed += 1;
                fleet.step(id, n).expect("engine alive while loadgen runs");
            }
            Err(e) => panic!("loadgen submission failed: {e}"),
        };

    while opened < config.sessions || !active.is_empty() {
        // Seeded arrival burst: a few vehicles connect…
        if opened < config.sessions {
            let burst = rng.gen_range(1usize..=4).min(config.sessions - opened);
            for _ in 0..burst {
                let id = opened as u64;
                let cycle_idx = rng.gen_range(0usize..cycles.len());
                let ambient_idx = rng.gen_range(0usize..AMBIENT_MIX_C.len());
                let sim = Arc::clone(sim_cache.entry((cycle_idx, ambient_idx)).or_insert_with(
                    || {
                        let profile = DriveProfile::from_cycle(
                            &cycles[cycle_idx],
                            AmbientConditions::constant(Celsius::new(AMBIENT_MIX_C[ambient_idx])),
                            Seconds::new(1.0),
                        );
                        Arc::new(
                            Simulation::new(params.clone(), profile).expect("profile non-empty"),
                        )
                    },
                ));
                fleet
                    .open(id, sim, config.controller)
                    .expect("engine alive while loadgen runs");
                active.push((id, config.steps_per_session));
                opened += 1;
            }
        }
        // …then every connected vehicle advances one chunk.
        for (id, remaining) in &mut active {
            let n = chunk.min(*remaining);
            submit_chunk(&fleet, *id, n, &mut shed_events);
            *remaining -= n;
        }
        // Completed sessions disconnect and contribute their summary.
        let mut still_active = Vec::with_capacity(active.len());
        for (id, remaining) in active {
            if remaining == 0 {
                summaries.push(fleet.close(id).expect("session was open"));
            } else {
                still_active.push((id, remaining));
            }
        }
        active = still_active;
    }

    let stats = fleet.shutdown();
    let wall_seconds = started.elapsed().as_secs_f64();
    let snapshot = registry.snapshot();
    let (p50, p99) = snapshot
        .histogram("mpc_control_step_seconds")
        .map_or((f64::NAN, f64::NAN), |h| {
            (h.quantile(0.5) * 1e3, h.quantile(0.99) * 1e3)
        });

    LoadgenReport {
        sessions: config.sessions,
        total_steps: stats.total.steps,
        finished_drives: stats.total.finished_drives,
        warm_start_hits: snapshot.counter("mpc_warm_start_hits_total").unwrap_or(0),
        warm_start_misses: snapshot.counter("mpc_warm_start_misses_total").unwrap_or(0),
        fleet_digest: fleet_digest(&summaries),
        shed_events,
        wall_seconds,
        steps_per_second: stats.total.steps as f64 / wall_seconds.max(1e-9),
        sessions_per_core: config.sessions as f64 / available_workers() as f64,
        p50_solve_ms: p50,
        p99_solve_ms: p99,
        shards,
    }
}

/// Formats a quantile for display (`n/a` when no samples exist).
fn fmt_ms(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3} ms")
    } else {
        "n/a".to_owned()
    }
}

/// Renders the report as the text block `evsim loadgen` prints.
#[must_use]
pub fn render_loadgen_report(r: &LoadgenReport) -> String {
    format!(
        "Synthetic fleet — {} sessions on {} shards\n\
         deterministic:\n\
         \x20 total steps        {}\n\
         \x20 finished drives    {}\n\
         \x20 warm-start hits    {}\n\
         \x20 warm-start misses  {}\n\
         \x20 fleet digest       {:016x}\n\
         measured:\n\
         \x20 wall time          {:.3} s\n\
         \x20 throughput         {:.0} steps/s\n\
         \x20 sessions/core      {:.1}\n\
         \x20 shed events        {}\n\
         \x20 solve p50          {}\n\
         \x20 solve p99          {}\n",
        r.sessions,
        r.shards,
        r.total_steps,
        r.finished_drives,
        r.warm_start_hits,
        r.warm_start_misses,
        r.fleet_digest,
        r.wall_seconds,
        r.steps_per_second,
        r.sessions_per_core,
        r.shed_events,
        fmt_ms(r.p50_solve_ms),
        fmt_ms(r.p99_solve_ms),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> LoadgenConfig {
        LoadgenConfig {
            sessions: 12,
            steps_per_session: 40,
            chunk: 8,
            seed: 7,
            shards: 2,
            queue_capacity: 32,
            controller: ControllerKind::Mpc,
        }
    }

    #[test]
    fn loadgen_executes_every_generated_step() {
        let config = quick_config();
        let report = run_loadgen(&config);
        assert_eq!(report.sessions, 12);
        assert_eq!(report.total_steps, 12 * 40);
        assert!(
            report.warm_start_hits > 0,
            "MPC fleet must reuse warm starts"
        );
        assert!(report.p99_solve_ms.is_finite(), "solve histogram populated");
    }

    #[test]
    fn same_seed_same_deterministic_fields() {
        let config = quick_config();
        let a = run_loadgen(&config);
        let b = run_loadgen(&config);
        assert_eq!(a.total_steps, b.total_steps);
        assert_eq!(a.finished_drives, b.finished_drives);
        assert_eq!(a.warm_start_hits, b.warm_start_hits);
        assert_eq!(a.warm_start_misses, b.warm_start_misses);
        assert_eq!(a.fleet_digest, b.fleet_digest);
    }

    #[test]
    fn different_seed_changes_the_mix() {
        let a = run_loadgen(&quick_config());
        let b = run_loadgen(&LoadgenConfig {
            seed: 8,
            ..quick_config()
        });
        assert_ne!(
            a.fleet_digest, b.fleet_digest,
            "a different arrival mix must change the fleet digest"
        );
    }

    #[test]
    fn report_renders_without_invalid_tokens() {
        let text = render_loadgen_report(&run_loadgen(&LoadgenConfig {
            sessions: 4,
            steps_per_session: 10,
            controller: ControllerKind::OnOff,
            ..quick_config()
        }));
        assert!(text.contains("fleet digest"));
        assert!(text.contains("solve p99          n/a"), "{text}");
    }
}
