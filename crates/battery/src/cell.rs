//! The battery state: power → current → Peukert-corrected SoC.

use ev_units::{Amperes, Percent, Seconds, Volts, Watts};

use crate::BatteryParams;

/// The traction battery: tracks state of charge under a power load using
/// Peukert's law (the paper's Eq. 13–14) and a terminal-voltage model
/// `V = V_oc(SoC) − I·R` for the power-to-current conversion.
///
/// Positive power discharges the pack; negative power (regeneration)
/// charges it through the coulombic charge efficiency.
///
/// # Examples
///
/// ```
/// use ev_battery::{Battery, BatteryParams};
/// use ev_units::{Seconds, Watts};
///
/// let mut b = Battery::new(BatteryParams::leaf_24kwh());
/// let before = b.soc();
/// b.step(Watts::new(30_000.0), Seconds::new(10.0));
/// assert!(b.soc() < before);
/// // Regeneration puts charge back.
/// let low = b.soc();
/// b.step(Watts::new(-20_000.0), Seconds::new(10.0));
/// assert!(b.soc() > low);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Battery {
    params: BatteryParams,
    soc: f64,
    /// Cumulative discharged charge (Ah), diagnostics.
    discharged_ah: f64,
    /// Cumulative recharged charge (Ah), diagnostics.
    charged_ah: f64,
}

impl Battery {
    /// Creates a battery at the configured initial SoC.
    #[must_use]
    pub fn new(params: BatteryParams) -> Self {
        let soc = params.initial_soc.value();
        Self {
            params,
            soc,
            discharged_ah: 0.0,
            charged_ah: 0.0,
        }
    }

    /// Borrows the parameters.
    #[must_use]
    pub fn params(&self) -> &BatteryParams {
        &self.params
    }

    /// Current state of charge.
    #[must_use]
    pub fn soc(&self) -> Percent {
        Percent::new(self.soc)
    }

    /// Resets to a given SoC (e.g. the start of a new discharge cycle).
    ///
    /// # Panics
    ///
    /// Panics if `soc` is outside `[0, 100]`.
    pub fn reset_soc(&mut self, soc: Percent) {
        assert!(
            (0.0..=100.0).contains(&soc.value()),
            "soc must lie in [0, 100]"
        );
        self.soc = soc.value();
    }

    /// Total charge discharged so far (diagnostics).
    #[must_use]
    pub fn discharged_ah(&self) -> f64 {
        self.discharged_ah
    }

    /// Total charge recharged so far (diagnostics).
    #[must_use]
    pub fn charged_ah(&self) -> f64 {
        self.charged_ah
    }

    /// Open-circuit voltage at the present SoC.
    #[must_use]
    pub fn open_circuit_voltage(&self) -> Volts {
        self.params.ocv.voltage(self.soc())
    }

    /// Solves the terminal current for a requested power:
    /// `P = (V_oc − I·R)·I` ⇒ `I = (V_oc − √(V_oc² − 4·R·P)) / (2R)`.
    ///
    /// Discharge power beyond the pack's deliverable maximum
    /// (`V_oc²/4R`) is clamped to that maximum. For charging the same
    /// quadratic applies with negative current.
    #[must_use]
    pub fn current_for_power(&self, power: Watts) -> Amperes {
        let voc = self.open_circuit_voltage().value();
        let r = self.params.internal_resistance.value();
        let p = power.value();
        if r == 0.0 {
            return Amperes::new(p / voc);
        }
        let disc = voc * voc - 4.0 * r * p;
        if disc <= 0.0 {
            // Requested more than the pack can deliver: max-power current.
            return Amperes::new(voc / (2.0 * r));
        }
        Amperes::new((voc - disc.sqrt()) / (2.0 * r))
    }

    /// The Peukert effective current `I_eff = I·(I/In)^(pc−1)` (Eq. 14)
    /// for a discharge current; charging current is scaled by the
    /// coulombic efficiency instead.
    #[must_use]
    pub fn effective_current(&self, current: Amperes) -> Amperes {
        let i = current.value();
        if i > 0.0 {
            let ratio = i / self.params.nominal_current.value();
            Amperes::new(i * ratio.powf(self.params.peukert_constant - 1.0))
        } else {
            Amperes::new(i * self.params.charge_efficiency)
        }
    }

    /// Advances the SoC under constant terminal power for `dt`
    /// (the discretized Eq. 13). Returns the new SoC.
    ///
    /// The SoC saturates at the configured `[min_soc, max_soc]` window —
    /// the BMS cut-offs the paper attributes to battery management.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn step(&mut self, power: Watts, dt: Seconds) -> Percent {
        assert!(dt.value() > 0.0, "battery step must be positive");
        let i = self.current_for_power(power);
        let i_eff = self.effective_current(i).value();
        let cn_as = self.params.nominal_capacity.value() * 3600.0;
        let delta = 100.0 * i_eff * dt.value() / cn_as;
        self.soc =
            (self.soc - delta).clamp(self.params.min_soc.value(), self.params.max_soc.value());
        let ah = i.value().abs() * dt.value() / 3600.0;
        if i.value() > 0.0 {
            self.discharged_ah += ah;
        } else {
            self.charged_ah += ah;
        }
        self.soc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OcvCurve;
    use ev_units::{AmpereHours, Ohms};

    fn battery() -> Battery {
        Battery::new(BatteryParams::leaf_24kwh())
    }

    /// An idealized pack for hand calculations: flat 360 V OCV, zero
    /// resistance, no Peukert effect.
    fn ideal() -> Battery {
        Battery::new(BatteryParams {
            nominal_capacity: AmpereHours::new(66.0),
            nominal_current: Amperes::new(22.0),
            peukert_constant: 1.0,
            ocv: OcvCurve::from_breakpoints(&[(0.0, 360.0), (100.0, 360.0)]),
            internal_resistance: Ohms::new(0.0),
            charge_efficiency: 1.0,
            initial_soc: Percent::new(90.0),
            min_soc: Percent::new(0.0),
            max_soc: Percent::new(100.0),
        })
    }

    #[test]
    fn ideal_discharge_hand_calculation() {
        let mut b = ideal();
        // 36 kW at 360 V = 100 A = 100/66 C-rate; 1 hour drains
        // 100 Ah / 66 Ah = 151 % — use 6 minutes: 10 Ah = 15.15 %.
        for _ in 0..360 {
            b.step(Watts::new(36_000.0), Seconds::new(1.0));
        }
        let expected = 90.0 - 100.0 * 10.0 / 66.0;
        assert!((b.soc().value() - expected).abs() < 1e-9, "soc {}", b.soc());
    }

    #[test]
    fn peukert_drains_faster_at_high_current() {
        let mk = |pc: f64| {
            Battery::new(BatteryParams {
                peukert_constant: pc,
                ..ideal().params.clone()
            })
        };
        let mut ideal_b = mk(1.0);
        let mut peukert_b = mk(1.2);
        // 72 kW = 200 A, well above the 22 A nominal.
        for _ in 0..60 {
            ideal_b.step(Watts::new(72_000.0), Seconds::new(1.0));
            peukert_b.step(Watts::new(72_000.0), Seconds::new(1.0));
        }
        assert!(
            peukert_b.soc().value() < ideal_b.soc().value() - 0.05,
            "peukert {} vs ideal {}",
            peukert_b.soc(),
            ideal_b.soc()
        );
    }

    #[test]
    fn peukert_is_neutral_at_nominal_current() {
        let b = ideal();
        let i = Amperes::new(22.0);
        let mut with_pc = ideal().params.clone();
        with_pc.peukert_constant = 1.3;
        let b2 = Battery::new(with_pc);
        assert!((b.effective_current(i).value() - b2.effective_current(i).value()).abs() < 1e-12);
    }

    #[test]
    fn regen_restores_charge_with_efficiency_loss() {
        let mut b = ideal();
        let start = b.soc().value();
        b.step(Watts::new(36_000.0), Seconds::new(60.0));
        let low = b.soc().value();
        b.step(Watts::new(-36_000.0), Seconds::new(60.0));
        let end = b.soc().value();
        assert!(end > low);
        assert!((end - start).abs() < 1e-9, "ideal round trip is lossless");
        // With 95 % charge efficiency the round trip loses charge.
        let mut lossy_params = ideal().params.clone();
        lossy_params.charge_efficiency = 0.95;
        let mut lb = Battery::new(lossy_params);
        lb.step(Watts::new(36_000.0), Seconds::new(60.0));
        lb.step(Watts::new(-36_000.0), Seconds::new(60.0));
        assert!(lb.soc().value() < start);
    }

    #[test]
    fn internal_resistance_raises_current_draw() {
        let b = battery(); // 0.1 Ω pack
        let i = b.current_for_power(Watts::new(30_000.0)).value();
        let voc = b.open_circuit_voltage().value();
        let ideal_i = 30_000.0 / voc;
        assert!(i > ideal_i, "sag increases current: {i} vs {ideal_i}");
        // Terminal power is reproduced: (Voc − I·R)·I = P.
        let p = (voc - i * 0.1) * i;
        assert!((p - 30_000.0).abs() < 1e-6);
    }

    #[test]
    fn over_power_request_clamps_to_max_deliverable() {
        let b = battery();
        let voc = b.open_circuit_voltage().value();
        let max_i = voc / 0.2;
        let i = b.current_for_power(Watts::new(1e9)).value();
        assert!((i - max_i).abs() < 1e-9);
    }

    #[test]
    fn soc_saturates_at_limits() {
        let mut b = battery();
        for _ in 0..100_000 {
            b.step(Watts::new(50_000.0), Seconds::new(1.0));
        }
        assert_eq!(b.soc().value(), 10.0); // min_soc floor
        for _ in 0..100_000 {
            b.step(Watts::new(-50_000.0), Seconds::new(1.0));
        }
        assert_eq!(b.soc().value(), 100.0); // max_soc ceiling
    }

    #[test]
    fn charge_bookkeeping() {
        let mut b = ideal();
        b.step(Watts::new(36_000.0), Seconds::new(36.0)); // 1 Ah out
        b.step(Watts::new(-36_000.0), Seconds::new(18.0)); // 0.5 Ah back
        assert!((b.discharged_ah() - 1.0).abs() < 1e-9);
        assert!((b.charged_ah() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reset_soc_works() {
        let mut b = battery();
        b.reset_soc(Percent::new(50.0));
        assert_eq!(b.soc().value(), 50.0);
    }

    #[test]
    #[should_panic(expected = "[0, 100]")]
    fn reset_rejects_invalid() {
        battery().reset_soc(Percent::new(120.0));
    }
}
