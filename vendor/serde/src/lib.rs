#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so this workspace vendors
//! a minimal (de)serialization core with the same *surface* the workspace
//! uses — `#[derive(Serialize, Deserialize)]`, `#[serde(transparent)]`
//! newtypes, and JSON round-trips through the sibling `serde_json` stub —
//! but a much simpler design: values serialize into a self-describing
//! [`Value`] tree, and deserialize back out of one. The derive macros live
//! in the sibling `serde_derive` crate and generate `to_value`/`from_value`
//! implementations against these traits.
//!
//! This is intentionally not wire-compatible with every corner of real
//! serde (no zero-copy, no custom Serializer/Deserializer); it preserves
//! exactly the behavior the workspace relies on: lossless JSON round-trips
//! of plain-old-data structs, newtype units, and unit-variant enums.

#![forbid(unsafe_code)]

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (stored as `f64`, which is lossless for every
    /// integer the workspace serializes).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of a map value.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] if `self` is not a map or lacks the field.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            other => Err(Error::msg(format!(
                "expected map with field `{name}`, found {other:?}"
            ))),
        }
    }

    /// Looks up an element of a sequence value.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] if `self` is not a sequence or is too short.
    pub fn index(&self, i: usize) -> Result<&Value, Error> {
        match self {
            Value::Seq(items) => items
                .get(i)
                .ok_or_else(|| Error::msg(format!("missing element {i}"))),
            other => Err(Error::msg(format!("expected sequence, found {other:?}"))),
        }
    }

    /// Extracts a string.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] if `self` is not a string.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::msg(format!("expected string, found {other:?}"))),
        }
    }

    /// Extracts a number.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] if `self` is not a number.
    pub fn as_num(&self) -> Result<f64, Error> {
        match self {
            Value::Num(n) => Ok(*n),
            other => Err(Error::msg(format!("expected number, found {other:?}"))),
        }
    }
}

/// (De)serialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Self(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the tree does not match `Self`'s shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {other:?}"))),
        }
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(v.as_num()? as $t)
            }
        }
    )*};
}

impl_num!(f64, f32, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_str()?.to_string())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected sequence, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Deserialize::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| Error::msg(format!("expected {N} elements, found {}", items.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($($t::from_value(v.index($idx)?)?,)+))
            }
        }
    )*};
}

impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), None);
        let s = Some(4.0);
        assert_eq!(Option::<f64>::from_value(&s.to_value()).unwrap(), s);
        let t = (1.0, "x".to_string());
        assert_eq!(<(f64, String)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn map_field_access_reports_missing() {
        let m = Value::Map(vec![("a".into(), Value::Num(1.0))]);
        assert!(m.field("a").is_ok());
        assert!(m.field("b").unwrap_err().to_string().contains("missing"));
        assert!(Value::Null.field("a").is_err());
    }
}
