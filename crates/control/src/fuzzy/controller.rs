//! The fuzzy-based climate controller baseline (the paper's ref [10]).

use ev_hvac::{Hvac, HvacInput, HvacLimits};
use ev_units::Celsius;

use super::engine::{FuzzyEngine, MembershipFunction, Rule, Term};
use crate::{duty_to_input, ClimateController, ControlContext};

/// The fuzzy-based temperature controller the paper compares against
/// (Ibrahim et al., its ref \[10\]): a Mamdani system on the temperature
/// error and its rate of change, producing a signed actuation duty that
/// modulates fan flow and coil temperatures.
///
/// Compared with the On/Off baseline it stabilizes the cabin temperature
/// tightly (the paper's Fig. 5) and consumes less power (its Fig. 8),
/// but — like every reactive scheme — it knows nothing about the battery
/// or the road ahead.
///
/// # Examples
///
/// ```
/// use ev_control::{ClimateController, ControlContext, FuzzyController};
/// use ev_hvac::{CabinParams, Hvac, HvacLimits, HvacParams, HvacState};
/// use ev_units::{Celsius, Percent, Seconds, Watts};
///
/// let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
/// let mut ctrl = FuzzyController::new(hvac, HvacLimits::default(), Celsius::new(24.0));
/// let ctx = ControlContext {
///     state: HvacState::new(Celsius::new(26.0)),
///     ambient: Celsius::new(35.0),
///     solar: Watts::new(400.0),
///     soc: Percent::new(90.0),
///     soc_avg: 92.0,
///     dt: Seconds::new(1.0),
///     elapsed: Seconds::ZERO,
///     preview: &[],
/// };
/// let input = ctrl.control(&ctx);
/// assert!(input.tc < ctx.state.tz); // cooling
/// ```
#[derive(Debug, Clone)]
pub struct FuzzyController {
    hvac: Hvac,
    limits: HvacLimits,
    target: Celsius,
    engine: FuzzyEngine,
    prev_error: Option<f64>,
}

impl FuzzyController {
    /// Error universe half-width (K): errors beyond ±2 K saturate.
    const ERROR_SPAN: f64 = 2.0;
    /// Error-rate universe half-width (K/s).
    const RATE_SPAN: f64 = 0.05;

    /// Creates the controller with the standard 5×3 rule base.
    #[must_use]
    pub fn new(hvac: Hvac, limits: HvacLimits, target: Celsius) -> Self {
        Self {
            hvac,
            limits,
            target,
            engine: Self::build_engine(),
            prev_error: None,
        }
    }

    /// The temperature target.
    #[must_use]
    pub fn target(&self) -> Celsius {
        self.target
    }

    /// Resets the derivative memory.
    pub fn reset(&mut self) {
        self.prev_error = None;
    }

    /// Builds the Mamdani system: error {NL, NS, ZE, PS, PL} ×
    /// rate {N, Z, P} → duty {strong-heat … strong-cool} on [−1, 1].
    fn build_engine() -> FuzzyEngine {
        let tri = |a: f64, b: f64, c: f64| MembershipFunction::Triangle { a, b, c };
        let error_terms = vec![
            Term {
                label: "NL",
                mf: tri(-1.0, -1.0, -0.4),
            },
            Term {
                label: "NS",
                mf: tri(-0.8, -0.35, 0.0),
            },
            Term {
                label: "ZE",
                mf: tri(-0.15, 0.0, 0.15),
            },
            Term {
                label: "PS",
                mf: tri(0.0, 0.35, 0.8),
            },
            Term {
                label: "PL",
                mf: tri(0.4, 1.0, 1.0),
            },
        ];
        let rate_terms = vec![
            Term {
                label: "N",
                mf: tri(-1.0, -1.0, 0.0),
            },
            Term {
                label: "Z",
                mf: tri(-0.4, 0.0, 0.4),
            },
            Term {
                label: "P",
                mf: tri(0.0, 1.0, 1.0),
            },
        ];
        let duty_terms = vec![
            Term {
                label: "heat-strong",
                mf: tri(-1.0, -1.0, -0.5),
            },
            Term {
                label: "heat-weak",
                mf: tri(-0.8, -0.4, 0.0),
            },
            Term {
                label: "rest",
                mf: tri(-0.15, 0.0, 0.15),
            },
            Term {
                label: "cool-weak",
                mf: tri(0.0, 0.4, 0.8),
            },
            Term {
                label: "cool-strong",
                mf: tri(0.5, 1.0, 1.0),
            },
        ];
        // Rule matrix: rows = error term, columns = rate term.
        // Rates reinforce or soften the action (classic PD-like table).
        #[rustfmt::skip]
        let matrix: [[usize; 3]; 5] = [
            // rate:  N  Z  P        error:
            [0, 0, 1], // NL (much too cold)   → strong heat
            [0, 1, 2], // NS                  → heat, ease off if warming
            [1, 2, 3], // ZE                  → rest, lean against drift
            [2, 3, 4], // PS                  → cool, ease off if cooling
            [3, 4, 4], // PL (much too hot)   → strong cool
        ];
        let mut rules = Vec::with_capacity(15);
        for (ei, row) in matrix.iter().enumerate() {
            for (ri, &out) in row.iter().enumerate() {
                rules.push(Rule {
                    antecedents: vec![Some(ei), Some(ri)],
                    consequent: out,
                });
            }
        }
        FuzzyEngine::new(
            vec![error_terms, rate_terms],
            duty_terms,
            (-1.0, 1.0),
            rules,
        )
    }
}

impl ClimateController for FuzzyController {
    fn name(&self) -> &'static str {
        "fuzzy"
    }

    fn reset_session(&mut self) {
        self.prev_error = None;
    }

    fn control(&mut self, ctx: &ControlContext<'_>) -> HvacInput {
        let error = ctx.state.tz.diff(self.target); // + = too hot
        let rate = match self.prev_error {
            Some(prev) => (error - prev) / ctx.dt.value(),
            None => 0.0,
        };
        self.prev_error = Some(error);
        let duty = self.engine.infer(&[
            (error / Self::ERROR_SPAN).clamp(-1.0, 1.0),
            (rate / Self::RATE_SPAN).clamp(-1.0, 1.0),
        ]);
        duty_to_input(&self.hvac, &self.limits, ctx, duty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_hvac::{CabinParams, HvacParams, HvacState};
    use ev_units::{Percent, Seconds, Watts};

    fn fuzzy() -> FuzzyController {
        FuzzyController::new(
            Hvac::new(CabinParams::default(), HvacParams::default()),
            HvacLimits::default(),
            Celsius::new(24.0),
        )
    }

    fn ctx_at(tz: f64, to: f64) -> ControlContext<'static> {
        ControlContext {
            state: HvacState::new(Celsius::new(tz)),
            ambient: Celsius::new(to),
            solar: Watts::new(400.0),
            soc: Percent::new(90.0),
            soc_avg: 92.0,
            dt: Seconds::new(1.0),
            elapsed: Seconds::ZERO,
            preview: &[],
        }
    }

    #[test]
    fn hot_cabin_gets_cooling() {
        let mut c = fuzzy();
        let input = c.control(&ctx_at(29.0, 35.0));
        assert!(input.tc.value() < 24.0, "{input:?}");
        assert!(input.mz.value() > 0.1);
    }

    #[test]
    fn cold_cabin_gets_heating() {
        let mut c = fuzzy();
        let input = c.control(&ctx_at(19.0, -5.0));
        assert!(input.ts > input.tc);
    }

    #[test]
    fn near_target_rests() {
        let mut c = fuzzy();
        let input = c.control(&ctx_at(24.05, 30.0));
        // Minimal flow, near-passive coils.
        assert!(input.mz.value() < 0.05, "{input:?}");
    }

    #[test]
    fn closed_loop_stabilizes_tighter_than_onoff() {
        let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
        let mut c = fuzzy();
        let mut state = HvacState::new(Celsius::new(30.0));
        let mut min_tz: f64 = f64::MAX;
        let mut max_tz: f64 = f64::MIN;
        for k in 0..2500 {
            let ctx = ControlContext {
                state,
                ..ctx_at(state.tz.value(), 35.0)
            };
            let input = c.control(&ctx);
            state = hvac
                .step(
                    state,
                    &input,
                    Celsius::new(35.0),
                    Watts::new(400.0),
                    Seconds::new(1.0),
                )
                .0;
            if k > 1200 {
                min_tz = min_tz.min(state.tz.value());
                max_tz = max_tz.max(state.tz.value());
            }
        }
        // Fuzzy control: settled band well under a kelvin (paper Fig. 5).
        assert!(max_tz - min_tz < 1.0, "band {}", max_tz - min_tz);
        assert!((0.5 * (max_tz + min_tz) - 24.0).abs() < 1.5, "center off");
    }

    #[test]
    fn duty_direction_is_monotone_in_error() {
        let mut c = fuzzy();
        // Hotter cabin → stronger actuation → more fan flow.
        let mild = c.control(&ctx_at(25.0, 35.0));
        c.reset();
        let hot = c.control(&ctx_at(29.0, 35.0));
        assert!(hot.mz.value() >= mild.mz.value() - 1e-9);
    }
}
