//! Tuning the battery lifetime-aware MPC: sweep the Eq. 21 weights and
//! watch the comfort ↔ power ↔ lifetime trade-off move.
//!
//! `w1` prices HVAC power, `w2` prices SoC deviation (the battery term),
//! `w3` prices temperature error. The paper fixes one operating point;
//! this example shows the whole dial.
//!
//! ```text
//! cargo run --release --example mpc_tuning
//! ```

use evclimate::control::{MpcController, MpcWeights};
use evclimate::core::experiments::ascii_chart;
use evclimate::prelude::*;

fn run_weights(
    params: &EvParams,
    sim: &Simulation,
    weights: MpcWeights,
) -> Result<(f64, f64, f64), Box<dyn std::error::Error>> {
    let mut mpc = MpcController::builder(params.hvac_model(), params.limits())
        .target(params.target)
        .horizon(8)
        .recompute_every(4)
        .weights(weights)
        .battery(params.mpc_battery_model())
        .accessory_power(Watts::new(300.0))
        .build()?;
    let r = sim.run(&mut mpc)?;
    let m = r.metrics();
    Ok((
        m.delta_soh_milli_percent,
        m.avg_hvac_power.value(),
        m.mean_temp_error,
    ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = DriveProfile::from_cycle(
        &DriveCycle::ece_eudc(),
        AmbientConditions::constant(Celsius::new(35.0)),
        Seconds::new(1.0),
    );
    let mut params = EvParams::nissan_leaf_like();
    params.initial_cabin = Some(params.target);
    let sim = Simulation::new(params.clone(), profile)?;

    println!("ECE_EUDC @ 35 °C — sweeping the lifetime weight w2\n");
    println!(
        "{:>10} {:>12} {:>10} {:>14}",
        "w2", "ΔSoH (m%)", "HVAC kW", "mean |ΔT| (K)"
    );
    let base = MpcWeights::default();
    let sweep = [0.0, 5.0, 20.0, 60.0, 150.0];
    let mut soh_curve = Vec::new();
    let mut comfort_curve = Vec::new();
    for &w2 in &sweep {
        let (soh, kw, terr) = run_weights(&params, &sim, MpcWeights { w2, ..base })?;
        println!("{w2:>10.0} {soh:>12.3} {kw:>10.3} {terr:>14.2}");
        soh_curve.push(soh);
        comfort_curve.push(terr);
    }
    println!("\nthe trade-off (x = sweep index over w2 ∈ {sweep:?}):");
    print!(
        "{}",
        ascii_chart(
            &[("ΔSoH m%", &soh_curve), ("mean |ΔT| K", &comfort_curve)],
            40,
            10,
        )
    );
    println!("\nraising w2 buys battery life with cabin-temperature slack —");
    println!("exactly the dial the paper's Eq. 21 exposes.");
    Ok(())
}
