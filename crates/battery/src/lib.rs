//! Lithium-ion battery model: Peukert rate-capacity SoC tracking, SoH
//! capacity fade, and a battery management system facade.
//!
//! Implements the paper's Section II-D:
//!
//! ```text
//! SoC_t = SoC_0 − 100·∫ I_eff / Cn dt         rate-capacity (Eq. 13)
//! I_eff = I·(I/In)^(pc−1)                     Peukert's law (Eq. 14)
//! ΔSoH = (a1·e^(α·SoC_dev) + a2)·(a3·e^(β·SoC_avg))   capacity fade (Eq. 15)
//! SoC_dev² = 1/T ∫ (SoC(t) − SoC_avg)² dt     (Eq. 16)
//! SoC_avg  = 1/T ∫ SoC(t) dt                  (Eq. 17)
//! ```
//!
//! The key mechanism the paper's controller exploits lives here: a
//! flatter, lower SoC trajectory within a discharge cycle (smaller
//! `SoC_dev` and `SoC_avg`) degrades the battery less, so the number of
//! cycles until the pack fades to 80 % capacity — its lifetime — grows.
//!
//! # Examples
//!
//! ```
//! use ev_battery::{Battery, BatteryParams};
//! use ev_units::{Seconds, Watts};
//!
//! let mut battery = Battery::new(BatteryParams::leaf_24kwh());
//! assert_eq!(battery.soc().value(), 95.0);
//! battery.step(Watts::new(20_000.0), Seconds::new(60.0)); // 20 kW for 1 min
//! assert!(battery.soc().value() < 95.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bms;
mod cell;
mod charger;
mod estimator;
mod hess;
mod params;
mod soh;
mod thermal;

pub use bms::{Bms, SocStats};
pub use cell::Battery;
pub use charger::{charge_to, ChargeSession, Charger};
pub use estimator::{EstimatorConfig, SocEstimator};
pub use hess::{Hess, HessSplit, SplitPolicy, Ultracapacitor};
pub use params::{BatteryParams, OcvCurve};
pub use soh::{SohModel, SohParams, SohParamsError};
pub use thermal::{PackThermal, PackThermalParams};
