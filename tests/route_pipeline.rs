//! Integration: navigation-style routes (the paper's §II-A input) driven
//! end-to-end through the full simulator stack.

use ev_testkit::InvariantObserver;
use evclimate::core::ControllerKind;
use evclimate::drive::{Route, RouteSegment};
use evclimate::prelude::*;
use evclimate::units::KilometersPerHour;

fn kmh(v: f64) -> MetersPerSecond {
    KilometersPerHour::new(v).to_meters_per_second()
}

/// A small-town commute: residential streets, an arterial with lights,
/// a rural climb, and a descent home.
fn commute() -> Route {
    Route::new(vec![
        RouteSegment::new(600.0, kmh(30.0), 0.0, 1.0),
        RouteSegment::new(2_500.0, kmh(60.0), 0.5, 0.8),
        RouteSegment::new(4_000.0, kmh(80.0), 4.0, 1.0), // the climb
        RouteSegment::new(4_000.0, kmh(80.0), -4.0, 1.0), // the descent
        RouteSegment::new(1_000.0, kmh(50.0), 0.0, 0.9),
    ])
    .with_stop_after(0, Seconds::new(12.0))
    .with_stop_after(1, Seconds::new(25.0))
}

#[test]
fn route_drives_through_the_full_stack() {
    let profile = commute().to_profile(
        AmbientConditions::constant(Celsius::new(32.0)),
        Seconds::new(1.0),
    );
    let mut params = EvParams::nissan_leaf_like();
    params.initial_cabin = Some(params.target);
    let sim = Simulation::new(params.clone(), profile).expect("profile non-empty");
    let mut mpc = ControllerKind::Mpc
        .instantiate(&params)
        .expect("instantiates");
    let mut invariants = InvariantObserver::for_params(&params);
    let r = sim
        .run_observed(mpc.as_mut(), &mut invariants)
        .expect("runs");
    invariants.report().assert_clean();
    let m = r.metrics();
    // ~12.1 km route.
    assert!((m.distance.value() - commute().length().value()).abs() < 0.7);
    assert!(m.energy.value() > 0.5, "{m:?}");
    assert!(m.delta_soh_milli_percent > 0.0);
}

#[test]
fn climb_consumes_descent_regenerates() {
    let profile = commute().to_profile(
        AmbientConditions::constant(Celsius::new(20.0)),
        Seconds::new(1.0),
    );
    let params = EvParams::nissan_leaf_like();
    let sim = Simulation::new(params.clone(), profile).expect("profile non-empty");
    // The precomputed motor-power vector must show both heavy draw on the
    // climb and regeneration on the descent.
    let max = sim.motor_power().iter().copied().fold(f64::MIN, f64::max);
    let min = sim.motor_power().iter().copied().fold(f64::MAX, f64::min);
    assert!(max > 25_000.0, "climb draw {max}");
    assert!(min < -5_000.0, "descent regen {min}");
}

#[test]
fn traffic_factor_slows_and_cheapens_the_drive() {
    let free = Route::new(vec![RouteSegment::new(5_000.0, kmh(100.0), 0.0, 1.0)]);
    let jammed = Route::new(vec![RouteSegment::new(5_000.0, kmh(100.0), 0.0, 0.5)]);
    let params = EvParams::nissan_leaf_like();
    let run = |route: &Route| {
        let profile = route.to_profile(
            AmbientConditions::constant(Celsius::new(20.0)),
            Seconds::new(1.0),
        );
        let sim = Simulation::new(params.clone(), profile).expect("non-empty");
        let mut c = ControllerKind::Fuzzy.instantiate(&params).expect("ok");
        let mut invariants = InvariantObserver::for_params(&params);
        let result = sim.run_observed(c.as_mut(), &mut invariants).expect("runs");
        invariants.report().assert_clean();
        result
    };
    let fast = run(&free);
    let slow = run(&jammed);
    // Same distance, longer duration, lower aero losses per km.
    assert!(slow.series.t.len() > fast.series.t.len());
    assert!(
        slow.metrics().kwh_per_100km < fast.metrics().kwh_per_100km,
        "jammed {} vs free {}",
        slow.metrics().kwh_per_100km,
        fast.metrics().kwh_per_100km
    );
}
