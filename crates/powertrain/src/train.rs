//! The electric power train: tractive force → electrical power.

use ev_units::{MetersPerSecond, Watts};

use crate::{RoadLoad, VehicleParams};

/// The EV power train: converts a kinematic operating point
/// `(v, a, slope)` into electrical power at the battery terminals
/// (the paper's Eq. 6, including the generator quadrant).
///
/// Positive power is drawn from the battery; negative power is
/// regenerative braking fed back into it, capped by
/// [`VehicleParams::max_regen_power`] and disabled below the regen cutoff
/// speed (friction brakes take over, as in the real vehicle).
///
/// # Examples
///
/// ```
/// use ev_powertrain::{PowerTrain, VehicleParams};
/// use ev_units::MetersPerSecond;
///
/// let pt = PowerTrain::new(VehicleParams::nissan_leaf());
/// // Hard braking from 80 km/h regenerates (negative power).
/// let p = pt.power(MetersPerSecond::new(22.2), -2.0, 0.0);
/// assert!(p.value() < 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTrain {
    params: VehicleParams,
}

impl PowerTrain {
    /// Creates a power train from vehicle parameters.
    #[must_use]
    pub fn new(params: VehicleParams) -> Self {
        Self { params }
    }

    /// Borrows the vehicle parameters.
    #[must_use]
    pub fn params(&self) -> &VehicleParams {
        &self.params
    }

    /// Electrical power at the battery terminals for the operating point.
    ///
    /// `a` is the acceleration in m/s² and `slope_percent` the road grade
    /// (100 % = 45°). Returns positive draw or negative regeneration.
    /// Tractive demand beyond the motor's torque/power envelope saturates
    /// at the envelope (the real vehicle simply falls behind the cycle).
    #[must_use]
    pub fn power(&self, v: MetersPerSecond, a: f64, slope_percent: f64) -> Watts {
        let load = RoadLoad::at(&self.params, v, a, slope_percent);
        let mut f_tr = load.tractive().value();
        // Motor capability envelope: torque-limited at low speed,
        // power-limited above base speed.
        let f_torque_max =
            self.params.max_motor_torque * self.params.gear_ratio / self.params.wheel_radius;
        let f_power_max = if v.value() > 0.1 {
            self.params.max_motor_power.to_watts().value() / v.value()
        } else {
            f_torque_max
        };
        let f_cap = f_torque_max.min(f_power_max);
        f_tr = f_tr.clamp(-f_cap, f_cap);
        let mech = f_tr * v.value(); // mechanical power at the wheels

        // Motor operating point for the efficiency lookup.
        let omega = v.value() / self.params.wheel_radius * self.params.gear_ratio;
        let tau = f_tr * self.params.wheel_radius / self.params.gear_ratio;
        let eta = self.params.efficiency.efficiency(omega, tau);

        if mech >= 0.0 {
            // Motor quadrant: battery supplies mech / η.
            Watts::new(mech / eta)
        } else if v < self.params.regen_cutoff_speed {
            // Friction braking only.
            Watts::ZERO
        } else {
            // Generator quadrant: battery receives mech · η, capped.
            let regen = (mech * eta).max(-self.params.max_regen_power.to_watts().value());
            Watts::new(regen)
        }
    }

    /// The force decomposition at an operating point (exposed so callers
    /// can analyze where the power goes, per C-INTERMEDIATE).
    #[must_use]
    pub fn road_load(&self, v: MetersPerSecond, a: f64, slope_percent: f64) -> RoadLoad {
        RoadLoad::at(&self.params, v, a, slope_percent)
    }

    /// Convenience: energy consumption in kWh per 100 km at a steady
    /// cruise speed on a flat road.
    #[must_use]
    pub fn cruise_consumption_kwh_per_100km(&self, v: MetersPerSecond) -> f64 {
        if v.value() <= 0.0 {
            return 0.0;
        }
        let p_kw = self.power(v, 0.0, 0.0).to_kilowatts().value();
        let hours_per_100km = 100.0 / v.to_kilometers_per_hour().value();
        p_kw * hours_per_100km
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EfficiencyMap;

    fn pt() -> PowerTrain {
        PowerTrain::new(VehicleParams::nissan_leaf())
    }

    #[test]
    fn standstill_draws_nothing() {
        assert_eq!(pt().power(MetersPerSecond::ZERO, 0.0, 0.0).value(), 0.0);
    }

    #[test]
    fn cruise_power_matches_hand_calculation_with_constant_eta() {
        let params = VehicleParams::builder()
            .efficiency(EfficiencyMap::constant(0.9))
            .build();
        let pt = PowerTrain::new(params);
        let v = 25.0;
        let aero = 0.5 * 1.2041 * 0.28 * 2.27 * v * v;
        let roll = 1625.0 * crate::GRAVITY * (0.01 + 1.2e-6 * v * v);
        let expected = (aero + roll) * v / 0.9;
        let p = pt.power(MetersPerSecond::new(v), 0.0, 0.0).value();
        assert!((p - expected).abs() < 1e-6, "p {p} vs {expected}");
    }

    #[test]
    fn leaf_consumption_is_realistic() {
        // Published Leaf figures: roughly 12–20 kWh/100 km depending on
        // speed. Check 100 km/h sits in a plausible band.
        let c = pt().cruise_consumption_kwh_per_100km(MetersPerSecond::new(27.78));
        assert!(c > 10.0 && c < 22.0, "consumption {c} kWh/100km");
        // And 50 km/h should be meaningfully cheaper.
        let c50 = pt().cruise_consumption_kwh_per_100km(MetersPerSecond::new(13.89));
        assert!(c50 < c, "c50 {c50} < c {c}");
    }

    #[test]
    fn acceleration_dominates_cruise() {
        let cruise = pt().power(MetersPerSecond::new(15.0), 0.0, 0.0).value();
        let accel = pt().power(MetersPerSecond::new(15.0), 2.0, 0.0).value();
        assert!(accel > 3.0 * cruise, "accel {accel} cruise {cruise}");
    }

    #[test]
    fn uphill_costs_more_than_flat() {
        let flat = pt().power(MetersPerSecond::new(20.0), 0.0, 0.0).value();
        let hill = pt().power(MetersPerSecond::new(20.0), 0.0, 6.0).value();
        assert!(hill > 2.0 * flat);
    }

    #[test]
    fn downhill_braking_regenerates_and_is_capped() {
        let p = pt().power(MetersPerSecond::new(25.0), -3.0, -5.0);
        assert!(p.value() < 0.0);
        assert!(p.value() >= -30_000.0, "regen cap violated: {p}");
    }

    #[test]
    fn no_regen_below_cutoff_speed() {
        let p = pt().power(MetersPerSecond::new(1.0), -2.0, 0.0);
        assert_eq!(p.value(), 0.0);
    }

    #[test]
    fn regen_recovers_less_than_mech_energy() {
        // Moderate braking below the cap: battery receives mech · η < mech.
        let params = VehicleParams::builder()
            .efficiency(EfficiencyMap::constant(0.9))
            .max_regen_kw(1000.0)
            .build();
        let pt = PowerTrain::new(params);
        let v = MetersPerSecond::new(20.0);
        let load = pt.road_load(v, -1.0, 0.0);
        let mech = load.tractive().value() * v.value();
        assert!(mech < 0.0);
        let p = pt.power(v, -1.0, 0.0).value();
        assert!((p - mech * 0.9).abs() < 1e-9);
    }

    #[test]
    fn motor_envelope_saturates_extreme_demands() {
        let p = pt();
        // Launch at 5 m/s with absurd acceleration: force capped by torque.
        let f_cap = 280.0 * 7.94 / 0.3156;
        let load = p.road_load(MetersPerSecond::new(5.0), 50.0, 0.0);
        assert!(load.tractive().value() > f_cap, "demand must exceed cap");
        let power = p.power(MetersPerSecond::new(5.0), 50.0, 0.0).value();
        // Capped mechanical power = f_cap · v; electrical adds η division.
        assert!(power < f_cap * 5.0 / 0.6 + 1.0, "power {power}");
        // At high speed the 80 kW power limit binds instead.
        let hp = p.power(MetersPerSecond::new(30.0), 10.0, 0.0).value();
        assert!(hp < 80_000.0 / 0.6, "power-limited: {hp}");
    }

    #[test]
    fn normal_driving_is_unaffected_by_envelope() {
        let p = pt();
        // A 1.5 m/s² launch at 10 m/s sits well inside the envelope.
        let load = p.road_load(MetersPerSecond::new(10.0), 1.5, 0.0);
        let f_cap = 280.0 * 7.94 / 0.3156;
        assert!(load.tractive().value() < f_cap);
    }

    #[test]
    fn efficiency_map_affects_power() {
        let good = PowerTrain::new(
            VehicleParams::builder()
                .efficiency(EfficiencyMap::constant(0.95))
                .build(),
        );
        let bad = PowerTrain::new(
            VehicleParams::builder()
                .efficiency(EfficiencyMap::constant(0.70))
                .build(),
        );
        let v = MetersPerSecond::new(20.0);
        assert!(bad.power(v, 0.5, 0.0).value() > good.power(v, 0.5, 0.0).value());
    }
}
