//! The shared drive-profile × controller sweep behind Figs. 7 and 8.

use ev_drive::DriveCycle;

use crate::observe::{NoopObserver, StepObserver};
use crate::{ControllerKind, Simulation, SimulationResult};

use super::{experiment_params, profile_at, COMPARISON_AMBIENT_C};

/// One cell of the evaluation matrix: a cycle driven by a controller.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Drive-profile name (e.g. `"NEDC"`).
    pub profile: String,
    /// Which controller drove it.
    pub controller: ControllerKind,
    /// The full simulation result.
    pub result: SimulationResult,
}

/// Runs the paper's full evaluation matrix — the five standard cycles
/// {NEDC, US06, ECE_EUDC, SC03, UDDS} × the three methodologies — at the
/// comparison ambient temperature. Figs. 7 and 8 are both projections of
/// this matrix.
///
/// # Panics
///
/// Panics if a simulation cannot be constructed (cannot happen for the
/// built-in cycles and parameters).
#[must_use]
pub fn evaluation_sweep() -> Vec<SweepCell> {
    evaluation_sweep_at(COMPARISON_AMBIENT_C, &DriveCycle::paper_evaluation_set())
}

/// The same matrix at an arbitrary ambient and cycle set (used by
/// Table I and the ablation benches).
///
/// # Panics
///
/// Panics if a simulation cannot be constructed (cannot happen for the
/// built-in cycles and parameters).
#[must_use]
pub fn evaluation_sweep_at(ambient_c: f64, cycles: &[DriveCycle]) -> Vec<SweepCell> {
    evaluation_sweep_observed(ambient_c, cycles, |_, _| NoopObserver)
        .into_iter()
        .map(|(cell, NoopObserver)| cell)
        .collect()
}

/// The evaluation matrix with a [`StepObserver`] attached to every cell,
/// so callers (the physics-invariant harness in `ev-testkit`, trace
/// exporters) can watch each simulated step of each cell. `make_observer`
/// is called once per cell with the profile name and controller kind;
/// the driven observers are returned alongside their cells.
///
/// # Panics
///
/// Panics if a simulation cannot be constructed (cannot happen for the
/// built-in cycles and parameters).
#[must_use]
pub fn evaluation_sweep_observed<O, F>(
    ambient_c: f64,
    cycles: &[DriveCycle],
    make_observer: F,
) -> Vec<(SweepCell, O)>
where
    O: StepObserver + Send,
    F: Fn(&str, ControllerKind) -> O + Sync,
{
    let mut params = experiment_params();
    // The paper compares the steady *regulation* behavior of the three
    // methodologies (its Fig. 5 traces start settled); start from a
    // preconditioned cabin so a controller cannot look cheap by simply
    // failing to pull a soaked cabin into the comfort zone.
    params.initial_cabin = Some(params.target);
    // Every cell is independent; run them on scoped threads (the matrix
    // is at most 5 cycles × 3 controllers).
    let sims: Vec<(String, Simulation)> = cycles
        .iter()
        .map(|cycle| {
            let profile = profile_at(cycle, ambient_c);
            (
                cycle.name().to_owned(),
                Simulation::new(params.clone(), profile).expect("profile non-empty"),
            )
        })
        .collect();
    let mut out = Vec::with_capacity(cycles.len() * 3);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (name, sim) in &sims {
            for kind in ControllerKind::paper_lineup() {
                let params = &params;
                let make_observer = &make_observer;
                let handle = scope.spawn(move || {
                    let mut controller = kind.instantiate(params).expect("controller instantiates");
                    let mut observer = make_observer(name, kind);
                    let result = sim
                        .run_observed(controller.as_mut(), &mut observer)
                        .expect("simulation runs");
                    (
                        SweepCell {
                            profile: name.clone(),
                            controller: kind,
                            result,
                        },
                        observer,
                    )
                });
                handles.push((name.as_str(), kind, handle));
            }
        }
        for (name, kind, handle) in handles {
            // A bare `.expect()` here loses which cell died — with up to
            // 15 identical workers the panic was undiagnosable. Re-panic
            // with the cell identity and the worker's own message.
            out.push(handle.join().unwrap_or_else(|payload| {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(ToString::to_string)
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                panic!("sweep worker for {name} x {kind:?} panicked: {msg}");
            }));
        }
    });
    out
}

/// Finds a cell in a sweep by profile name and controller.
#[must_use]
pub fn find<'a>(
    cells: &'a [SweepCell],
    profile: &str,
    controller: ControllerKind,
) -> Option<&'a SweepCell> {
    cells
        .iter()
        .find(|c| c.profile == profile && c.controller == controller)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_sweep_has_all_controllers() {
        let cells = evaluation_sweep_at(35.0, &[DriveCycle::ece15()]);
        assert_eq!(cells.len(), 3);
        assert!(find(&cells, "ECE-15", ControllerKind::OnOff).is_some());
        assert!(find(&cells, "ECE-15", ControllerKind::Fuzzy).is_some());
        assert!(find(&cells, "ECE-15", ControllerKind::Mpc).is_some());
        assert!(find(&cells, "ECE-15", ControllerKind::Pid).is_none());
    }
}
