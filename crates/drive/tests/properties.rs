//! Property-based tests for drive cycles and profiles: interpolation
//! bounds, distance consistency and generator invariants.

use ev_drive::synthetic::RouteConfig;
use ev_drive::{AmbientConditions, DriveCycle, DriveProfile, SlopeProfile};
use ev_units::{Celsius, Seconds};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cycle_speed_is_always_within_range(
        t in -100.0f64..2000.0,
    ) {
        for cycle in DriveCycle::paper_evaluation_set() {
            let v = cycle.speed_at(Seconds::new(t)).value();
            let vmax = cycle.stats().max_speed.value();
            prop_assert!(v >= 0.0 && v <= vmax + 1e-9, "{}: {v}", cycle.name());
        }
    }

    #[test]
    fn sampled_distance_converges_to_cycle_distance(
        dt in 0.25f64..2.0,
    ) {
        let cycle = DriveCycle::ece_eudc();
        let p = DriveProfile::from_cycle(
            &cycle,
            AmbientConditions::constant(Celsius::new(20.0)),
            Seconds::new(dt),
        );
        let rel = (p.distance().value() - cycle.distance().value()).abs()
            / cycle.distance().value();
        prop_assert!(rel < 0.02, "dt {dt}: relative error {rel}");
    }

    #[test]
    fn repeat_is_additive(
        n in 1usize..5,
    ) {
        let c = DriveCycle::ece15();
        let r = c.repeat(n);
        prop_assert!((r.distance().value() - n as f64 * c.distance().value()).abs() < 1e-9);
        prop_assert!((r.duration().value() - n as f64 * c.duration().value()).abs() < 1e-9);
    }

    #[test]
    fn profile_accelerations_integrate_back_to_speed(
        dt in 0.5f64..2.0,
    ) {
        // v[k+1] = v[k] + a[k]·dt by construction (forward difference).
        let p = DriveProfile::from_cycle(
            &DriveCycle::eudc(),
            AmbientConditions::constant(Celsius::new(20.0)),
            Seconds::new(dt),
        );
        for k in 0..p.len() - 1 {
            let predicted = p.sample(k).v.value() + p.sample(k).a * dt;
            prop_assert!(
                (predicted - p.sample(k + 1).v.value()).abs() < 1e-9,
                "sample {k}"
            );
        }
    }

    #[test]
    fn ambient_interpolation_is_bounded(
        t in -50.0f64..500.0,
        t1 in 10.0f64..100.0,
        v0 in -20.0f64..45.0,
        v1 in -20.0f64..45.0,
    ) {
        let amb = AmbientConditions::varying(&[(0.0, v0), (t1, v1)]);
        let val = amb.temperature_at(Seconds::new(t)).value();
        let lo = v0.min(v1);
        let hi = v0.max(v1);
        prop_assert!(val >= lo - 1e-9 && val <= hi + 1e-9);
    }

    #[test]
    fn slope_interpolation_is_bounded(
        d in -100.0f64..5000.0,
        g0 in -8.0f64..8.0,
        g1 in -8.0f64..8.0,
    ) {
        let s = SlopeProfile::from_breakpoints(&[(0.0, g0), (2000.0, g1)]);
        let g = s.grade_at(d);
        prop_assert!(g >= g0.min(g1) - 1e-9 && g <= g0.max(g1) + 1e-9);
    }

    #[test]
    fn synthetic_routes_are_physical(
        seed in 0u64..50,
    ) {
        let p = RouteConfig::new(seed)
            .urban_minutes(2.0)
            .highway_minutes(2.0)
            .generate();
        for s in p.iter() {
            prop_assert!(s.v.value() >= 0.0);
            prop_assert!(s.a.abs() < 3.5, "|a| = {}", s.a.abs());
            prop_assert!(s.v.value() < 36.0, "v = {}", s.v.value());
        }
        // Starts and ends at rest.
        prop_assert_eq!(p.sample(0).v.value(), 0.0);
        prop_assert_eq!(p.sample(p.len() - 1).v.value(), 0.0);
    }

    #[test]
    fn window_has_requested_length(
        start in 0usize..300,
        count in 1usize..100,
    ) {
        let p = DriveProfile::from_cycle(
            &DriveCycle::ece15(),
            AmbientConditions::constant(Celsius::new(20.0)),
            Seconds::new(1.0),
        );
        let w = p.window(start, count);
        prop_assert_eq!(w.len(), count);
    }
}
