* Degenerate LP: three constraints active at the 2-D optimum (0, 0) -
* the redundant x + y >= 0 row duplicates the implied default bounds.
* min x + y s.t. x + y >= 0, x + y <= 2, x, y >= 0. f* = 0.
NAME QPDEGEN
ROWS
 N OBJ
 G LB
 L UB
COLUMNS
 X OBJ 1.0 LB 1.0
 X UB 1.0
 Y OBJ 1.0 LB 1.0
 Y UB 1.0
RHS
 RHS UB 2.0
ENDATA
