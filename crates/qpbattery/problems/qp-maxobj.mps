* OBJSENSE MAXIMIZE with a concave quadratic (loader negates to a
* convex minimization): max 3 - (x-2)^2 - (y-1)^2 s.t. x + y <= 2,
* x, y >= 0. Optimum (1.5, 0.5), reported in the original sense:
* f* = 2.5.
NAME QPMAXOBJ
OBJSENSE
 MAXIMIZE
ROWS
 N OBJ
 L CAP
COLUMNS
 X OBJ 4.0 CAP 1.0
 Y OBJ 2.0 CAP 1.0
RHS
 RHS CAP 2.0 OBJ 2.0
QUADOBJ
 X X -2.0
 Y Y -2.0
ENDATA
