//! Vehicle parameters with a builder and Nissan Leaf defaults.

use ev_units::{Kilograms, Kilowatts, MetersPerSecond};
use serde::{Deserialize, Serialize};

use crate::EfficiencyMap;

/// Physical parameters of the EV power train (the paper's Eq. 1–6
/// constants).
///
/// Defaults come from the public Nissan Leaf specification, the vehicle
/// the paper verifies its power-train model against.
///
/// # Examples
///
/// ```
/// use ev_powertrain::VehicleParams;
///
/// let leaf = VehicleParams::nissan_leaf();
/// assert!((leaf.mass.value() - 1625.0).abs() < 1.0);
///
/// let heavier = VehicleParams::builder()
///     .mass_kg(1900.0)
///     .drag_coefficient(0.30)
///     .build();
/// assert_eq!(heavier.mass.value(), 1900.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VehicleParams {
    /// Total vehicle mass including payload.
    pub mass: Kilograms,
    /// Aerodynamic drag coefficient `Cx`.
    pub drag_coefficient: f64,
    /// Effective frontal area `A` (m²).
    pub frontal_area: f64,
    /// Air density `ρ` (kg/m³).
    pub air_density: f64,
    /// Head-wind speed `v_wind` (positive = opposing the vehicle).
    pub wind_speed: MetersPerSecond,
    /// Rolling-resistance constant `c0`.
    pub rolling_c0: f64,
    /// Speed-squared rolling-resistance coefficient `c1` (s²/m²).
    pub rolling_c1: f64,
    /// Motor/generator efficiency map.
    pub efficiency: EfficiencyMap,
    /// Wheel radius (m), used to translate wheel force into motor torque.
    pub wheel_radius: f64,
    /// Single-speed reduction gear ratio.
    pub gear_ratio: f64,
    /// Maximum motor mechanical output power (saturates cycle-following).
    pub max_motor_power: Kilowatts,
    /// Maximum motor torque (Nm), limiting low-speed tractive force.
    pub max_motor_torque: f64,
    /// Maximum regenerative braking power the drivetrain can absorb.
    pub max_regen_power: Kilowatts,
    /// Speed below which regeneration is replaced by friction braking.
    pub regen_cutoff_speed: MetersPerSecond,
}

impl VehicleParams {
    /// Parameters of a Nissan Leaf (2013, 24 kWh) with one passenger:
    /// curb mass 1521 kg + 104 kg payload, Cd 0.28, frontal area 2.27 m².
    #[must_use]
    pub fn nissan_leaf() -> Self {
        Self {
            mass: Kilograms::new(1625.0),
            drag_coefficient: 0.28,
            frontal_area: 2.27,
            air_density: 1.2041,
            wind_speed: MetersPerSecond::ZERO,
            rolling_c0: 0.01,
            rolling_c1: 1.2e-6,
            efficiency: EfficiencyMap::leaf_like(),
            wheel_radius: 0.3156,
            gear_ratio: 7.94,
            max_motor_power: Kilowatts::new(80.0),
            max_motor_torque: 280.0,
            max_regen_power: Kilowatts::new(30.0),
            regen_cutoff_speed: MetersPerSecond::new(1.5),
        }
    }

    /// Starts a builder initialized with the Leaf defaults.
    #[must_use]
    pub fn builder() -> VehicleParamsBuilder {
        VehicleParamsBuilder {
            params: Self::nissan_leaf(),
        }
    }
}

impl Default for VehicleParams {
    fn default() -> Self {
        Self::nissan_leaf()
    }
}

/// Builder for [`VehicleParams`], seeded with the Leaf defaults.
#[derive(Debug, Clone)]
pub struct VehicleParamsBuilder {
    params: VehicleParams,
}

impl VehicleParamsBuilder {
    /// Sets the total mass in kilograms.
    ///
    /// # Panics
    ///
    /// Panics if `mass <= 0`.
    #[must_use]
    pub fn mass_kg(mut self, mass: f64) -> Self {
        assert!(mass > 0.0, "vehicle mass must be positive");
        self.params.mass = Kilograms::new(mass);
        self
    }

    /// Sets the aerodynamic drag coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `cx <= 0`.
    #[must_use]
    pub fn drag_coefficient(mut self, cx: f64) -> Self {
        assert!(cx > 0.0, "drag coefficient must be positive");
        self.params.drag_coefficient = cx;
        self
    }

    /// Sets the effective frontal area in m².
    ///
    /// # Panics
    ///
    /// Panics if `a <= 0`.
    #[must_use]
    pub fn frontal_area_m2(mut self, a: f64) -> Self {
        assert!(a > 0.0, "frontal area must be positive");
        self.params.frontal_area = a;
        self
    }

    /// Sets the head-wind speed.
    #[must_use]
    pub fn wind(mut self, wind: MetersPerSecond) -> Self {
        self.params.wind_speed = wind;
        self
    }

    /// Sets the rolling-resistance coefficients `(c0, c1)`.
    ///
    /// # Panics
    ///
    /// Panics if either coefficient is negative.
    #[must_use]
    pub fn rolling_resistance(mut self, c0: f64, c1: f64) -> Self {
        assert!(
            c0 >= 0.0 && c1 >= 0.0,
            "rolling coefficients must be non-negative"
        );
        self.params.rolling_c0 = c0;
        self.params.rolling_c1 = c1;
        self
    }

    /// Replaces the motor efficiency map.
    #[must_use]
    pub fn efficiency(mut self, map: EfficiencyMap) -> Self {
        self.params.efficiency = map;
        self
    }

    /// Sets the maximum regenerative power in kW.
    ///
    /// # Panics
    ///
    /// Panics if `kw < 0`.
    #[must_use]
    pub fn max_regen_kw(mut self, kw: f64) -> Self {
        assert!(kw >= 0.0, "regen power must be non-negative");
        self.params.max_regen_power = Kilowatts::new(kw);
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> VehicleParams {
        self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_defaults() {
        let p = VehicleParams::nissan_leaf();
        assert_eq!(p.drag_coefficient, 0.28);
        assert_eq!(p.frontal_area, 2.27);
        assert_eq!(p.gear_ratio, 7.94);
        assert_eq!(VehicleParams::default(), p);
    }

    #[test]
    fn builder_overrides() {
        let p = VehicleParams::builder()
            .mass_kg(2000.0)
            .drag_coefficient(0.35)
            .frontal_area_m2(2.5)
            .wind(MetersPerSecond::new(3.0))
            .rolling_resistance(0.012, 0.0)
            .max_regen_kw(50.0)
            .build();
        assert_eq!(p.mass.value(), 2000.0);
        assert_eq!(p.drag_coefficient, 0.35);
        assert_eq!(p.frontal_area, 2.5);
        assert_eq!(p.wind_speed.value(), 3.0);
        assert_eq!(p.rolling_c0, 0.012);
        assert_eq!(p.max_regen_power.value(), 50.0);
    }

    #[test]
    #[should_panic(expected = "mass must be positive")]
    fn rejects_zero_mass() {
        let _ = VehicleParams::builder().mass_kg(0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_rolling() {
        let _ = VehicleParams::builder().rolling_resistance(-0.01, 0.0);
    }
}
