//! Quickstart: drive a Leaf-like EV through the NEDC on a hot day with
//! each of the three climate controllers and compare the paper's figures
//! of merit.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use evclimate::core::ControllerKind;
use evclimate::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The drive: the New European Driving Cycle at 35 °C ambient, cabin
    // preconditioned to the 24 °C target.
    let profile = DriveProfile::from_cycle(
        &DriveCycle::nedc(),
        AmbientConditions::constant(Celsius::new(35.0)),
        Seconds::new(1.0),
    );
    let mut params = EvParams::nissan_leaf_like();
    params.initial_cabin = Some(params.target);
    let sim = Simulation::new(params.clone(), profile)?;

    println!(
        "NEDC @ 35 °C — {:.1} km, {:.0} s",
        sim.profile().distance().value(),
        sim.profile().duration().value()
    );
    println!(
        "{:<28} {:>9} {:>12} {:>10} {:>12} {:>10}",
        "controller", "HVAC kW", "ΔSoH (m%)", "SoC dev", "kWh/100km", "lifetime"
    );
    for kind in ControllerKind::paper_lineup() {
        let mut controller = kind.instantiate(&params)?;
        let result = sim.run(controller.as_mut())?;
        let m = result.metrics();
        println!(
            "{:<28} {:>9.3} {:>12.3} {:>10.3} {:>12.2} {:>9.0}c",
            kind.label(),
            m.avg_hvac_power.value(),
            m.delta_soh_milli_percent,
            m.soc_stats.dev,
            m.kwh_per_100km,
            m.cycles_to_eol,
        );
    }
    Ok(())
}
