//! SoC estimation: coulomb counting with OCV correction.
//!
//! The plant [`crate::Battery`] knows its true SoC; a real BMS does not —
//! it *estimates* SoC from the measured current (coulomb counting, which
//! drifts) corrected toward the open-circuit-voltage inversion whenever
//! the pack is near rest (when the terminal voltage approximates the
//! OCV). This module provides that estimator so closed-loop studies can
//! quantify how controller performance degrades with imperfect SoC
//! feedback.

use ev_units::{Amperes, Percent, Seconds, Volts};
use serde::{Deserialize, Serialize};

use crate::{BatteryParams, OcvCurve};

/// Configuration of the [`SocEstimator`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// Relative gain error of the current sensor (e.g. 0.02 = reads 2 %
    /// high), the dominant coulomb-counting drift source.
    pub current_gain_error: f64,
    /// Correction gain toward the OCV-inverted SoC when at rest, per
    /// update (0 = pure coulomb counting, 1 = trust voltage fully).
    pub ocv_correction_gain: f64,
    /// |current| below which the pack counts as "at rest" and the OCV
    /// correction applies.
    pub rest_current: Amperes,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        Self {
            current_gain_error: 0.0,
            ocv_correction_gain: 0.05,
            rest_current: Amperes::new(2.0),
        }
    }
}

/// Coulomb-counting SoC estimator with OCV rest correction.
///
/// # Examples
///
/// ```
/// use ev_battery::{EstimatorConfig, SocEstimator, BatteryParams};
/// use ev_units::{Amperes, Percent, Seconds, Volts};
///
/// let params = BatteryParams::leaf_24kwh();
/// let mut est = SocEstimator::new(&params, Percent::new(95.0), EstimatorConfig::default());
/// est.update(Amperes::new(50.0), Volts::new(380.0), Seconds::new(60.0));
/// assert!(est.soc().value() < 95.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SocEstimator {
    capacity_as: f64,
    ocv: OcvCurve,
    config: EstimatorConfig,
    soc: f64,
}

impl SocEstimator {
    /// Creates the estimator from the pack parameters and an initial SoC
    /// belief.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is outside `[0, 100]`.
    #[must_use]
    pub fn new(params: &BatteryParams, initial: Percent, config: EstimatorConfig) -> Self {
        assert!(
            (0.0..=100.0).contains(&initial.value()),
            "initial soc must lie in [0, 100]"
        );
        Self {
            capacity_as: params.nominal_capacity.value() * 3600.0,
            ocv: params.ocv.clone(),
            config,
            soc: initial.value(),
        }
    }

    /// The current SoC estimate.
    #[must_use]
    pub fn soc(&self) -> Percent {
        Percent::new(self.soc)
    }

    /// Inverts the OCV curve: the SoC whose OCV is closest to `voltage`
    /// (bisection over the monotone curve).
    #[must_use]
    pub fn soc_from_ocv(&self, voltage: Volts) -> Percent {
        let mut lo = 0.0f64;
        let mut hi = 100.0f64;
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if self.ocv.voltage(Percent::new(mid)).value() < voltage.value() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Percent::new(0.5 * (lo + hi))
    }

    /// One estimator update from a measured current (positive =
    /// discharge) and terminal voltage over `dt`.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn update(&mut self, current: Amperes, terminal: Volts, dt: Seconds) -> Percent {
        assert!(dt.value() > 0.0, "estimator step must be positive");
        // Coulomb counting with the sensor's gain error.
        let measured = current.value() * (1.0 + self.config.current_gain_error);
        self.soc -= 100.0 * measured * dt.value() / self.capacity_as;
        self.soc = self.soc.clamp(0.0, 100.0);
        // OCV correction at rest (terminal ≈ OCV there).
        if current.value().abs() <= self.config.rest_current.value() {
            let ocv_soc = self.soc_from_ocv(terminal).value();
            self.soc += self.config.ocv_correction_gain * (ocv_soc - self.soc);
        }
        self.soc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Battery;
    use ev_units::Watts;

    fn params() -> BatteryParams {
        BatteryParams::leaf_24kwh()
    }

    #[test]
    fn perfect_sensor_tracks_ideal_battery() {
        // Against a resistance-free, Peukert-free pack the estimator is
        // exact.
        let ideal = BatteryParams {
            internal_resistance: ev_units::Ohms::new(0.0),
            peukert_constant: 1.0,
            charge_efficiency: 1.0,
            ..params()
        };
        let mut battery = Battery::new(ideal.clone());
        let mut est = SocEstimator::new(&ideal, Percent::new(95.0), EstimatorConfig::default());
        for _ in 0..600 {
            let i = battery.current_for_power(Watts::new(10_000.0));
            battery.step(Watts::new(10_000.0), Seconds::new(1.0));
            est.update(i, battery.open_circuit_voltage(), Seconds::new(1.0));
        }
        assert!(
            (est.soc().value() - battery.soc().value()).abs() < 0.05,
            "est {} vs true {}",
            est.soc(),
            battery.soc()
        );
    }

    #[test]
    fn gain_error_accumulates_drift() {
        let p = params();
        let mut est = SocEstimator::new(
            &p,
            Percent::new(95.0),
            EstimatorConfig {
                current_gain_error: 0.05, // reads 5 % high
                ..EstimatorConfig::default()
            },
        );
        let mut exact = SocEstimator::new(&p, Percent::new(95.0), EstimatorConfig::default());
        for _ in 0..1800 {
            // 50 A discharge, never at rest → no OCV correction.
            est.update(Amperes::new(50.0), Volts::new(370.0), Seconds::new(1.0));
            exact.update(Amperes::new(50.0), Volts::new(370.0), Seconds::new(1.0));
        }
        let drift = exact.soc().value() - est.soc().value();
        // 1800 s at 50 A = 25 Ah = 37.5 % discharged; 5 % of that ≈ 1.9 %.
        assert!(drift > 1.7 && drift < 2.1, "drift {drift}");
    }

    #[test]
    fn ocv_correction_pulls_back_at_rest() {
        let p = params();
        let mut est = SocEstimator::new(
            &p,
            Percent::new(80.0), // wrong belief
            EstimatorConfig::default(),
        );
        // True SoC 50 %: OCV = 370 V. Rest for a while.
        let ocv_50 = p.ocv.voltage(Percent::new(50.0));
        for _ in 0..200 {
            est.update(Amperes::new(0.0), ocv_50, Seconds::new(1.0));
        }
        assert!(
            (est.soc().value() - 50.0).abs() < 1.0,
            "corrected to {}",
            est.soc()
        );
    }

    #[test]
    fn ocv_inversion_round_trips() {
        let p = params();
        let est = SocEstimator::new(&p, Percent::new(50.0), EstimatorConfig::default());
        for soc in [5.0, 15.0, 35.0, 60.0, 85.0, 95.0] {
            let v = p.ocv.voltage(Percent::new(soc));
            let back = est.soc_from_ocv(v).value();
            assert!((back - soc).abs() < 0.5, "soc {soc} → {back}");
        }
    }

    #[test]
    fn no_correction_while_driving() {
        let p = params();
        let mut est = SocEstimator::new(&p, Percent::new(80.0), EstimatorConfig::default());
        // Large current: the (wrong) voltage must not be trusted.
        let before = est.soc().value();
        est.update(Amperes::new(100.0), Volts::new(300.0), Seconds::new(1.0));
        let expected_cc = before - 100.0 * 100.0 / (p.nominal_capacity.value() * 3600.0);
        assert!((est.soc().value() - expected_cc).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "[0, 100]")]
    fn rejects_bad_initial() {
        let _ = SocEstimator::new(&params(), Percent::new(150.0), EstimatorConfig::default());
    }
}
