//! A lock-free bounded ring of timestamped trace events with a
//! Chrome-trace-format (Perfetto JSON) exporter.
//!
//! Where the [`crate::Registry`] answers *how much / how fast in
//! aggregate*, the [`TraceRing`] answers *what happened when*: each
//! event is a begin/end/complete span tagged with a `pid` (shard) and
//! `tid` (session), so a capture from a fleet run opens directly in
//! [Perfetto](https://ui.perfetto.dev) as one track per shard with the
//! per-session command and solve spans laid out on the timeline.
//!
//! The design mirrors the metric handles: a ring minted disabled (the
//! default) carries no allocation and every operation — including the
//! clock read in [`TraceRing::span`] — is a branch on an `Option`.
//! Enabled rings record lock-free: a writer claims a slot with one
//! `fetch_add`, writes the event fields as relaxed atomics, and
//! publishes with a release store of the slot's sequence tag; readers
//! validate the tag on both sides of the field reads (a per-slot
//! seqlock) and drop slots caught mid-overwrite. The ring is bounded
//! and overwrites oldest — tracing never blocks and never grows.
//!
//! Span *names* are interned up front via [`TraceRing::intern`] (the
//! only locking operation, mirroring metric registration) so the hot
//! path records a `u32` id instead of a string.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Chrome-trace event phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A complete span with a duration (`"ph":"X"`).
    Complete,
    /// The opening edge of a long-lived span (`"ph":"B"`).
    Begin,
    /// The closing edge of a long-lived span (`"ph":"E"`).
    End,
}

impl TracePhase {
    fn as_chrome(self) -> &'static str {
        match self {
            TracePhase::Complete => "X",
            TracePhase::Begin => "B",
            TracePhase::End => "E",
        }
    }

    fn from_tag(tag: u64) -> TracePhase {
        match tag {
            1 => TracePhase::Begin,
            2 => TracePhase::End,
            _ => TracePhase::Complete,
        }
    }

    fn tag(self) -> u64 {
        match self {
            TracePhase::Complete => 0,
            TracePhase::Begin => 1,
            TracePhase::End => 2,
        }
    }
}

/// One decoded event read back out of a [`TraceRing`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The span id [`TraceRing::emit`] returned for this event (claim
    /// index + 1, unique over the ring's lifetime). The same id appears
    /// as `args.span_id` in the Chrome-trace export and as the
    /// `trace_id` of histogram exemplars recorded against this span.
    pub id: u64,
    /// Resolved span name.
    pub name: String,
    /// Event phase.
    pub phase: TracePhase,
    /// Nanoseconds since the ring's epoch.
    pub ts_ns: u64,
    /// Span duration in nanoseconds (0 for begin/end edges).
    pub dur_ns: u64,
    /// Process-track id — the shard index in fleet captures.
    pub pid: u64,
    /// Thread-track id — the session id in fleet captures.
    pub tid: u64,
}

/// One slot of the ring: a per-slot seqlock. `seq` holds `index + 1`
/// of the event it carries; a reader that sees the same `seq` value
/// before and after reading the fields knows no writer raced it.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    /// `phase_tag << 32 | name_id`.
    meta: AtomicU64,
    ts_ns: AtomicU64,
    dur_ns: AtomicU64,
    pid: AtomicU64,
    tid: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            ts_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
            pid: AtomicU64::new(0),
            tid: AtomicU64::new(0),
        }
    }
}

#[derive(Debug)]
struct TraceCore {
    slots: Vec<Slot>,
    /// Total events ever claimed; slot = (index) % slots.len().
    head: AtomicU64,
    epoch: Instant,
    /// Keep 1 in `sample_modulus` sessions when scoping by tid.
    sample_modulus: u64,
    names: Mutex<Vec<String>>,
}

/// A bounded, lock-free, overwrite-oldest ring of trace events.
///
/// Cheap to clone; all clones share the ring. A ring constructed with
/// [`TraceRing::disabled`] (also the `Default`) records nothing and
/// reads no clock. Use [`TraceRing::scoped`] to stamp a (pid, tid)
/// identity onto events — for a sampled ring this is also where whole
/// sessions are kept or dropped, so an unsampled session costs exactly
/// one modulo at open time and nothing per event.
#[derive(Debug, Clone, Default)]
pub struct TraceRing {
    core: Option<Arc<TraceCore>>,
    pid: u64,
    tid: u64,
}

impl TraceRing {
    /// A detached ring that records nothing.
    pub fn disabled() -> Self {
        TraceRing::default()
    }

    /// A live ring holding the most recent `capacity` events.
    pub fn enabled(capacity: usize) -> Self {
        TraceRing::sampled(capacity, 1)
    }

    /// A live ring that, when scoped per session, keeps only sessions
    /// whose `tid` is divisible by `sample_modulus` (1 keeps all).
    pub fn sampled(capacity: usize, sample_modulus: u64) -> Self {
        let capacity = capacity.max(16);
        TraceRing {
            core: Some(Arc::new(TraceCore {
                slots: (0..capacity).map(|_| Slot::new()).collect(),
                head: AtomicU64::new(0),
                epoch: Instant::now(),
                sample_modulus: sample_modulus.max(1),
                names: Mutex::new(Vec::new()),
            })),
            pid: 0,
            tid: 0,
        }
    }

    /// Whether events recorded on this handle are kept anywhere.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// A handle onto the same ring whose events carry `pid`/`tid`
    /// (shard/session in fleet captures). On a sampled ring, a `tid`
    /// outside the sample returns a disabled handle — the per-session
    /// sampling decision, made once.
    #[must_use]
    pub fn scoped(&self, pid: u64, tid: u64) -> TraceRing {
        match &self.core {
            Some(core) if tid.is_multiple_of(core.sample_modulus) => TraceRing {
                core: self.core.clone(),
                pid,
                tid,
            },
            _ => TraceRing::disabled(),
        }
    }

    /// Intern a span name, returning the id to record with. Takes a
    /// lock — call at setup time, not per event. Returns 0 (harmless)
    /// on a disabled ring.
    pub fn intern(&self, name: &str) -> u32 {
        let Some(core) = &self.core else { return 0 };
        let mut names = core.names.lock().expect("trace name table poisoned");
        if let Some(idx) = names.iter().position(|n| n == name) {
            return idx as u32;
        }
        names.push(name.to_string());
        (names.len() - 1) as u32
    }

    /// Nanoseconds since the ring's epoch (0 on a disabled ring — no
    /// clock is read).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |core| core.epoch.elapsed().as_nanos() as u64)
    }

    /// Record an event with an explicit timestamp and duration,
    /// returning the event's **span id** (claim index + 1; unique for
    /// the lifetime of the ring, 0 on a disabled ring). The id is what
    /// histogram exemplars reference (`trace_id` in the exposition) and
    /// what the Chrome-trace export carries as `args.span_id`, so
    /// `p99 bucket → exact span` is a single lookup.
    #[inline]
    pub fn emit(&self, name_id: u32, phase: TracePhase, ts_ns: u64, dur_ns: u64) -> u64 {
        let Some(core) = &self.core else { return 0 };
        let cap = core.slots.len() as u64;
        let index = core.head.fetch_add(1, Ordering::Relaxed);
        let slot = &core.slots[(index % cap) as usize];
        // Two writers can hold indices a full lap apart (a claimant
        // preempted for `cap` events). Serialize them per slot: wait
        // until the previous occupant's commit tag is visible before
        // taking the slot. The wait is bounded by that writer's six
        // stores; in the common case the tag is already there.
        let expected = if index >= cap { index - cap + 1 } else { 0 };
        while slot.seq.load(Ordering::Acquire) != expected {
            std::hint::spin_loop();
        }
        // Mark the slot mid-write so a reader can't mix old and new
        // fields, write relaxed, then publish with a release store.
        slot.seq.store(u64::MAX, Ordering::Release);
        slot.meta
            .store((phase.tag() << 32) | name_id as u64, Ordering::Relaxed);
        slot.ts_ns.store(ts_ns, Ordering::Relaxed);
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        slot.pid.store(self.pid, Ordering::Relaxed);
        slot.tid.store(self.tid, Ordering::Relaxed);
        slot.seq.store(index + 1, Ordering::Release);
        index + 1
    }

    /// Record the opening edge of a long-lived span (e.g. session
    /// open → close).
    #[inline]
    pub fn begin(&self, name_id: u32) {
        if self.core.is_some() {
            self.emit(name_id, TracePhase::Begin, self.now_ns(), 0);
        }
    }

    /// Record the closing edge of a long-lived span.
    #[inline]
    pub fn end(&self, name_id: u32) {
        if self.core.is_some() {
            self.emit(name_id, TracePhase::End, self.now_ns(), 0);
        }
    }

    /// Start a complete-span timer; the span records itself as one
    /// `"X"` event when finished or dropped. No clock is read on a
    /// disabled ring.
    #[inline]
    pub fn span(&self, name_id: u32) -> TraceSpan {
        TraceSpan {
            start_ns: if self.core.is_some() {
                self.now_ns()
            } else {
                0
            },
            ring: self.clone(),
            name_id,
            finished: false,
        }
    }

    /// Total events ever recorded (claimed), including overwritten
    /// ones.
    pub fn recorded(&self) -> u64 {
        self.core
            .as_ref()
            .map_or(0, |core| core.head.load(Ordering::Relaxed))
    }

    /// Events lost to ring overwrite so far.
    pub fn dropped(&self) -> u64 {
        self.core.as_ref().map_or(0, |core| {
            core.head
                .load(Ordering::Relaxed)
                .saturating_sub(core.slots.len() as u64)
        })
    }

    /// Decode the events currently held, oldest first. Slots caught
    /// mid-write by a concurrent recorder are skipped, so a snapshot
    /// taken while the fleet is live is consistent but possibly a few
    /// events short.
    pub fn events(&self) -> Vec<TraceEvent> {
        let Some(core) = &self.core else {
            return Vec::new();
        };
        let names = core.names.lock().expect("trace name table poisoned");
        let head = core.head.load(Ordering::Acquire);
        let cap = core.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for index in start..head {
            let slot = &core.slots[(index % cap) as usize];
            let seq_before = slot.seq.load(Ordering::Acquire);
            if seq_before != index + 1 {
                continue; // empty, torn, or already overwritten
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let ts_ns = slot.ts_ns.load(Ordering::Relaxed);
            let dur_ns = slot.dur_ns.load(Ordering::Relaxed);
            let pid = slot.pid.load(Ordering::Relaxed);
            let tid = slot.tid.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != index + 1 {
                continue; // overwritten while we were reading
            }
            let name_id = (meta & 0xffff_ffff) as usize;
            out.push(TraceEvent {
                id: index + 1,
                name: names
                    .get(name_id)
                    .cloned()
                    .unwrap_or_else(|| format!("span#{name_id}")),
                phase: TracePhase::from_tag(meta >> 32),
                ts_ns,
                dur_ns,
                pid,
                tid,
            });
        }
        out.sort_by_key(|e| e.ts_ns);
        out
    }

    /// Render the held events as Chrome trace JSON (the
    /// `{"traceEvents":[...]}` object form), loadable in
    /// `chrome://tracing` and Perfetto. Timestamps and durations are
    /// microseconds per the format; begin/end edges omit `dur`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.events().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":\"fleet\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":{},\"tid\":{}",
                crate::export::json_str(&e.name),
                e.phase.as_chrome(),
                e.ts_ns as f64 / 1e3,
                e.pid,
                e.tid
            ));
            if e.phase == TracePhase::Complete {
                out.push_str(&format!(",\"dur\":{:.3}", e.dur_ns as f64 / 1e3));
            }
            // The span id exemplars reference; a string because Chrome
            // trace viewers coerce large integer args to doubles.
            out.push_str(&format!(
                ",\"args\":{{\"span_id\":{}}}",
                crate::export::json_str(&e.id.to_string())
            ));
            out.push('}');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

/// RAII timer returned by [`TraceRing::span`]: records one complete
/// (`"X"`) event covering its lifetime when finished or dropped.
#[derive(Debug)]
pub struct TraceSpan {
    ring: TraceRing,
    name_id: u32,
    start_ns: u64,
    finished: bool,
}

impl TraceSpan {
    /// Finish the span now (equivalent to dropping it, but explicit at
    /// call sites that care about where the measured region ends).
    pub fn finish(self) {
        let _ = self.finish_id();
    }

    /// Finish the span now and return its **span id** (0 on a disabled
    /// ring) — the value to hand to
    /// [`crate::Span::finish_with_exemplar`] or
    /// [`crate::Histogram::record_with_exemplar`] so the latency
    /// observation's exemplar points back at this exact trace event.
    pub fn finish_id(mut self) -> u64 {
        self.finished = true;
        self.record()
    }

    fn record(&self) -> u64 {
        if self.ring.core.is_none() {
            return 0;
        }
        let end = self.ring.now_ns();
        self.ring.emit(
            self.name_id,
            TracePhase::Complete,
            self.start_ns,
            end.saturating_sub(self.start_ns),
        )
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if !self.finished {
            self.record();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ring_is_inert() {
        let ring = TraceRing::disabled();
        let id = ring.intern("step");
        ring.begin(id);
        ring.end(id);
        ring.span(id).finish();
        assert!(!ring.is_enabled());
        assert_eq!(ring.recorded(), 0);
        assert!(ring.events().is_empty());
        assert_eq!(
            ring.to_chrome_json(),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }

    #[test]
    fn events_come_back_decoded_and_ordered() {
        let ring = TraceRing::enabled(64);
        let open = ring.intern("session");
        let step = ring.intern("step");
        assert_eq!(ring.intern("session"), open, "interning is idempotent");
        let scoped = ring.scoped(3, 41);
        scoped.begin(open);
        scoped.emit(step, TracePhase::Complete, 100, 50);
        scoped.end(open);
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.pid == 3 && e.tid == 41));
        let complete = events
            .iter()
            .find(|e| e.phase == TracePhase::Complete)
            .unwrap();
        assert_eq!(complete.name, "step");
        assert_eq!((complete.ts_ns, complete.dur_ns), (100, 50));
        assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        let begins = events
            .iter()
            .filter(|e| e.phase == TracePhase::Begin)
            .count();
        let ends = events.iter().filter(|e| e.phase == TracePhase::End).count();
        assert_eq!((begins, ends), (1, 1));
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let ring = TraceRing::enabled(16);
        let id = ring.intern("e");
        for i in 0..40u64 {
            ring.emit(id, TracePhase::Complete, i, 1);
        }
        assert_eq!(ring.recorded(), 40);
        assert_eq!(ring.dropped(), 24);
        let events = ring.events();
        assert_eq!(events.len(), 16);
        // Only the newest 16 survive.
        assert!(events.iter().all(|e| e.ts_ns >= 24));
    }

    #[test]
    fn sampling_drops_whole_sessions_at_scope_time() {
        let ring = TraceRing::sampled(64, 4);
        let id = ring.intern("step");
        for tid in 0..16u64 {
            let scoped = ring.scoped(0, tid);
            assert_eq!(scoped.is_enabled(), tid % 4 == 0, "tid {tid}");
            scoped.emit(id, TracePhase::Complete, tid, 1);
        }
        let events = ring.events();
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|e| e.tid % 4 == 0));
    }

    #[test]
    fn span_records_a_complete_event_with_duration() {
        let ring = TraceRing::enabled(16);
        let id = ring.intern("work");
        {
            let span = ring.scoped(1, 2).span(id);
            std::thread::sleep(std::time::Duration::from_millis(2));
            span.finish();
        }
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].phase, TracePhase::Complete);
        assert!(events[0].dur_ns >= 1_000_000, "dur {}", events[0].dur_ns);
    }

    #[test]
    fn chrome_json_has_required_keys_and_phases() {
        let ring = TraceRing::enabled(16);
        let id = ring.intern("solve \"q\"");
        let scoped = ring.scoped(2, 7);
        scoped.begin(id);
        scoped.emit(id, TracePhase::Complete, 500, 250);
        scoped.end(id);
        let json = ring.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"ph\":\"B\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"E\""), "{json}");
        assert!(json.contains("\"ts\":0.500"), "{json}");
        assert!(json.contains("\"dur\":0.250"), "{json}");
        assert!(json.contains("\"pid\":2"), "{json}");
        assert!(json.contains("\"tid\":7"), "{json}");
        assert!(json.contains("solve \\\"q\\\""), "quotes escaped: {json}");
    }

    #[test]
    fn emitted_span_ids_are_unique_and_resolvable_in_the_export() {
        let ring = TraceRing::enabled(16);
        let id = ring.intern("work");
        let a = ring.emit(id, TracePhase::Complete, 10, 1);
        let b = ring.emit(id, TracePhase::Complete, 20, 1);
        assert!(a > 0 && b == a + 1, "ids are sequential: {a}, {b}");
        let span_id = ring.scoped(1, 2).span(id).finish_id();
        assert_eq!(span_id, b + 1);
        let events = ring.events();
        assert_eq!(
            events.iter().map(|e| e.id).collect::<Vec<_>>(),
            vec![a, b, span_id]
        );
        let json = ring.to_chrome_json();
        assert!(
            json.contains(&format!("\"args\":{{\"span_id\":\"{span_id}\"}}")),
            "{json}"
        );
        // Disabled rings hand out 0 — the "no exemplar" sentinel.
        assert_eq!(TraceRing::disabled().span(0).finish_id(), 0);
    }

    #[test]
    fn finish_id_does_not_double_record_on_drop() {
        let ring = TraceRing::enabled(16);
        let id = ring.intern("once");
        {
            let span = ring.span(id);
            let _ = span.finish_id();
        }
        assert_eq!(ring.recorded(), 1);
    }

    #[test]
    fn chrome_json_escapes_quotes_backslashes_and_control_chars() {
        let ring = TraceRing::enabled(16);
        // Adversarial span name: quote, backslash, newline, tab and a
        // raw control byte — all must come out JSON-escaped.
        let id = ring.intern("bad\"name\\with\nnewline\ttab\u{1}ctl");
        ring.emit(id, TracePhase::Complete, 100, 50);
        let json = ring.to_chrome_json();
        assert!(
            json.contains("bad\\\"name\\\\with\\nnewline\\ttab\\u0001ctl"),
            "{json}"
        );
        // No raw control characters or unescaped quotes survive inside
        // the name field.
        assert!(!json.contains('\u{1}'), "{json}");
        assert!(!json.contains('\n'), "{json}");
    }

    #[test]
    fn concurrent_recording_never_yields_torn_events() {
        let ring = TraceRing::enabled(128);
        let id = ring.intern("hammer");
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let worker = ring.scoped(t, t);
                scope.spawn(move || {
                    for i in 0..5_000u64 {
                        // ts and dur carry the writer id so a torn read
                        // (fields from two writers) is detectable.
                        worker.emit(id, TracePhase::Complete, i * 8 + t, t + 1);
                    }
                });
            }
            for _ in 0..50 {
                for e in ring.events() {
                    assert_eq!(e.ts_ns % 8, e.pid, "torn event: {e:?}");
                    assert_eq!(e.dur_ns, e.pid + 1, "torn event: {e:?}");
                    assert_eq!(e.tid, e.pid, "torn event: {e:?}");
                }
            }
        });
        assert_eq!(ring.recorded(), 20_000);
    }
}
