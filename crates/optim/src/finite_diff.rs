//! Central-difference derivatives.
//!
//! Default derivative provider for [`crate::NlpProblem`] implementations
//! that do not supply analytic gradients/Jacobians. Central differences
//! give `O(h²)` accuracy at two evaluations per variable, plenty for the
//! smooth, well-scaled MPC problems in this workspace.

/// Relative perturbation used by the finite-difference helpers.
pub const DEFAULT_STEP: f64 = 1e-6;

/// Central-difference gradient of a scalar function.
///
/// # Examples
///
/// ```
/// use ev_optim::finite_diff::gradient;
///
/// let f = |z: &[f64]| z[0] * z[0] + 3.0 * z[1];
/// let g = gradient(&f, &[2.0, 0.0]);
/// assert!((g[0] - 4.0).abs() < 1e-6);
/// assert!((g[1] - 3.0).abs() < 1e-6);
/// ```
#[must_use]
pub fn gradient(f: &dyn Fn(&[f64]) -> f64, z: &[f64]) -> Vec<f64> {
    let n = z.len();
    let mut grad = vec![0.0; n];
    let mut zp = z.to_vec();
    for i in 0..n {
        let h = DEFAULT_STEP * (1.0 + z[i].abs());
        let orig = z[i];
        zp[i] = orig + h;
        let fp = f(&zp);
        zp[i] = orig - h;
        let fm = f(&zp);
        zp[i] = orig;
        grad[i] = (fp - fm) / (2.0 * h);
    }
    grad
}

/// Central-difference Jacobian of a vector function with `m` outputs,
/// returned row-major as `m` rows of length `z.len()`.
///
/// `f` writes its `m` outputs into the provided buffer.
///
/// # Examples
///
/// ```
/// use ev_optim::finite_diff::jacobian;
///
/// // f(z) = [z0·z1, z0 + z1]
/// let f = |z: &[f64], out: &mut [f64]| {
///     out[0] = z[0] * z[1];
///     out[1] = z[0] + z[1];
/// };
/// let j = jacobian(&f, &[2.0, 3.0], 2);
/// assert!((j[0][0] - 3.0).abs() < 1e-6); // ∂(z0·z1)/∂z0
/// assert!((j[0][1] - 2.0).abs() < 1e-6);
/// assert!((j[1][0] - 1.0).abs() < 1e-6);
/// ```
#[must_use]
pub fn jacobian(f: &dyn Fn(&[f64], &mut [f64]), z: &[f64], m: usize) -> Vec<Vec<f64>> {
    let n = z.len();
    let mut jac = vec![vec![0.0; n]; m];
    let mut zp = z.to_vec();
    let mut fp = vec![0.0; m];
    let mut fm = vec![0.0; m];
    for i in 0..n {
        let h = DEFAULT_STEP * (1.0 + z[i].abs());
        let orig = z[i];
        zp[i] = orig + h;
        f(&zp, &mut fp);
        zp[i] = orig - h;
        f(&zp, &mut fm);
        zp[i] = orig;
        for (r, row) in jac.iter_mut().enumerate() {
            row[i] = (fp[r] - fm[r]) / (2.0 * h);
        }
    }
    jac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_of_quadratic_is_exact_to_tolerance() {
        let f = |z: &[f64]| 0.5 * z.iter().map(|v| v * v).sum::<f64>();
        let z = [1.0, -2.0, 3.0];
        let g = gradient(&f, &z);
        for (gi, zi) in g.iter().zip(&z) {
            assert!((gi - zi).abs() < 1e-7);
        }
    }

    #[test]
    fn gradient_handles_large_arguments() {
        // Relative step keeps accuracy at large |z|.
        let f = |z: &[f64]| z[0] * z[0];
        let g = gradient(&f, &[1e6]);
        assert!((g[0] - 2e6).abs() / 2e6 < 1e-6);
    }

    #[test]
    fn jacobian_of_trig_functions() {
        let f = |z: &[f64], out: &mut [f64]| {
            out[0] = z[0].sin();
            out[1] = z[0].cos() * z[1];
        };
        let j = jacobian(&f, &[0.5, 2.0], 2);
        assert!((j[0][0] - 0.5f64.cos()).abs() < 1e-8);
        assert!((j[0][1]).abs() < 1e-8);
        assert!((j[1][0] + 0.5f64.sin() * 2.0).abs() < 1e-7);
        assert!((j[1][1] - 0.5f64.cos()).abs() < 1e-8);
    }

    #[test]
    fn jacobian_of_empty_output() {
        let f = |_z: &[f64], _out: &mut [f64]| {};
        let j = jacobian(&f, &[1.0], 0);
        assert!(j.is_empty());
    }
}
