* Hock-Schittkowski 21: min 0.01 x1^2 + x2^2 - 100
* s.t. 10 x1 - x2 >= 10, 2 <= x1 <= 50, -50 <= x2 <= 50.
* Optimum x = (2, 0), f* = -99.96.
NAME HS21
ROWS
 N OBJ
 G C1
COLUMNS
 X1 OBJ 0.0 C1 10.0
 X2 OBJ 0.0 C1 -1.0
RHS
 RHS C1 10.0 OBJ 100.0
BOUNDS
 LO BND X1 2.0
 UP BND X1 50.0
 LO BND X2 -50.0
 UP BND X2 50.0
QUADOBJ
 X1 X1 0.02
 X2 X2 2.0
ENDATA
