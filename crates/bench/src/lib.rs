//! Shared scenario constructors for the evclimate benchmark harness.
//!
//! The Criterion benches in `benches/` measure how long each paper
//! experiment takes to regenerate and how fast the individual substrates
//! are; the experiment *outputs* (the tables themselves) are printed by
//! the `repro` binary of [`ev_core`]. This library crate holds the pieces
//! both share so the bench files stay declarative.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ev_control::{ControlContext, PreviewSample};
use ev_core::{ControllerKind, EvParams, Simulation, SimulationResult};
use ev_drive::{AmbientConditions, DriveCycle, DriveProfile};
use ev_hvac::HvacState;
use ev_units::{Celsius, Percent, Seconds, Watts};

/// Builds the standard benchmark profile: a cycle at 1 Hz and constant
/// ambient.
#[must_use]
pub fn bench_profile(cycle: &DriveCycle, ambient_c: f64) -> DriveProfile {
    DriveProfile::from_cycle(
        cycle,
        AmbientConditions::constant(Celsius::new(ambient_c)),
        Seconds::new(1.0),
    )
}

/// Runs one cycle × controller cell, preconditioned like the paper's
/// evaluation sweep.
///
/// # Panics
///
/// Panics if the built-in configuration fails to construct (it does not).
#[must_use]
pub fn run_cell(cycle: &DriveCycle, ambient_c: f64, kind: ControllerKind) -> SimulationResult {
    let mut params = EvParams::nissan_leaf_like();
    params.initial_cabin = Some(params.target);
    let sim = Simulation::new(params.clone(), bench_profile(cycle, ambient_c))
        .expect("profile non-empty");
    let mut controller = kind.instantiate(&params).expect("controller instantiates");
    sim.run(controller.as_mut()).expect("simulation runs")
}

/// Builds the paper-configured MPC controller (the configuration
/// [`ControllerKind::Mpc`] instantiates), optionally forced onto the
/// central-difference derivative fallback so the analytic-derivative
/// speedup can be measured A/B on identical problems.
///
/// # Panics
///
/// Panics if the built-in configuration fails to construct (it does not).
#[must_use]
pub fn paper_mpc(params: &EvParams, finite_diff: bool) -> ev_control::MpcController {
    ev_control::MpcController::builder(params.hvac_model(), params.limits())
        .target(params.target)
        .horizon(8)
        .prediction_dt(Seconds::new(4.0))
        .recompute_every(4)
        .battery(params.mpc_battery_model())
        .accessory_power(params.accessory_power)
        .finite_difference_derivatives(finite_diff)
        .build()
        .expect("paper mpc config is valid")
}

/// Runs one cycle × MPC cell like [`run_cell`], but through
/// [`paper_mpc`] so the derivative mode can be selected.
///
/// # Panics
///
/// Panics if the built-in configuration fails to construct (it does not).
#[must_use]
pub fn run_mpc_cell(cycle: &DriveCycle, ambient_c: f64, finite_diff: bool) -> SimulationResult {
    let mut params = EvParams::nissan_leaf_like();
    params.initial_cabin = Some(params.target);
    let sim = Simulation::new(params.clone(), bench_profile(cycle, ambient_c))
        .expect("profile non-empty");
    let mut mpc = paper_mpc(&params, finite_diff);
    sim.run(&mut mpc).expect("simulation runs")
}

/// A representative hot-day control context for single-step controller
/// benchmarks. The preview alternates motor-power peaks and lulls so the
/// MPC has something to optimize.
#[must_use]
pub fn bench_context(preview: &[PreviewSample]) -> ControlContext<'_> {
    ControlContext {
        state: HvacState::new(Celsius::new(25.0)),
        ambient: Celsius::new(35.0),
        solar: Watts::new(350.0),
        soc: Percent::new(88.0),
        soc_avg: 91.0,
        dt: Seconds::new(1.0),
        elapsed: Seconds::new(120.0),
        preview,
    }
}

/// Builds an alternating peak/lull motor-power preview of `n` samples.
#[must_use]
pub fn bench_preview(n: usize) -> Vec<PreviewSample> {
    (0..n)
        .map(|k| PreviewSample {
            motor_power: Watts::new(if (k / 8) % 2 == 0 { 2_000.0 } else { 45_000.0 }),
            ambient: Celsius::new(35.0),
            solar: Watts::new(350.0),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_runner_produces_metrics() {
        let r = run_cell(&DriveCycle::ece15(), 35.0, ControllerKind::OnOff);
        assert!(r.metrics().avg_hvac_power.value() > 0.0);
    }

    #[test]
    fn preview_alternates() {
        let p = bench_preview(32);
        assert_eq!(p.len(), 32);
        assert!(p[0].motor_power.value() < p[8].motor_power.value());
    }
}
