//! Golden snapshot of the instrumented-sweep run report.
//!
//! Pins the timings-redacted report for the ECE-15 cell of the
//! evaluation matrix: solver-health columns (solve count, convergence
//! mix, mean SQP iterations, warm-start hit rate) are deterministic, so
//! any drift in the MPC's solver behavior — a different iteration count,
//! a lost warm start — shows up here as a one-line diff even when the
//! controlled trajectory stays inside the golden-trace tolerances.
//! Re-baseline intentionally with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test run_report
//! ```

use std::path::PathBuf;

use ev_testkit::verify_or_update_text;
use evclimate::core::experiments::{evaluation_sweep_run, render_sweep_report};
use evclimate::drive::DriveCycle;

#[test]
fn ece15_run_report_matches_baseline() {
    let sweep = evaluation_sweep_run(35.0, &[DriveCycle::ece15()], true);
    assert!(
        sweep.failures().is_empty(),
        "sweep cells failed: {:?}",
        sweep.failures()
    );
    // Timings are redacted: wall-clock latencies differ run to run, the
    // solver-health columns must not.
    let report = render_sweep_report(&sweep, false);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("run_report_ece15.txt");
    if let Err(e) = verify_or_update_text(&path, &report) {
        panic!("{e}");
    }
}

#[test]
fn instrumentation_does_not_perturb_the_simulation() {
    // The acceptance bar for telemetry: an instrumented run and a plain
    // run of the same cell produce bit-identical trajectories.
    let instrumented = evaluation_sweep_run(35.0, &[DriveCycle::ece15()], true);
    let plain = evaluation_sweep_run(35.0, &[DriveCycle::ece15()], false);
    for (a, b) in instrumented.cells.iter().zip(&plain.cells) {
        let (ra, rb) = (
            a.outcome.result().expect("instrumented cell completed"),
            b.outcome.result().expect("plain cell completed"),
        );
        assert_eq!(a.profile, b.profile);
        assert_eq!(ra.series.soc, rb.series.soc, "{}: SoC drifted", a.profile);
        assert_eq!(
            ra.series.cabin, rb.series.cabin,
            "{}: cabin trace drifted",
            a.profile
        );
        assert_eq!(a.diagnostics, b.diagnostics, "{}", a.profile);
    }
}
