//! The battery lifetime-aware MPC climate controller (the paper's
//! Section III).

use std::cell::{Cell, RefCell};

use ev_hvac::{Hvac, HvacInput, HvacLimits};
use ev_linalg::{Matrix, SparseMatrix};
use ev_optim::{
    NlpProblem, NoopSqpObserver, OptimError, QpStructure, QpSubproblemStatus, QpWarmStart,
    SqpIterationRecord, SqpObserver, SqpOptions, SqpResult, SqpSolver, SqpStatus,
};
use ev_telemetry::{
    Attribution, Counter, DecisionRecord, FlightRecorder, Histogram, HistogramSpec, PlannedStep,
    Registry, SolveOutcome, TraceRing, WarmStart,
};
use ev_units::{AmpereHours, Amperes, Celsius, KgPerSecond, Seconds, Volts, Watts};

use crate::{ClimateController, ControlContext, MpcDiagnostics, PreviewSample};

/// Weights of the MPC cost function (the paper's Eq. 21):
/// `C = Σ w1·(Pf+Pc+Ph) + w2·(SoC − SoC_avg)² + w3·(Tz − T_target)²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpcWeights {
    /// Weight on total HVAC power (per kW).
    pub w1: f64,
    /// Weight on squared SoC deviation from the running cycle average
    /// (per %²) — the battery-lifetime term.
    pub w2: f64,
    /// Weight on squared cabin-temperature error (per K²).
    pub w3: f64,
}

impl Default for MpcWeights {
    fn default() -> Self {
        Self {
            w1: 0.3,
            w2: 20.0,
            w3: 5.0,
        }
    }
}

/// The battery model the MPC predicts with: the paper's Eq. 13–14
/// constants. The Peukert exponent is what couples HVAC scheduling to
/// battery stress — concurrent motor + HVAC peaks draw superlinear
/// effective charge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpcBatteryModel {
    /// Nominal pack voltage for the power→current conversion.
    pub voltage: Volts,
    /// Nominal capacity `Cn`.
    pub capacity: AmpereHours,
    /// Nominal current `In`.
    pub nominal_current: Amperes,
    /// Peukert constant `pc`.
    pub peukert: f64,
}

impl Default for MpcBatteryModel {
    /// The Leaf 24 kWh pack the rest of the workspace defaults to.
    fn default() -> Self {
        Self {
            voltage: Volts::new(360.0),
            capacity: AmpereHours::new(66.667),
            nominal_current: Amperes::new(22.0),
            peukert: 1.10,
        }
    }
}

/// Configuration errors from [`MpcBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpcConfigError {
    /// Horizon must be at least one step.
    ZeroHorizon,
    /// Prediction period must be positive.
    NonPositivePredictionDt,
    /// Recompute interval must be at least one step.
    ZeroRecomputeInterval,
    /// The SQP major-iteration cap must be at least one.
    ZeroSqpIterationCap,
}

impl core::fmt::Display for MpcConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::ZeroHorizon => write!(f, "mpc horizon must be at least one step"),
            Self::NonPositivePredictionDt => write!(f, "mpc prediction period must be positive"),
            Self::ZeroRecomputeInterval => {
                write!(f, "mpc recompute interval must be at least one step")
            }
            Self::ZeroSqpIterationCap => {
                write!(f, "mpc sqp iteration cap must be at least one")
            }
        }
    }
}

impl std::error::Error for MpcConfigError {}

/// Telemetry handles the controller records into. Minted once at build
/// time; every handle from a disabled [`Registry`] is inert, so the
/// un-instrumented hot path pays a branch per update and nothing else.
#[derive(Debug, Clone)]
struct MpcMetrics {
    enabled: bool,
    control_step_seconds: Histogram,
    solve_seconds: Histogram,
    qp_seconds: Histogram,
    sqp_iterations: Histogram,
    sqp_step_length: Histogram,
    sqp_active_set: Histogram,
    warm_hits: Counter,
    warm_misses: Counter,
    warm_invalidated: Counter,
    rollout_cache_hits: Counter,
    rollout_cache_misses: Counter,
    solves: Counter,
    converged: Counter,
    max_iterations: Counter,
    stalled: Counter,
    errors: Counter,
    qp_elastic: Counter,
    qp_fallback: Counter,
    qp_regularization_retries: Counter,
}

impl MpcMetrics {
    fn bind(registry: &Registry) -> Self {
        MpcMetrics {
            enabled: registry.is_enabled(),
            control_step_seconds: registry
                .histogram("mpc_control_step_seconds", HistogramSpec::latency_seconds()),
            solve_seconds: registry
                .histogram("mpc_solve_seconds", HistogramSpec::latency_seconds()),
            qp_seconds: registry.histogram("sqp_qp_seconds", HistogramSpec::latency_seconds()),
            sqp_iterations: registry.histogram("mpc_sqp_iterations", HistogramSpec::counts()),
            sqp_step_length: registry.histogram("sqp_step_length", HistogramSpec::unit()),
            sqp_active_set: registry.histogram("sqp_active_set_size", HistogramSpec::counts()),
            warm_hits: registry.counter("mpc_warm_start_hits_total"),
            warm_misses: registry.counter("mpc_warm_start_misses_total"),
            warm_invalidated: registry.counter("mpc_warm_start_invalidated_total"),
            rollout_cache_hits: registry.counter("mpc_rollout_cache_hits_total"),
            rollout_cache_misses: registry.counter("mpc_rollout_cache_misses_total"),
            solves: registry.counter("mpc_solves_total"),
            converged: registry.counter("mpc_solve_converged_total"),
            max_iterations: registry.counter("mpc_solve_max_iterations_total"),
            stalled: registry.counter("mpc_solve_stalled_total"),
            errors: registry.counter("mpc_solve_errors_total"),
            qp_elastic: registry.counter("sqp_qp_elastic_total"),
            qp_fallback: registry.counter("sqp_qp_fallback_total"),
            qp_regularization_retries: registry.counter("sqp_qp_regularization_retry_total"),
        }
    }
}

/// Bridges [`SqpObserver`] iteration records into the telemetry
/// histograms and/or captures the final iteration's active set for the
/// flight recorder. Only attached to the solver when at least one of the
/// two sinks is live, so the plain path keeps the no-op observer the
/// solver optimizes out.
struct SolveObserver<'a> {
    metrics: Option<&'a MpcMetrics>,
    /// Overwritten every iteration; after the solve it holds the active
    /// set of the final iteration — the constraint rows that shaped the
    /// committed plan.
    final_active_set: Option<&'a mut Vec<usize>>,
}

impl SqpObserver for SolveObserver<'_> {
    fn active(&self) -> bool {
        self.metrics.is_some() || self.final_active_set.is_some()
    }

    /// Metrics only need the active-set *size*; the per-row index list
    /// (one Vec per iteration) is assembled only when the flight
    /// recorder captures it.
    fn wants_active_set(&self) -> bool {
        self.final_active_set.is_some()
    }

    fn on_iteration(&mut self, record: &SqpIterationRecord) {
        if let Some(m) = self.metrics {
            m.qp_seconds.record(record.qp_seconds);
            m.sqp_active_set.record(record.active_set_size as f64);
            if record.accepted && record.step_length > 0.0 {
                m.sqp_step_length.record(record.step_length);
            }
            match record.qp_status {
                QpSubproblemStatus::Nominal => {}
                QpSubproblemStatus::RegularizationRetry => m.qp_regularization_retries.inc(),
                QpSubproblemStatus::Elastic => m.qp_elastic.inc(),
                QpSubproblemStatus::GradientFallback => m.qp_fallback.inc(),
            }
        }
        if let Some(set) = self.final_active_set.as_deref_mut() {
            set.clear();
            set.extend_from_slice(&record.active_set);
        }
    }
}

/// Builder for [`MpcController`].
#[derive(Debug, Clone)]
pub struct MpcBuilder {
    hvac: Hvac,
    limits: HvacLimits,
    target: Celsius,
    horizon: usize,
    prediction_dt: Seconds,
    recompute_every: usize,
    weights: MpcWeights,
    battery: MpcBatteryModel,
    accessory_power: Watts,
    finite_difference_derivatives: bool,
    multiple_shooting: bool,
    telemetry: Registry,
    max_sqp_iterations: usize,
    recorder: FlightRecorder,
    trace: TraceRing,
}

impl MpcBuilder {
    /// Sets the cabin temperature target.
    #[must_use]
    pub fn target(mut self, target: Celsius) -> Self {
        self.target = target;
        self
    }

    /// Sets the comfort band as target ± `half_width` kelvins (C2).
    #[must_use]
    pub fn comfort_band(mut self, half_width: f64) -> Self {
        self.limits = HvacLimits::comfort_band(self.target, half_width);
        self
    }

    /// Sets the prediction horizon length `N` (the paper's control
    /// window).
    #[must_use]
    pub fn horizon(mut self, n: usize) -> Self {
        self.horizon = n;
        self
    }

    /// Sets the prediction step duration.
    #[must_use]
    pub fn prediction_dt(mut self, dt: Seconds) -> Self {
        self.prediction_dt = dt;
        self
    }

    /// Sets how many *simulation* steps pass between re-optimizations
    /// (move blocking; 1 = re-solve every step).
    #[must_use]
    pub fn recompute_every(mut self, steps: usize) -> Self {
        self.recompute_every = steps;
        self
    }

    /// Sets the cost weights.
    #[must_use]
    pub fn weights(mut self, weights: MpcWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Sets the battery prediction model.
    #[must_use]
    pub fn battery(mut self, battery: MpcBatteryModel) -> Self {
        self.battery = battery;
        self
    }

    /// Sets the constant accessory power added to the prediction.
    #[must_use]
    pub fn accessory_power(mut self, p: Watts) -> Self {
        self.accessory_power = p;
        self
    }

    /// Forces the solver onto the central-difference derivative fallback
    /// instead of the analytic adjoint/sensitivity derivatives. Exists for
    /// A/B benchmarking and derivative regression tests; the default
    /// (`false`) is strictly faster and more accurate.
    #[must_use]
    pub fn finite_difference_derivatives(mut self, fd: bool) -> Self {
        self.finite_difference_derivatives = fd;
        self
    }

    /// Switches the solver onto the multiple-shooting transcription: the
    /// predicted cabin temperature becomes a decision variable per step
    /// (5 variables/step instead of 4) tied to the trapezoidal dynamics by
    /// one equality constraint per step. Every constraint row then touches
    /// at most two adjacent steps, so the NLP declares a
    /// [`QpStructure`] and the SQP's KKT solves run on the banded
    /// backend in O(N) instead of the dense path's O(N³). The condensed
    /// (single-shooting) default keeps the smaller variable count; both
    /// transcriptions optimize the same trajectory. Ignored when
    /// [`MpcBuilder::finite_difference_derivatives`] is set — the
    /// finite-difference fallback exists to exercise the condensed
    /// derivative path.
    #[must_use]
    pub fn multiple_shooting(mut self, ms: bool) -> Self {
        self.multiple_shooting = ms;
        self
    }

    /// Attaches a telemetry registry. The controller registers its
    /// solve/warm-start/QP metrics on it and records per-`control`
    /// latencies; a disabled registry (the default) records nothing and
    /// costs nothing. Telemetry never changes the controller's outputs.
    #[must_use]
    pub fn telemetry(mut self, registry: &Registry) -> Self {
        self.telemetry = registry.clone();
        self
    }

    /// Caps the SQP solver's major iterations per solve (default 25).
    /// Exists so harnesses can *force* a `MaxIterations` outcome — the
    /// flight-recorder smoke test runs with a cap of 1 to provoke a
    /// post-mortem dump on an otherwise healthy cycle.
    #[must_use]
    pub fn max_sqp_iterations(mut self, cap: usize) -> Self {
        self.max_sqp_iterations = cap;
        self
    }

    /// Attaches a flight recorder. An enabled recorder receives one
    /// [`DecisionRecord`] per solve — predicted motor horizon, planned
    /// HVAC schedule, final active set, warm-start provenance and the
    /// motor/HVAC attribution split — and, if the recorder carries an
    /// auto-dump path, writes a post-mortem JSONL whenever a solve ends
    /// in `MaxIterations` or a structural error. A disabled recorder
    /// (the default) costs one branch per solve; recording never changes
    /// the controller's outputs.
    #[must_use]
    pub fn flight_recorder(mut self, recorder: &FlightRecorder) -> Self {
        self.recorder = recorder.clone();
        self
    }

    /// Attaches a trace ring. Each MPC solve records one complete span
    /// onto it, carrying whatever (pid, tid) identity the handle was
    /// [`TraceRing::scoped`] with — the fleet engine scopes it to
    /// (shard, session) before building the controller. A disabled ring
    /// (the default) records nothing and reads no clock; tracing never
    /// changes the controller's outputs.
    #[must_use]
    pub fn trace(mut self, trace: &TraceRing) -> Self {
        self.trace = trace.clone();
        self
    }

    /// Finishes the builder.
    ///
    /// # Errors
    ///
    /// Returns an [`MpcConfigError`] for a zero horizon, non-positive
    /// prediction period or zero recompute interval.
    pub fn build(self) -> Result<MpcController, MpcConfigError> {
        if self.horizon == 0 {
            return Err(MpcConfigError::ZeroHorizon);
        }
        if self.prediction_dt.value() <= 0.0 {
            return Err(MpcConfigError::NonPositivePredictionDt);
        }
        if self.recompute_every == 0 {
            return Err(MpcConfigError::ZeroRecomputeInterval);
        }
        if self.max_sqp_iterations == 0 {
            return Err(MpcConfigError::ZeroSqpIterationCap);
        }
        let solver = SqpSolver::new(SqpOptions {
            tolerance: 1e-4,
            max_iterations: self.max_sqp_iterations,
            max_line_search: 15,
            initial_penalty: 10.0,
            ..SqpOptions::default()
        });
        Ok(MpcController {
            hvac: self.hvac,
            limits: self.limits,
            target: self.target,
            horizon: self.horizon,
            prediction_dt: self.prediction_dt,
            recompute_every: self.recompute_every,
            weights: self.weights,
            battery: self.battery,
            accessory_power: self.accessory_power,
            solver,
            warm_start: None,
            sqp_warm: QpWarmStart::new(),
            cached_input: None,
            steps_since_solve: 0,
            use_finite_diff: self.finite_difference_derivatives,
            use_multiple_shooting: self.multiple_shooting && !self.finite_difference_derivatives,
            metrics: MpcMetrics::bind(&self.telemetry),
            diagnostics: MpcDiagnostics::default(),
            recorder: self.recorder,
            trace_solve_id: self.trace.intern("mpc_solve"),
            trace: self.trace,
            control_steps: 0,
        })
    }
}

/// The paper's battery lifetime-aware automotive climate controller: a
/// model predictive controller that schedules the HVAC inputs
/// `[Ts, Tc, dr, ṁz]` over a receding horizon, minimizing Eq. 21 subject
/// to the cabin dynamics (Eq. 18–19) and the constraint set C1–C10,
/// solved by SQP (its Section III).
///
/// The essential behavior (its Fig. 6): the controller *reduces HVAC
/// power when the electric motor is predicted to draw a peak* and
/// *pre-cools/pre-heats when the motor is idle or regenerating*, because
/// the Peukert term in the SoC prediction makes concurrent peaks
/// disproportionately expensive and the `w2·(SoC − SoC_avg)²` term
/// rewards a flat SoC trajectory.
///
/// # Examples
///
/// ```
/// use ev_control::MpcController;
/// use ev_hvac::{CabinParams, Hvac, HvacLimits, HvacParams};
/// use ev_units::Celsius;
///
/// # fn main() -> Result<(), ev_control::MpcConfigError> {
/// let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
/// let mpc = MpcController::builder(hvac, HvacLimits::default())
///     .target(Celsius::new(24.0))
///     .horizon(8)
///     .build()?;
/// assert_eq!(mpc.horizon(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MpcController {
    hvac: Hvac,
    limits: HvacLimits,
    target: Celsius,
    horizon: usize,
    prediction_dt: Seconds,
    recompute_every: usize,
    weights: MpcWeights,
    battery: MpcBatteryModel,
    accessory_power: Watts,
    solver: SqpSolver,
    warm_start: Option<Vec<f64>>,
    /// Interior-point multiplier cache threaded through consecutive
    /// multiple-shooting solves (the condensed path stays cold so its
    /// iterate trajectory remains bit-reproducible run to run).
    sqp_warm: QpWarmStart,
    cached_input: Option<HvacInput>,
    steps_since_solve: usize,
    use_finite_diff: bool,
    use_multiple_shooting: bool,
    metrics: MpcMetrics,
    diagnostics: MpcDiagnostics,
    recorder: FlightRecorder,
    /// Trace ring for per-solve spans, pre-scoped to this session's
    /// (pid, tid) identity by whoever built the controller.
    trace: TraceRing,
    /// Interned name id of the solve span.
    trace_solve_id: u32,
    /// Simulation steps seen so far — stamps [`DecisionRecord`]s.
    control_steps: u64,
}

/// Scale factors mapping decision variables to physical inputs:
/// `ts = 10·z`, `tc = 10·z`, `dr = z`, `mz = 0.1·z`. Keeps every variable
/// O(1) for the identity-initialized BFGS.
const TS_SCALE: f64 = 10.0;
const TC_SCALE: f64 = 10.0;
const MZ_SCALE: f64 = 0.1;
/// Variables per horizon step.
const VARS_PER_STEP: usize = 4;
/// Scale for the cabin-temperature decision variable of the
/// multiple-shooting transcription: `Tz_pred = 10·z`.
const TZ_SCALE: f64 = 10.0;
/// Variables per horizon step in multiple-shooting mode: the condensed
/// four plus the predicted cabin temperature.
const MS_VARS_PER_STEP: usize = 5;
/// Inequality constraints per horizon step.
const INEQ_PER_STEP: usize = 13;
/// Comfort funnel: when the cabin starts outside the band (hot or cold
/// soak), a hard C2 would make every rollout infeasible. The band is
/// therefore widened to the current state plus slack and tightened at the
/// fastest pull-in rate the HVAC can deliver, so the optimizer is always
/// asked for achievable progress.
const PULL_RATE_K_PER_S: f64 = 0.025;
const SOAK_SLACK_K: f64 = 0.5;

/// Labels of the 13 inequality rows per horizon step, in the exact order
/// the MPC assembles them (and the bit order of
/// [`DecisionRecord::active_masks`]): C1 flow bounds, C7 recirculation
/// bounds, C5 coil floor, C4 coil ≤ mix, C3 coil ≤ supply, C6 supply
/// cap, C2 comfort funnel, C8/C9/C10 heater/cooler/fan power caps.
/// Shared with `evsim explain` so dumps render with constraint names.
pub const CONSTRAINT_ROW_LABELS: [&str; INEQ_PER_STEP] = [
    "C1-", "C1+", "C7-", "C7+", "C5", "C4", "C3", "C6", "C2-", "C2+", "C8", "C9", "C10",
];

impl MpcController {
    /// Starts a builder with sensible defaults: N = 8 steps of 4 s,
    /// re-solve every 4 simulation steps, 24 °C target.
    #[must_use]
    pub fn builder(hvac: Hvac, limits: HvacLimits) -> MpcBuilder {
        MpcBuilder {
            hvac,
            limits,
            target: Celsius::new(24.0),
            horizon: 8,
            prediction_dt: Seconds::new(4.0),
            recompute_every: 4,
            weights: MpcWeights::default(),
            battery: MpcBatteryModel::default(),
            accessory_power: Watts::new(300.0),
            finite_difference_derivatives: false,
            multiple_shooting: false,
            telemetry: Registry::disabled(),
            max_sqp_iterations: 25,
            recorder: FlightRecorder::disabled(),
            trace: TraceRing::disabled(),
        }
    }

    /// The prediction horizon length.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// The temperature target.
    #[must_use]
    pub fn target(&self) -> Celsius {
        self.target
    }

    /// The cost weights.
    #[must_use]
    pub fn weights(&self) -> MpcWeights {
        self.weights
    }

    /// Resamples the simulation-rate preview into `horizon` blocks of the
    /// prediction period: motor power is block-averaged (the paper's
    /// `Pe` vector), ambient/solar taken at block start.
    fn resample_preview(&self, ctx: &ControlContext<'_>) -> Vec<PreviewSample> {
        let block = (self.prediction_dt.value() / ctx.dt.value())
            .round()
            .max(1.0) as usize;
        let mut out = Vec::with_capacity(self.horizon);
        for k in 0..self.horizon {
            let start = k * block;
            let mut pe = 0.0;
            let mut n = 0.0;
            for j in start..start + block {
                let idx = j.min(ctx.preview.len().saturating_sub(1));
                if let Some(s) = ctx.preview.get(idx) {
                    pe += s.motor_power.value();
                    n += 1.0;
                }
            }
            let idx = start.min(ctx.preview.len().saturating_sub(1));
            let (ambient, solar) = match ctx.preview.get(idx) {
                Some(s) => (s.ambient, s.solar),
                None => (ctx.ambient, ctx.solar),
            };
            out.push(PreviewSample {
                motor_power: Watts::new(if n > 0.0 { pe / n } else { 0.0 }),
                ambient,
                solar,
            });
        }
        out
    }

    /// Initial decision vector when no warm start exists: passive coils
    /// at the mix temperature, moderate recirculation and flow.
    fn cold_start(&self, ctx: &ControlContext<'_>) -> Vec<f64> {
        let p = self.hvac.params();
        let mid_flow = 0.5 * (p.min_flow.value() + p.max_flow.value());
        let tm_guess = 0.3 * ctx.ambient.value() + 0.7 * ctx.state.tz.value();
        let mut z = Vec::with_capacity(self.horizon * self.vars_per_step());
        for _ in 0..self.horizon {
            z.push(tm_guess / TS_SCALE);
            z.push(tm_guess / TC_SCALE);
            z.push(0.7);
            z.push(mid_flow / MZ_SCALE);
            if self.use_multiple_shooting {
                // Hold the cabin at its current temperature: near-passive
                // coils barely move it over the horizon, so the dynamics
                // equalities start close to satisfied.
                z.push(ctx.state.tz.value() / TZ_SCALE);
            }
        }
        z
    }

    /// Decision variables per horizon step of the active transcription.
    fn vars_per_step(&self) -> usize {
        if self.use_multiple_shooting {
            MS_VARS_PER_STEP
        } else {
            VARS_PER_STEP
        }
    }

    /// How many *prediction* blocks of simulated time have elapsed since
    /// the previous solve: `round(recompute_every·dt / prediction_dt)`.
    /// The previous fixed one-block shift silently misaligned the warm
    /// start whenever the re-solve cadence differed from the prediction
    /// period (e.g. re-solving every simulation step leaves the plan where
    /// it is; re-solving every two blocks must drop two).
    fn elapsed_blocks(&self, ctx: &ControlContext<'_>) -> usize {
        let blocks = (self.recompute_every as f64 * ctx.dt.value() / self.prediction_dt.value())
            .round() as usize;
        blocks.min(self.horizon)
    }

    /// Shifts the previous solution `blocks` prediction blocks forward
    /// (standard MPC warm start): drops the leading steps that have
    /// already been executed, repeats the last step to fill the tail.
    fn shifted_warm_start(&self, prev: &[f64], blocks: usize) -> Vec<f64> {
        let vs = self.vars_per_step();
        let mut z = prev[blocks * vs..].to_vec();
        let tail = prev[prev.len() - vs..].to_vec();
        for _ in 0..blocks {
            z.extend_from_slice(&tail);
        }
        z
    }

    /// Extracts the first-step input from a decision vector.
    fn first_input(z: &[f64]) -> HvacInput {
        HvacInput {
            ts: Celsius::new(z[0] * TS_SCALE),
            tc: Celsius::new(z[1] * TC_SCALE),
            dr: z[2],
            mz: KgPerSecond::new(z[3] * MZ_SCALE),
        }
    }

    /// Builds the receding-horizon NLP for the given context without
    /// solving it. Public so harnesses (benchmarks, derivative
    /// cross-checks) can evaluate the problem's exact derivatives against
    /// the finite-difference fallback at arbitrary points.
    #[must_use]
    pub fn nlp(&self, ctx: &ControlContext<'_>) -> impl NlpProblem + '_ {
        self.build_nlp(ctx)
    }

    /// Runs `f` against the NLP transcription this controller actually
    /// solves — the multiple-shooting view when configured, the condensed
    /// single-shooting problem otherwise. The closure shape exists
    /// because the multiple-shooting view borrows the condensed problem
    /// it re-transcribes, so it cannot outlive this call. Public so
    /// harnesses can cross-check the active transcription's sparse
    /// derivatives and declared QP structure against dense references.
    pub fn with_active_nlp<R>(
        &self,
        ctx: &ControlContext<'_>,
        f: impl FnOnce(&dyn NlpProblem) -> R,
    ) -> R {
        let nlp = self.build_nlp(ctx);
        if self.use_multiple_shooting {
            f(&MsMpcNlp::new(&nlp))
        } else {
            f(&nlp)
        }
    }

    fn build_nlp(&self, ctx: &ControlContext<'_>) -> MpcNlp<'_> {
        MpcNlp {
            hvac: &self.hvac,
            limits: &self.limits,
            target: self.target,
            weights: self.weights,
            battery: self.battery,
            accessory_power: self.accessory_power.value(),
            horizon: self.horizon,
            dt: self.prediction_dt.value(),
            tz0: ctx.state.tz.value(),
            soc0: ctx.soc.value(),
            soc_avg_ref: ctx.soc_avg,
            preview: self.resample_preview(ctx),
            cache: RefCell::new(None),
            cache_hits: Cell::new(0),
            cache_misses: Cell::new(0),
        }
    }

    /// Solves the receding-horizon problem and caches the first input.
    ///
    /// All telemetry here is observation-only: the solver sees the same
    /// problem, start point and options whether or not a registry is
    /// attached, so instrumented runs are bit-identical to plain ones.
    fn solve(&mut self, ctx: &ControlContext<'_>) -> HvacInput {
        let trace_span = self.trace.span(self.trace_solve_id);
        let solve_span = self.metrics.solve_seconds.start_span();
        let recording = self.recorder.is_enabled();
        // Taken out of `self` for the duration of the solve: the NLP views
        // below hold a shared borrow of the controller, so the multiplier
        // cache is moved aside and restored once they are dropped.
        let mut sqp_warm = std::mem::take(&mut self.sqp_warm);
        let nlp = self.build_nlp(ctx);
        // The multiple-shooting view borrows the condensed NLP (model
        // parameters and resampled preview) and adds the per-step cabin
        // variables + dynamics equalities; the condensed view stays alive
        // for the flight-recorder capture in either mode.
        let ms_nlp = self.use_multiple_shooting.then(|| MsMpcNlp::new(&nlp));
        let (z0, provenance) = match &self.warm_start {
            Some(prev) if prev.len() == self.horizon * self.vars_per_step() => {
                let blocks = self.elapsed_blocks(ctx);
                (
                    self.shifted_warm_start(prev, blocks),
                    WarmStart::Shifted { blocks },
                )
            }
            _ => (self.cold_start(ctx), WarmStart::Cold),
        };
        let warm_started = provenance != WarmStart::Cold;
        let mut final_active_set: Vec<usize> = Vec::new();
        let solved = if self.metrics.enabled || recording {
            let observer = SolveObserver {
                metrics: self.metrics.enabled.then_some(&self.metrics),
                final_active_set: recording.then_some(&mut final_active_set),
            };
            match (&ms_nlp, self.use_finite_diff) {
                (Some(ms), _) => self.solver.solve_cached(ms, &z0, &mut sqp_warm, observer),
                (None, true) => self
                    .solver
                    .solve_observed(&FiniteDiffMpcNlp(&nlp), &z0, observer),
                (None, false) => self.solver.solve_observed(&nlp, &z0, observer),
            }
        } else {
            match (&ms_nlp, self.use_finite_diff) {
                (Some(ms), _) => self
                    .solver
                    .solve_cached(ms, &z0, &mut sqp_warm, NoopSqpObserver),
                (None, true) => self.solver.solve(&FiniteDiffMpcNlp(&nlp), &z0),
                (None, false) => self.solver.solve(&nlp, &z0),
            }
        };
        // Assemble the flight record while the NLP (and its preview) is
        // still alive; uncached rollouts keep the cache-hit diagnostics
        // identical to an unrecorded run. In multiple-shooting mode the
        // record is captured through the condensed lens: the per-step
        // cabin variables are dropped and the plan re-rolled from the
        // inputs, so dumps are layout-independent.
        let decision = recording.then(|| {
            let condensed;
            let solved_for_capture = match (&solved, &ms_nlp) {
                (Ok(result), Some(_)) => {
                    let mut z4 = Vec::with_capacity(self.horizon * VARS_PER_STEP);
                    for k in 0..self.horizon {
                        let o = k * MS_VARS_PER_STEP;
                        z4.extend_from_slice(&result.z[o..o + VARS_PER_STEP]);
                    }
                    condensed = Ok(SqpResult {
                        z: z4,
                        ..result.clone()
                    });
                    &condensed
                }
                _ => &solved,
            };
            Box::new(self.capture_decision(
                &nlp,
                ctx,
                provenance,
                solved_for_capture,
                &final_active_set,
            ))
        });
        let cache_hits = nlp.cache_hits.get() + ms_nlp.as_ref().map_or(0, |ms| ms.cache_hits.get());
        let cache_misses =
            nlp.cache_misses.get() + ms_nlp.as_ref().map_or(0, |ms| ms.cache_misses.get());
        drop(ms_nlp);
        drop(nlp);
        self.sqp_warm = sqp_warm;
        if let Some(decision) = decision {
            self.recorder.record_decision(*decision);
        }

        self.diagnostics.solves += 1;
        self.metrics.solves.inc();
        self.diagnostics.rollout_cache_hits += cache_hits;
        self.diagnostics.rollout_cache_misses += cache_misses;
        self.metrics.rollout_cache_hits.add(cache_hits);
        self.metrics.rollout_cache_misses.add(cache_misses);
        if warm_started {
            self.diagnostics.warm_start_hits += 1;
            self.metrics.warm_hits.inc();
        } else {
            self.diagnostics.warm_start_misses += 1;
            self.metrics.warm_misses.inc();
        }

        let input = match solved {
            Ok(result) => {
                self.diagnostics.sqp_iterations += result.iterations as u64;
                self.metrics.sqp_iterations.record(result.iterations as f64);
                match result.status {
                    SqpStatus::Converged => {
                        self.diagnostics.converged += 1;
                        self.metrics.converged.inc();
                    }
                    SqpStatus::MaxIterations => {
                        self.diagnostics.max_iterations += 1;
                        self.metrics.max_iterations.inc();
                    }
                    SqpStatus::LineSearchStalled => {
                        self.diagnostics.line_search_stalled += 1;
                        self.metrics.stalled.inc();
                    }
                }
                let input = Self::first_input(&result.z);
                self.warm_start = Some(result.z);
                input
            }
            Err(_) => {
                // Structural failure (should not happen with finite data):
                // fall back to the previous input or idle. Drop the warm
                // start too — it described a plan anchored at an older
                // state, and re-shifting it again next solve would anchor
                // it even further in the past.
                self.diagnostics.solver_errors += 1;
                self.metrics.errors.inc();
                if self.warm_start.is_some() {
                    self.diagnostics.warm_start_invalidated += 1;
                    self.metrics.warm_invalidated.inc();
                }
                self.warm_start = None;
                self.cached_input
                    .unwrap_or_else(|| HvacInput::idle(self.hvac.params(), ctx.state.tz))
            }
        };
        // Stamp the latency observation with the trace span that
        // produced it, so a p99 exemplar resolves to this exact solve
        // in the Chrome-trace export.
        solve_span.finish_with_exemplar(trace_span.finish_id());
        self.limits
            .clamp_input(&self.hvac, input, ctx.state, ctx.ambient)
    }

    /// Cumulative solver diagnostics since construction.
    #[must_use]
    pub fn diagnostics(&self) -> MpcDiagnostics {
        self.diagnostics
    }

    /// Assembles the [`DecisionRecord`] for one solve. Only called when
    /// the flight recorder is enabled; uses the uncached [`MpcNlp::rollout`]
    /// directly so the rollout-cache diagnostics stay identical to an
    /// unrecorded run.
    fn capture_decision(
        &self,
        nlp: &MpcNlp<'_>,
        ctx: &ControlContext<'_>,
        warm_start: WarmStart,
        solved: &Result<SqpResult, OptimError>,
        final_active_set: &[usize],
    ) -> DecisionRecord {
        let base = DecisionRecord {
            step: self.control_steps,
            t_s: ctx.elapsed.value(),
            outcome: SolveOutcome::Error,
            iterations: 0,
            objective: f64::NAN,
            constraint_violation: f64::NAN,
            warm_start,
            soc_pct: ctx.soc.value(),
            cabin_c: ctx.state.tz.value(),
            motor_preview_w: nlp.preview.iter().map(|s| s.motor_power.value()).collect(),
            plan: Vec::new(),
            constraint_rows: INEQ_PER_STEP,
            active_masks: Vec::new(),
            attribution: None,
        };
        let Ok(result) = solved else {
            return base;
        };
        let outcome = match result.status {
            SqpStatus::Converged => SolveOutcome::Converged,
            SqpStatus::MaxIterations => SolveOutcome::MaxIterations,
            SqpStatus::LineSearchStalled => SolveOutcome::LineSearchStalled,
        };
        let r = nlp.rollout(&result.z);
        // Motor-only baseline for the attribution split: zeroing the mass
        // flow zeroes every HVAC power term (ph, pc, pf all scale with
        // mz), so this rollout draws only motor + accessory power and the
        // SoC/effective-charge difference is the HVAC's share *including*
        // the superlinear Peukert coupling of concurrent peaks.
        let mut z_off = result.z.clone();
        for k in 0..self.horizon {
            z_off[k * VARS_PER_STEP + 3] = 0.0;
        }
        let motor_only = nlp.rollout(&z_off);

        let dt = self.prediction_dt.value();
        let mut plan = Vec::with_capacity(self.horizon);
        let mut hvac_energy_wh = 0.0;
        let mut motor_energy_wh = 0.0;
        let mut cost_hvac_power = 0.0;
        let mut cost_soc_deviation = 0.0;
        let mut cost_comfort = 0.0;
        for k in 0..self.horizon {
            let (ts, tc, dr, mz) = MpcNlp::decode(&result.z, k);
            let (ph, pc, pf) = r.powers[k];
            let p_hvac = ph + pc + pf;
            plan.push(PlannedStep {
                ts_c: ts,
                tc_c: tc,
                recirculation: dr,
                flow_kg_s: mz,
                hvac_power_w: p_hvac,
                cabin_c: r.tz[k],
                soc_pct: r.soc[k],
            });
            hvac_energy_wh += p_hvac * dt / 3600.0;
            motor_energy_wh +=
                (nlp.preview[k].motor_power.value() + self.accessory_power.value()) * dt / 3600.0;
            cost_hvac_power += self.weights.w1 * p_hvac / 1000.0;
            let sdev = r.soc[k] - nlp.soc_avg_ref;
            cost_soc_deviation += self.weights.w2 * sdev * sdev;
            let terr = r.tz[k] - self.target.value();
            cost_comfort += self.weights.w3 * terr * terr;
        }
        let cn_as = self.battery.capacity.value() * 3600.0;
        let soc0 = ctx.soc.value();
        let last = self.horizon - 1;
        let soc_drop_total_pct = soc0 - r.soc[last];
        let soc_drop_motor_pct = soc0 - motor_only.soc[last];
        let soc_drop_hvac_pct = soc_drop_total_pct - soc_drop_motor_pct;
        let attribution = Attribution {
            battery_energy_wh: motor_energy_wh + hvac_energy_wh,
            motor_energy_wh,
            hvac_energy_wh,
            soc_drop_total_pct,
            soc_drop_motor_pct,
            soc_drop_hvac_pct,
            eff_charge_total_as: soc_drop_total_pct / 100.0 * cn_as,
            eff_charge_motor_as: soc_drop_motor_pct / 100.0 * cn_as,
            eff_charge_hvac_as: soc_drop_hvac_pct / 100.0 * cn_as,
            cost_hvac_power,
            cost_soc_deviation,
            cost_comfort,
        };
        let mut active_masks = vec![0u32; self.horizon];
        for &idx in final_active_set {
            let k = idx / INEQ_PER_STEP;
            if k < self.horizon {
                active_masks[k] |= 1 << (idx % INEQ_PER_STEP);
            }
        }
        DecisionRecord {
            outcome,
            iterations: result.iterations,
            objective: result.objective,
            constraint_violation: result.constraint_violation,
            plan,
            active_masks,
            attribution: Some(attribution),
            ..base
        }
    }
}

impl ClimateController for MpcController {
    fn name(&self) -> &'static str {
        "battery-lifetime-aware-mpc"
    }

    fn control(&mut self, ctx: &ControlContext<'_>) -> HvacInput {
        let step_span = self.metrics.control_step_seconds.start_span();
        let due = self.steps_since_solve == 0 || self.cached_input.is_none();
        self.steps_since_solve = (self.steps_since_solve + 1) % self.recompute_every;
        let input = if due {
            let input = self.solve(ctx);
            self.cached_input = Some(input);
            input
        } else {
            let held = self.cached_input.expect("cached input exists");
            self.limits
                .clamp_input(&self.hvac, held, ctx.state, ctx.ambient)
        };
        step_span.finish();
        self.control_steps += 1;
        input
    }

    fn solver_diagnostics(&self) -> Option<MpcDiagnostics> {
        Some(self.diagnostics)
    }

    fn reset_session(&mut self) {
        // Everything anchored to the previous vehicle's trajectory must
        // go: the shifted-plan warm start, the interior-point multiplier
        // cache, the held input and the re-solve cadence phase. A warm
        // start carried across vehicle ids would seed the new session's
        // first solve from another vehicle's plan — at best a slow cold
        // start in disguise, at worst a different iterate path than a
        // fresh controller (breaking per-session reproducibility).
        self.warm_start = None;
        self.sqp_warm = QpWarmStart::new();
        self.cached_input = None;
        self.steps_since_solve = 0;
        self.control_steps = 0;
        // Diagnostics and telemetry survive: the slot is recycled, the
        // cumulative metrics stream is not.
    }
}

/// The single-shooting NLP built every control step: decision variables
/// are the scaled HVAC inputs over the horizon; the cabin temperature and
/// SoC trajectories are rolled out inside the objective/constraints.
///
/// Unlike a generic [`NlpProblem`], this one supplies *exact* derivatives:
/// the forward rollout records per-step intermediates, an adjoint sweep
/// through the trapezoidal cabin recursion (Eq. 18–19) and the smoothed
/// Peukert SoC recursion (Eq. 13–14) produces the objective gradient, and
/// a forward sensitivity pass produces the sparse inequality Jacobian
/// (see `DESIGN.md`, "Analytic MPC derivatives"). One rollout per iterate
/// is shared between the objective, constraints, gradient and Jacobian
/// through an interior-mutability cache — the SQP solver evaluates all
/// four at the same `z`.
struct MpcNlp<'a> {
    hvac: &'a Hvac,
    limits: &'a HvacLimits,
    target: Celsius,
    weights: MpcWeights,
    battery: MpcBatteryModel,
    accessory_power: f64,
    horizon: usize,
    dt: f64,
    tz0: f64,
    soc0: f64,
    soc_avg_ref: f64,
    preview: Vec<PreviewSample>,
    /// Last rollout, keyed by the iterate it was computed at.
    cache: RefCell<Option<(Vec<f64>, Rollout)>>,
    /// Evaluations served from `cache` without a fresh rollout.
    cache_hits: Cell<u64>,
    /// Evaluations that had to run the rollout.
    cache_misses: Cell<u64>,
}

/// The rollout products needed by the objective, the constraints and
/// their exact derivatives.
struct Rollout {
    /// Tz after each step (length N).
    tz: Vec<f64>,
    /// SoC after each step (length N).
    soc: Vec<f64>,
    /// Unclamped component powers per step (ph, pc, pf).
    powers: Vec<(f64, f64, f64)>,
    /// Mix temperature per step.
    tm: Vec<f64>,
    /// `∂Tz_k/∂Tz_{k−1} = (Mc/dt − b/2)/(Mc/dt + b/2)` per step.
    alpha: Vec<f64>,
    /// `1/(Mc/dt + b/2)` per step.
    inv_den: Vec<f64>,
    /// `∂i_eff/∂P_total` per step (A/W), through the smoothed Peukert map.
    dieff_dp: Vec<f64>,
}

impl MpcNlp<'_> {
    fn decode(z: &[f64], k: usize) -> (f64, f64, f64, f64) {
        let o = k * VARS_PER_STEP;
        (
            z[o] * TS_SCALE,
            z[o + 1] * TC_SCALE,
            z[o + 2],
            z[o + 3] * MZ_SCALE,
        )
    }

    /// Cabin temperature entering step `k` (the state the step's mix and
    /// trapezoidal update read).
    fn tz_in(&self, r: &Rollout, k: usize) -> f64 {
        if k == 0 {
            self.tz0
        } else {
            r.tz[k - 1]
        }
    }

    fn rollout(&self, z: &[f64]) -> Rollout {
        let cabin = self.hvac.cabin();
        let cp = cabin.air_heat_capacity.value();
        let mc = cabin.thermal_capacitance.value();
        let cx = cabin.shell_conductance.value();
        let hp = self.hvac.params();
        let bat = &self.battery;
        let cn_as = bat.capacity.value() * 3600.0;
        let v = bat.voltage.value();
        let in_a = bat.nominal_current.value();
        let peukert_exp = 0.5 * (bat.peukert - 1.0);

        let mut tz = self.tz0;
        let mut soc = self.soc0;
        let n = self.horizon;
        let mut out = Rollout {
            tz: Vec::with_capacity(n),
            soc: Vec::with_capacity(n),
            powers: Vec::with_capacity(n),
            tm: Vec::with_capacity(n),
            alpha: Vec::with_capacity(n),
            inv_den: Vec::with_capacity(n),
            dieff_dp: Vec::with_capacity(n),
        };
        for k in 0..self.horizon {
            let (ts, tc, dr, mz) = Self::decode(z, k);
            let s = &self.preview[k];
            let to = s.ambient.value();
            let tm = (1.0 - dr) * to + dr * tz;
            // Smooth (unclamped) power model — the constraints keep the
            // spans non-negative at feasible points.
            let ph = cp / hp.heater_efficiency * mz * (ts - tc);
            let pc = cp / hp.cooler_efficiency * mz * (tm - tc);
            let pf = hp.fan_coefficient * mz * mz;
            // Trapezoidal cabin update (Eq. 18–19).
            let a = s.solar.value() + cx * to + mz * cp * ts;
            let b = cx + mz * cp;
            let inv_den = 1.0 / (mc / self.dt + 0.5 * b);
            let alpha = (mc / self.dt - 0.5 * b) * inv_den;
            tz = ((mc / self.dt - 0.5 * b) * tz + a) * inv_den;
            // SoC update with smoothed Peukert effective current (Eq. 13–14).
            let total = s.motor_power.value() + self.accessory_power + ph + pc + pf;
            let i = total / v;
            let u = (i * i + 1.0) / (in_a * in_a);
            let u_pow = u.powf(peukert_exp);
            let i_eff = i * u_pow;
            // d i_eff/dP = (1/V)·uᵉ·(1 + 2e·i²/(i²+1)).
            let dieff_dp = u_pow * (1.0 + 2.0 * peukert_exp * i * i / (i * i + 1.0)) / v;
            soc -= 100.0 * i_eff * self.dt / cn_as;
            out.tz.push(tz);
            out.soc.push(soc);
            out.powers.push((ph, pc, pf));
            out.tm.push(tm);
            out.alpha.push(alpha);
            out.inv_den.push(inv_den);
            out.dieff_dp.push(dieff_dp);
        }
        out
    }

    /// Runs `f` with the rollout at `z`, reusing the cached one when the
    /// iterate is unchanged (the SQP solver evaluates the objective,
    /// constraints, gradient and Jacobian at the same point).
    fn with_rollout<T>(&self, z: &[f64], f: impl FnOnce(&Rollout) -> T) -> T {
        let mut cache = self.cache.borrow_mut();
        let hit = matches!(&*cache, Some((zc, _)) if zc.as_slice() == z);
        if hit {
            self.cache_hits.set(self.cache_hits.get() + 1);
        } else {
            self.cache_misses.set(self.cache_misses.get() + 1);
            *cache = Some((z.to_vec(), self.rollout(z)));
        }
        let (_, r) = cache.as_ref().expect("cache filled above");
        f(r)
    }

    /// The objective value from an existing rollout.
    fn objective_of(&self, r: &Rollout) -> f64 {
        let w = &self.weights;
        let mut cost = 0.0;
        for k in 0..self.horizon {
            let (ph, pc, pf) = r.powers[k];
            cost += w.w1 * (ph + pc + pf) / 1000.0;
            let sdev = r.soc[k] - self.soc_avg_ref;
            cost += w.w2 * sdev * sdev;
            let terr = r.tz[k] - self.target.value();
            cost += w.w3 * terr * terr;
        }
        cost
    }

    /// The constraint values from an existing rollout (see
    /// [`NlpProblem::ineq_constraints`] for the row layout).
    fn constraints_of(&self, z: &[f64], r: &Rollout, out: &mut [f64]) {
        let hp = self.hvac.params();
        let comfort_lo = self.limits.comfort_min.value();
        let comfort_hi = self.limits.comfort_max.value();
        for k in 0..self.horizon {
            let pull = PULL_RATE_K_PER_S * self.dt * (k + 1) as f64;
            let hi_k = comfort_hi.max(self.tz0 + SOAK_SLACK_K - pull);
            let lo_k = comfort_lo.min(self.tz0 - SOAK_SLACK_K + pull);
            let (ts, tc, dr, mz) = Self::decode(z, k);
            let o = k * INEQ_PER_STEP;
            let (ph, pc, pf) = r.powers[k];
            // The coil floor binds only for active cooling; allow the coil
            // to track a colder passive mix (winter heating).
            let tc_floor = hp.min_coil_temp.value().min(r.tm[k]);
            out[o] = hp.min_flow.value() - mz; // C1 lower
            out[o + 1] = mz - hp.max_flow.value(); // C1 upper
            out[o + 2] = -dr; // C7 lower
            out[o + 3] = dr - hp.max_recirculation; // C7 upper
            out[o + 4] = tc_floor - tc; // C5
            out[o + 5] = tc - r.tm[k]; // C4
            out[o + 6] = tc - ts; // C3
            out[o + 7] = ts - hp.max_supply_temp.value(); // C6
            out[o + 8] = lo_k - r.tz[k]; // C2 lower (funnel)
            out[o + 9] = r.tz[k] - hi_k; // C2 upper (funnel)
            out[o + 10] = ph - hp.max_heating_power.value(); // C8
            out[o + 11] = pc - hp.max_cooling_power.value(); // C9
            out[o + 12] = pf - hp.max_fan_power.value(); // C10
        }
    }

    /// Exact objective gradient by a reverse (adjoint) sweep through the
    /// cabin and SoC recursions.
    ///
    /// Per step the forward pass computed `Tz_k = α_k·Tz_{k−1} + a_k/den_k`
    /// and `SoC_k = SoC_{k−1} − s_c·i_eff(P_k)`. Walking backwards, `λ`
    /// carries `∂f/∂Tz_k` (the future's view of the current cabin state:
    /// the direct comfort-error term, the next step's trapezoidal
    /// coefficient `α`, and the next step's mix-temperature path into the
    /// cooler power), and `μ` carries `∂f/∂SoC_k`, a plain suffix sum
    /// because the SoC recursion has unit gain.
    fn gradient_of(&self, z: &[f64], r: &Rollout, grad: &mut [f64]) {
        let cabin = self.hvac.cabin();
        let cp = cabin.air_heat_capacity.value();
        let hp = self.hvac.params();
        let ch = cp / hp.heater_efficiency;
        let cc = cp / hp.cooler_efficiency;
        let kf = hp.fan_coefficient;
        let w = &self.weights;
        let w1p = w.w1 / 1000.0;
        // ∂SoC_k/∂i_eff_k = −s_c.
        let s_c = 100.0 * self.dt / (self.battery.capacity.value() * 3600.0);

        let mut lam = 0.0; // ∂f/∂Tz_k flowing in from steps > k
        let mut mu = 0.0; // ∂f/∂SoC_k flowing in from steps > k
        for k in (0..self.horizon).rev() {
            let (ts, tc, dr, mz) = Self::decode(z, k);
            let to = self.preview[k].ambient.value();
            let tz_in = self.tz_in(r, k);
            let tz_k = r.tz[k];
            let tm = r.tm[k];
            let lam_k = lam + 2.0 * w.w3 * (tz_k - self.target.value());
            let mu_k = mu + 2.0 * w.w2 * (r.soc[k] - self.soc_avg_ref);
            // ∂f/∂(any power component at step k): the direct w1 term plus
            // the battery-stress path through every later SoC sample.
            let c_p = w1p - mu_k * s_c * r.dieff_dp[k];
            let d_tz_d_ts = mz * cp * r.inv_den[k];
            let d_tz_d_mz = cp * (ts - 0.5 * (tz_in + tz_k)) * r.inv_den[k];
            let o = k * VARS_PER_STEP;
            grad[o] = (c_p * ch * mz + lam_k * d_tz_d_ts) * TS_SCALE;
            grad[o + 1] = (c_p * (-ch * mz - cc * mz)) * TC_SCALE;
            grad[o + 2] = c_p * cc * mz * (tz_in - to);
            grad[o + 3] = (c_p * (ch * (ts - tc) + cc * (tm - tc) + 2.0 * kf * mz)
                + lam_k * d_tz_d_mz)
                * MZ_SCALE;
            // Propagate to Tz_{k−1}: the trapezoidal coefficient plus this
            // step's recirculated-mix path (∂tm/∂Tz_{k−1} = dr).
            lam = lam_k * r.alpha[k] + c_p * cc * mz * dr;
            mu = mu_k;
        }
    }

    /// Exact inequality Jacobian by forward sensitivity accumulation.
    ///
    /// `stz` carries `∂Tz_{k−1}/∂z` into step `k` (nonzero only in the
    /// `ts`/`mz` columns of earlier steps — the cabin recursion never sees
    /// `tc` or `dr`); each constraint row is assembled from it and the
    /// step-local partials recorded by the rollout.
    fn ineq_jacobian_of(&self, z: &[f64], r: &Rollout) -> Matrix {
        let n = self.horizon * VARS_PER_STEP;
        let cabin = self.hvac.cabin();
        let cp = cabin.air_heat_capacity.value();
        let hp = self.hvac.params();
        let ch = cp / hp.heater_efficiency;
        let cc = cp / hp.cooler_efficiency;
        let kf = hp.fan_coefficient;
        let min_coil = hp.min_coil_temp.value();

        let mut jac = Matrix::zeros(self.horizon * INEQ_PER_STEP, n);
        // ∂Tz_{k−1}/∂z entering the step below (zero for k = 0).
        let mut stz = vec![0.0; n];
        // ∂tm_k/∂z scratch row.
        let mut stm = vec![0.0; n];
        for k in 0..self.horizon {
            let (ts, tc, dr, mz) = Self::decode(z, k);
            let to = self.preview[k].ambient.value();
            let tz_in = self.tz_in(r, k);
            let tz_k = r.tz[k];
            let o = k * INEQ_PER_STEP;
            let c_ts = k * VARS_PER_STEP;
            let c_tc = c_ts + 1;
            let c_dr = c_ts + 2;
            let c_mz = c_ts + 3;

            // tm_k = (1−dr)·To + dr·Tz_{k−1}.
            for (sm, sz) in stm.iter_mut().zip(&stz) {
                *sm = dr * sz;
            }
            stm[c_dr] += tz_in - to;

            // Rows with only step-local entries.
            jac.set(o, c_mz, -MZ_SCALE); // C1 lower
            jac.set(o + 1, c_mz, MZ_SCALE); // C1 upper
            jac.set(o + 2, c_dr, -1.0); // C7 lower
            jac.set(o + 3, c_dr, 1.0); // C7 upper
                                       // C5: floor is the coil minimum (constant) unless the passive
                                       // mix is colder — then it tracks tm and inherits its
                                       // sensitivities. Branch matches the value computation.
            if r.tm[k] < min_coil {
                let row = jac.row_mut(o + 4);
                row.copy_from_slice(&stm);
                row[c_tc] -= TC_SCALE;
            } else {
                jac.set(o + 4, c_tc, -TC_SCALE);
            }
            // C4: tc − tm.
            {
                let row = jac.row_mut(o + 5);
                for (out, sm) in row.iter_mut().zip(&stm) {
                    *out = -sm;
                }
                row[c_tc] += TC_SCALE;
            }
            jac.set(o + 6, c_tc, TC_SCALE); // C3
            jac.set(o + 6, c_ts, -TS_SCALE);
            jac.set(o + 7, c_ts, TS_SCALE); // C6
                                            // Advance the cabin sensitivity to ∂Tz_k/∂z before the C2 rows
                                            // (they read the post-step state).
            let d_tz_d_ts = mz * cp * r.inv_den[k];
            let d_tz_d_mz = cp * (ts - 0.5 * (tz_in + tz_k)) * r.inv_den[k];
            for s in stz.iter_mut() {
                *s *= r.alpha[k];
            }
            stz[c_ts] += d_tz_d_ts * TS_SCALE;
            stz[c_mz] += d_tz_d_mz * MZ_SCALE;
            {
                let row = jac.row_mut(o + 8); // C2 lower: lo − Tz_k
                for (out, s) in row.iter_mut().zip(&stz) {
                    *out = -s;
                }
            }
            {
                let row = jac.row_mut(o + 9); // C2 upper: Tz_k − hi
                row.copy_from_slice(&stz);
            }
            // C8: ph = ch·mz·(ts − tc).
            jac.set(o + 10, c_ts, ch * mz * TS_SCALE);
            jac.set(o + 10, c_tc, -ch * mz * TC_SCALE);
            jac.set(o + 10, c_mz, ch * (ts - tc) * MZ_SCALE);
            // C9: pc = cc·mz·(tm − tc) — inherits tm's sensitivities.
            {
                let row = jac.row_mut(o + 11);
                for (out, sm) in row.iter_mut().zip(&stm) {
                    *out = cc * mz * sm;
                }
                row[c_tc] -= cc * mz * TC_SCALE;
                row[c_mz] += cc * (r.tm[k] - tc) * MZ_SCALE;
            }
            // C10: pf = kf·mz².
            jac.set(o + 12, c_mz, 2.0 * kf * mz * MZ_SCALE);
        }
        jac
    }

    /// Exact inequality Jacobian emitted directly in CSR form — no dense
    /// densification pass. Same forward-sensitivity recursion as
    /// [`MpcNlp::ineq_jacobian_of`], but the cabin sensitivity is kept as
    /// two per-step coefficient arrays (`∂Tz/∂ts_j`, `∂Tz/∂mz_j`), so
    /// each coupling row pushes exactly its prefix of nonzero columns in
    /// ascending order. The nine step-local rows shrink from `n` dense
    /// entries to 1–3 stored ones.
    fn ineq_jacobian_sparse_of(&self, z: &[f64], r: &Rollout, out: &mut SparseMatrix) {
        let n = self.horizon * VARS_PER_STEP;
        let cabin = self.hvac.cabin();
        let cp = cabin.air_heat_capacity.value();
        let hp = self.hvac.params();
        let ch = cp / hp.heater_efficiency;
        let cc = cp / hp.cooler_efficiency;
        let kf = hp.fan_coefficient;
        let min_coil = hp.min_coil_temp.value();

        out.reset(n);
        // ∂Tz_{k−1}/∂(ts_j, mz_j) entering the step (prefix 0..k live) and
        // ∂Tz_k/∂(ts_j, mz_j) after the step's trapezoidal update — both
        // kept because the C4/C5/C9 rows read the incoming state while the
        // C2 rows read the outgoing one.
        let mut stz_ts = vec![0.0; self.horizon];
        let mut stz_mz = vec![0.0; self.horizon];
        let mut stz_ts_next = vec![0.0; self.horizon];
        let mut stz_mz_next = vec![0.0; self.horizon];
        for k in 0..self.horizon {
            let (ts, tc, dr, mz) = Self::decode(z, k);
            let to = self.preview[k].ambient.value();
            let tz_in = self.tz_in(r, k);
            let tz_k = r.tz[k];
            let c_ts = k * VARS_PER_STEP;
            let c_tc = c_ts + 1;
            let c_dr = c_ts + 2;
            let c_mz = c_ts + 3;

            // C1 flow bounds.
            out.push(c_mz, -MZ_SCALE);
            out.finish_row();
            out.push(c_mz, MZ_SCALE);
            out.finish_row();
            // C7 recirculation bounds.
            out.push(c_dr, -1.0);
            out.finish_row();
            out.push(c_dr, 1.0);
            out.finish_row();
            // C5: constant coil floor, unless the passive mix is colder —
            // then the row inherits tm's sensitivities
            // (tm = (1−dr)·To + dr·Tz_{k−1}). Branch matches the value.
            if r.tm[k] < min_coil {
                for j in 0..k {
                    out.push(j * VARS_PER_STEP, dr * stz_ts[j]);
                    out.push(j * VARS_PER_STEP + 3, dr * stz_mz[j]);
                }
                out.push(c_tc, -TC_SCALE);
                out.push(c_dr, tz_in - to);
            } else {
                out.push(c_tc, -TC_SCALE);
            }
            out.finish_row();
            // C4: tc − tm.
            for j in 0..k {
                out.push(j * VARS_PER_STEP, -dr * stz_ts[j]);
                out.push(j * VARS_PER_STEP + 3, -dr * stz_mz[j]);
            }
            out.push(c_tc, TC_SCALE);
            out.push(c_dr, -(tz_in - to));
            out.finish_row();
            // C3: tc − ts.
            out.push(c_ts, -TS_SCALE);
            out.push(c_tc, TC_SCALE);
            out.finish_row();
            // C6: supply cap.
            out.push(c_ts, TS_SCALE);
            out.finish_row();
            // Advance the cabin sensitivity to ∂Tz_k/∂z before the C2
            // rows (they read the post-step state).
            let d_tz_d_ts = mz * cp * r.inv_den[k];
            let d_tz_d_mz = cp * (ts - 0.5 * (tz_in + tz_k)) * r.inv_den[k];
            for j in 0..k {
                stz_ts_next[j] = r.alpha[k] * stz_ts[j];
                stz_mz_next[j] = r.alpha[k] * stz_mz[j];
            }
            stz_ts_next[k] = d_tz_d_ts * TS_SCALE;
            stz_mz_next[k] = d_tz_d_mz * MZ_SCALE;
            // C2 lower: lo − Tz_k.
            for j in 0..=k {
                out.push(j * VARS_PER_STEP, -stz_ts_next[j]);
                out.push(j * VARS_PER_STEP + 3, -stz_mz_next[j]);
            }
            out.finish_row();
            // C2 upper: Tz_k − hi.
            for j in 0..=k {
                out.push(j * VARS_PER_STEP, stz_ts_next[j]);
                out.push(j * VARS_PER_STEP + 3, stz_mz_next[j]);
            }
            out.finish_row();
            // C8: ph = ch·mz·(ts − tc).
            out.push(c_ts, ch * mz * TS_SCALE);
            out.push(c_tc, -ch * mz * TC_SCALE);
            out.push(c_mz, ch * (ts - tc) * MZ_SCALE);
            out.finish_row();
            // C9: pc = cc·mz·(tm − tc) — inherits tm's sensitivities
            // (via the *incoming* cabin state). Grouping matches the dense
            // path's `cc·mz·(dr·stz)` so both emit identical bits.
            for j in 0..k {
                out.push(j * VARS_PER_STEP, cc * mz * (dr * stz_ts[j]));
                out.push(j * VARS_PER_STEP + 3, cc * mz * (dr * stz_mz[j]));
            }
            out.push(c_tc, -cc * mz * TC_SCALE);
            out.push(c_dr, cc * mz * (tz_in - to));
            out.push(c_mz, cc * (r.tm[k] - tc) * MZ_SCALE);
            out.finish_row();
            // C10: pf = kf·mz².
            out.push(c_mz, 2.0 * kf * mz * MZ_SCALE);
            out.finish_row();
            std::mem::swap(&mut stz_ts, &mut stz_ts_next);
            std::mem::swap(&mut stz_mz, &mut stz_mz_next);
        }
    }
}

impl NlpProblem for MpcNlp<'_> {
    fn num_vars(&self) -> usize {
        self.horizon * VARS_PER_STEP
    }

    fn objective(&self, z: &[f64]) -> f64 {
        self.with_rollout(z, |r| self.objective_of(r))
    }

    fn gradient(&self, z: &[f64], grad: &mut [f64]) {
        self.with_rollout(z, |r| self.gradient_of(z, r, grad));
    }

    fn num_ineq(&self) -> usize {
        self.horizon * INEQ_PER_STEP
    }

    fn ineq_constraints(&self, z: &[f64], out: &mut [f64]) {
        self.with_rollout(z, |r| self.constraints_of(z, r, out));
    }

    fn ineq_jacobian(&self, z: &[f64]) -> Matrix {
        self.with_rollout(z, |r| self.ineq_jacobian_of(z, r))
    }

    fn ineq_jacobian_sparse_into(&self, z: &[f64], out: &mut SparseMatrix) -> bool {
        self.with_rollout(z, |r| self.ineq_jacobian_sparse_of(z, r, out));
        true
    }

    fn has_exact_derivatives(&self) -> bool {
        true
    }
}

/// Wrapper exposing the same MPC problem *without* the analytic-derivative
/// overrides, so the solver falls back to central finite differences (the
/// documented [`NlpProblem`] fallback). Exists for A/B benchmarking and
/// for regression-testing the derivative speedup claim.
struct FiniteDiffMpcNlp<'a, 'b>(&'b MpcNlp<'a>);

impl NlpProblem for FiniteDiffMpcNlp<'_, '_> {
    fn num_vars(&self) -> usize {
        self.0.num_vars()
    }

    fn objective(&self, z: &[f64]) -> f64 {
        self.0.objective(z)
    }

    fn num_ineq(&self) -> usize {
        self.0.num_ineq()
    }

    fn ineq_constraints(&self, z: &[f64], out: &mut [f64]) {
        self.0.ineq_constraints(z, out);
    }
}

/// The multiple-shooting transcription of the same MPC problem: the
/// predicted cabin temperature after each step joins the decision vector
/// (`[ts, tc, dr, mz, tzv]` per step, [`MS_VARS_PER_STEP`]) and the
/// trapezoidal cabin recursion becomes one equality constraint per step,
///
/// ```text
/// c_k = 10·tzv_k − ((Mc/dt − b/2)·Tz_{k−1} + a_k)/(Mc/dt + b/2) = 0,
/// ```
///
/// with `Tz_{k−1} = 10·tzv_{k−1}` read from the *variables* instead of the
/// rollout. That single change makes every constraint row local: the
/// condensed C2 comfort rows — dense over all earlier `ts`/`mz` columns
/// through the cabin recursion — collapse to one entry on `tzv_k`, and the
/// only cross-step coupling left is the mix temperature's
/// `∂tm_k/∂tzv_{k−1}` (C4/C5/C9, the dynamics row). The Jacobians
/// therefore fit a one-step-lookback block pattern, the NLP declares a
/// [`QpStructure`], and the SQP factors its KKT systems with the O(N)
/// banded backend instead of the dense O(N³) path.
///
/// Borrows the condensed [`MpcNlp`] for the model parameters and the
/// resampled preview, but keeps its *own* rollout cache — the two views
/// are keyed by different iterate layouts.
struct MsMpcNlp<'a, 'b> {
    base: &'b MpcNlp<'a>,
    cache: RefCell<Option<(Vec<f64>, Rollout)>>,
    cache_hits: Cell<u64>,
    cache_misses: Cell<u64>,
}

impl<'a, 'b> MsMpcNlp<'a, 'b> {
    fn new(base: &'b MpcNlp<'a>) -> Self {
        Self {
            base,
            cache: RefCell::new(None),
            cache_hits: Cell::new(0),
            cache_misses: Cell::new(0),
        }
    }

    fn decode(z: &[f64], k: usize) -> (f64, f64, f64, f64) {
        let o = k * MS_VARS_PER_STEP;
        (
            z[o] * TS_SCALE,
            z[o + 1] * TC_SCALE,
            z[o + 2],
            z[o + 3] * MZ_SCALE,
        )
    }

    /// Cabin temperature entering step `k` — the initial state for the
    /// first step, the previous step's *decision variable* after that.
    fn tz_in(&self, z: &[f64], k: usize) -> f64 {
        if k == 0 {
            self.base.tz0
        } else {
            z[k * MS_VARS_PER_STEP - 1] * TZ_SCALE
        }
    }

    /// Forward pass through the model with the cabin state taken from the
    /// variables. `Rollout::tz` holds the *one-step prediction* of each
    /// step (the equality constraints' right-hand side), not a recursive
    /// trajectory; everything else has the same meaning as in
    /// [`MpcNlp::rollout`].
    fn rollout(&self, z: &[f64]) -> Rollout {
        let b = self.base;
        let cabin = b.hvac.cabin();
        let cp = cabin.air_heat_capacity.value();
        let mc = cabin.thermal_capacitance.value();
        let cx = cabin.shell_conductance.value();
        let hp = b.hvac.params();
        let bat = &b.battery;
        let cn_as = bat.capacity.value() * 3600.0;
        let v = bat.voltage.value();
        let in_a = bat.nominal_current.value();
        let peukert_exp = 0.5 * (bat.peukert - 1.0);

        let mut soc = b.soc0;
        let n = b.horizon;
        let mut out = Rollout {
            tz: Vec::with_capacity(n),
            soc: Vec::with_capacity(n),
            powers: Vec::with_capacity(n),
            tm: Vec::with_capacity(n),
            alpha: Vec::with_capacity(n),
            inv_den: Vec::with_capacity(n),
            dieff_dp: Vec::with_capacity(n),
        };
        for k in 0..n {
            let (ts, tc, dr, mz) = Self::decode(z, k);
            let tz_in = self.tz_in(z, k);
            let s = &b.preview[k];
            let to = s.ambient.value();
            let tm = (1.0 - dr) * to + dr * tz_in;
            let ph = cp / hp.heater_efficiency * mz * (ts - tc);
            let pc = cp / hp.cooler_efficiency * mz * (tm - tc);
            let pf = hp.fan_coefficient * mz * mz;
            let a = s.solar.value() + cx * to + mz * cp * ts;
            let bb = cx + mz * cp;
            let inv_den = 1.0 / (mc / b.dt + 0.5 * bb);
            let alpha = (mc / b.dt - 0.5 * bb) * inv_den;
            let pred = ((mc / b.dt - 0.5 * bb) * tz_in + a) * inv_den;
            let total = s.motor_power.value() + b.accessory_power + ph + pc + pf;
            let i = total / v;
            let u = (i * i + 1.0) / (in_a * in_a);
            let u_pow = u.powf(peukert_exp);
            let i_eff = i * u_pow;
            let dieff_dp = u_pow * (1.0 + 2.0 * peukert_exp * i * i / (i * i + 1.0)) / v;
            soc -= 100.0 * i_eff * b.dt / cn_as;
            out.tz.push(pred);
            out.soc.push(soc);
            out.powers.push((ph, pc, pf));
            out.tm.push(tm);
            out.alpha.push(alpha);
            out.inv_den.push(inv_den);
            out.dieff_dp.push(dieff_dp);
        }
        out
    }

    fn with_rollout<T>(&self, z: &[f64], f: impl FnOnce(&Rollout) -> T) -> T {
        let mut cache = self.cache.borrow_mut();
        let hit = matches!(&*cache, Some((zc, _)) if zc.as_slice() == z);
        if hit {
            self.cache_hits.set(self.cache_hits.get() + 1);
        } else {
            self.cache_misses.set(self.cache_misses.get() + 1);
            *cache = Some((z.to_vec(), self.rollout(z)));
        }
        let (_, r) = cache.as_ref().expect("cache filled above");
        f(r)
    }
}

impl NlpProblem for MsMpcNlp<'_, '_> {
    fn num_vars(&self) -> usize {
        self.base.horizon * MS_VARS_PER_STEP
    }

    /// Same cost as the condensed objective, with the comfort term read
    /// from the cabin *variables* — at any point satisfying the dynamics
    /// equalities the two transcriptions agree exactly.
    fn objective(&self, z: &[f64]) -> f64 {
        self.with_rollout(z, |r| {
            let b = self.base;
            let w = &b.weights;
            let mut cost = 0.0;
            for k in 0..b.horizon {
                let (ph, pc, pf) = r.powers[k];
                cost += w.w1 * (ph + pc + pf) / 1000.0;
                let sdev = r.soc[k] - b.soc_avg_ref;
                cost += w.w2 * sdev * sdev;
                let terr = z[k * MS_VARS_PER_STEP + 4] * TZ_SCALE - b.target.value();
                cost += w.w3 * terr * terr;
            }
            cost
        })
    }

    /// Exact gradient. Without the cabin recursion in the objective the
    /// adjoint `λ` of the condensed sweep disappears; only the SoC suffix
    /// sum `μ` remains, plus one forward-coupling term on each `tzv_k`:
    /// the next step's cooler reads `tzv_k` through the recirculated mix.
    fn gradient(&self, z: &[f64], grad: &mut [f64]) {
        self.with_rollout(z, |r| {
            let b = self.base;
            let cabin = b.hvac.cabin();
            let cp = cabin.air_heat_capacity.value();
            let hp = b.hvac.params();
            let ch = cp / hp.heater_efficiency;
            let cc = cp / hp.cooler_efficiency;
            let kf = hp.fan_coefficient;
            let w = &b.weights;
            let w1p = w.w1 / 1000.0;
            let s_c = 100.0 * b.dt / (b.battery.capacity.value() * 3600.0);

            let mut mu = 0.0; // ∂f/∂SoC_k flowing in from steps > k
            let mut c_p_next = 0.0; // c_p of step k+1 (0 past the horizon)
            for k in (0..b.horizon).rev() {
                let (ts, tc, _dr, mz) = Self::decode(z, k);
                let to = b.preview[k].ambient.value();
                let tz_in = self.tz_in(z, k);
                let tm = r.tm[k];
                let mu_k = mu + 2.0 * w.w2 * (r.soc[k] - b.soc_avg_ref);
                let c_p = w1p - mu_k * s_c * r.dieff_dp[k];
                let o = k * MS_VARS_PER_STEP;
                grad[o] = c_p * ch * mz * TS_SCALE;
                grad[o + 1] = c_p * (-ch * mz - cc * mz) * TC_SCALE;
                grad[o + 2] = c_p * cc * mz * (tz_in - to);
                grad[o + 3] = c_p * (ch * (ts - tc) + cc * (tm - tc) + 2.0 * kf * mz) * MZ_SCALE;
                let terr = z[o + 4] * TZ_SCALE - b.target.value();
                let (_, _, dr_next, mz_next) = if k + 1 < b.horizon {
                    Self::decode(z, k + 1)
                } else {
                    (0.0, 0.0, 0.0, 0.0)
                };
                grad[o + 4] = (2.0 * w.w3 * terr + c_p_next * cc * mz_next * dr_next) * TZ_SCALE;
                mu = mu_k;
                c_p_next = c_p;
            }
        });
    }

    fn num_eq(&self) -> usize {
        self.base.horizon
    }

    /// The trapezoidal cabin dynamics as defects, in kelvins:
    /// `c_k = 10·tzv_k − pred_k`.
    fn eq_constraints(&self, z: &[f64], out: &mut [f64]) {
        self.with_rollout(z, |r| {
            for k in 0..self.base.horizon {
                out[k] = z[k * MS_VARS_PER_STEP + 4] * TZ_SCALE - r.tz[k];
            }
        });
    }

    /// Exact equality Jacobian in CSR form: row `k` touches
    /// `tzv_{k−1}` (the incoming state), `ts_k`/`mz_k` (through the
    /// prediction) and `tzv_k` — four entries, one-step lookback.
    fn eq_jacobian_sparse_into(&self, z: &[f64], out: &mut SparseMatrix) -> bool {
        self.with_rollout(z, |r| {
            let b = self.base;
            let cp = b.hvac.cabin().air_heat_capacity.value();
            out.reset(b.horizon * MS_VARS_PER_STEP);
            for k in 0..b.horizon {
                let (ts, _, _, mz) = Self::decode(z, k);
                let tz_in = self.tz_in(z, k);
                let o = k * MS_VARS_PER_STEP;
                let d_tz_d_ts = mz * cp * r.inv_den[k];
                let d_tz_d_mz = cp * (ts - 0.5 * (tz_in + r.tz[k])) * r.inv_den[k];
                if k > 0 {
                    out.push(o - 1, -r.alpha[k] * TZ_SCALE);
                }
                out.push(o, -d_tz_d_ts * TS_SCALE);
                out.push(o + 3, -d_tz_d_mz * MZ_SCALE);
                out.push(o + 4, TZ_SCALE);
                out.finish_row();
            }
        });
        true
    }

    fn num_ineq(&self) -> usize {
        self.base.horizon * INEQ_PER_STEP
    }

    /// Same 13 rows per step as the condensed transcription (same order,
    /// same [`CONSTRAINT_ROW_LABELS`]), with the comfort rows reading the
    /// cabin *variable* — the dynamics equalities pin it to the model.
    fn ineq_constraints(&self, z: &[f64], out: &mut [f64]) {
        self.with_rollout(z, |r| {
            let b = self.base;
            let hp = b.hvac.params();
            let comfort_lo = b.limits.comfort_min.value();
            let comfort_hi = b.limits.comfort_max.value();
            for k in 0..b.horizon {
                let pull = PULL_RATE_K_PER_S * b.dt * (k + 1) as f64;
                let hi_k = comfort_hi.max(b.tz0 + SOAK_SLACK_K - pull);
                let lo_k = comfort_lo.min(b.tz0 - SOAK_SLACK_K + pull);
                let (ts, tc, dr, mz) = Self::decode(z, k);
                let tzv = z[k * MS_VARS_PER_STEP + 4] * TZ_SCALE;
                let o = k * INEQ_PER_STEP;
                let (ph, pc, pf) = r.powers[k];
                let tc_floor = hp.min_coil_temp.value().min(r.tm[k]);
                out[o] = hp.min_flow.value() - mz;
                out[o + 1] = mz - hp.max_flow.value();
                out[o + 2] = -dr;
                out[o + 3] = dr - hp.max_recirculation;
                out[o + 4] = tc_floor - tc;
                out[o + 5] = tc - r.tm[k];
                out[o + 6] = tc - ts;
                out[o + 7] = ts - hp.max_supply_temp.value();
                out[o + 8] = lo_k - tzv;
                out[o + 9] = tzv - hi_k;
                out[o + 10] = ph - hp.max_heating_power.value();
                out[o + 11] = pc - hp.max_cooling_power.value();
                out[o + 12] = pf - hp.max_fan_power.value();
            }
        });
    }

    /// Exact inequality Jacobian in CSR form. Every row is step-local
    /// except the mix-temperature path `∂tm_k/∂tzv_{k−1} = dr_k·10`
    /// (C4, the C5 cold branch, C9), which reaches exactly one block back.
    fn ineq_jacobian_sparse_into(&self, z: &[f64], out: &mut SparseMatrix) -> bool {
        self.with_rollout(z, |r| {
            let b = self.base;
            let cp = b.hvac.cabin().air_heat_capacity.value();
            let hp = b.hvac.params();
            let ch = cp / hp.heater_efficiency;
            let cc = cp / hp.cooler_efficiency;
            let kf = hp.fan_coefficient;
            let min_coil = hp.min_coil_temp.value();
            out.reset(b.horizon * MS_VARS_PER_STEP);
            for k in 0..b.horizon {
                let (ts, tc, dr, mz) = Self::decode(z, k);
                let to = b.preview[k].ambient.value();
                let tz_in = self.tz_in(z, k);
                let o = k * MS_VARS_PER_STEP;
                let (c_ts, c_tc, c_dr, c_mz, c_tzv) = (o, o + 1, o + 2, o + 3, o + 4);
                // ∂tm/∂tzv_{k−1} — the only cross-step coupling.
                let tm_prev = dr * TZ_SCALE;
                // C1 flow bounds.
                out.push(c_mz, -MZ_SCALE);
                out.finish_row();
                out.push(c_mz, MZ_SCALE);
                out.finish_row();
                // C7 recirculation bounds.
                out.push(c_dr, -1.0);
                out.finish_row();
                out.push(c_dr, 1.0);
                out.finish_row();
                // C5: constant coil floor unless the passive mix is colder.
                if r.tm[k] < min_coil {
                    if k > 0 {
                        out.push(o - 1, tm_prev);
                    }
                    out.push(c_tc, -TC_SCALE);
                    out.push(c_dr, tz_in - to);
                } else {
                    out.push(c_tc, -TC_SCALE);
                }
                out.finish_row();
                // C4: tc − tm.
                if k > 0 {
                    out.push(o - 1, -tm_prev);
                }
                out.push(c_tc, TC_SCALE);
                out.push(c_dr, -(tz_in - to));
                out.finish_row();
                // C3: tc − ts.
                out.push(c_ts, -TS_SCALE);
                out.push(c_tc, TC_SCALE);
                out.finish_row();
                // C6: supply cap.
                out.push(c_ts, TS_SCALE);
                out.finish_row();
                // C2 comfort funnel on the cabin variable.
                out.push(c_tzv, -TZ_SCALE);
                out.finish_row();
                out.push(c_tzv, TZ_SCALE);
                out.finish_row();
                // C8: ph = ch·mz·(ts − tc).
                out.push(c_ts, ch * mz * TS_SCALE);
                out.push(c_tc, -ch * mz * TC_SCALE);
                out.push(c_mz, ch * (ts - tc) * MZ_SCALE);
                out.finish_row();
                // C9: pc = cc·mz·(tm − tc).
                if k > 0 {
                    out.push(o - 1, cc * mz * tm_prev);
                }
                out.push(c_tc, -cc * mz * TC_SCALE);
                out.push(c_dr, cc * mz * (tz_in - to));
                out.push(c_mz, cc * (r.tm[k] - tc) * MZ_SCALE);
                out.finish_row();
                // C10: pf = kf·mz².
                out.push(c_mz, 2.0 * kf * mz * MZ_SCALE);
                out.finish_row();
            }
        });
        true
    }

    fn qp_structure(&self) -> Option<QpStructure> {
        Some(QpStructure {
            vars_per_block: MS_VARS_PER_STEP,
            eq_per_block: 1,
            lookback: 1,
        })
    }

    fn has_exact_derivatives(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_hvac::{CabinParams, HvacParams, HvacState};
    use ev_units::Percent;

    fn mpc() -> MpcController {
        MpcController::builder(
            Hvac::new(CabinParams::default(), HvacParams::default()),
            HvacLimits::default(),
        )
        .horizon(6)
        .prediction_dt(Seconds::new(4.0))
        .recompute_every(1)
        .build()
        .expect("valid config")
    }

    fn preview_const(pe_w: f64, to: f64, n: usize) -> Vec<PreviewSample> {
        vec![
            PreviewSample {
                motor_power: Watts::new(pe_w),
                ambient: Celsius::new(to),
                solar: Watts::new(400.0),
            };
            n
        ]
    }

    fn ctx<'a>(tz: f64, to: f64, preview: &'a [PreviewSample]) -> ControlContext<'a> {
        ControlContext {
            state: HvacState::new(Celsius::new(tz)),
            ambient: Celsius::new(to),
            solar: Watts::new(400.0),
            soc: Percent::new(90.0),
            soc_avg: 91.0,
            dt: Seconds::new(1.0),
            elapsed: Seconds::ZERO,
            preview,
        }
    }

    #[test]
    fn builder_validation() {
        let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
        assert_eq!(
            MpcController::builder(hvac.clone(), HvacLimits::default())
                .horizon(0)
                .build()
                .unwrap_err(),
            MpcConfigError::ZeroHorizon
        );
        assert_eq!(
            MpcController::builder(hvac.clone(), HvacLimits::default())
                .prediction_dt(Seconds::ZERO)
                .build()
                .unwrap_err(),
            MpcConfigError::NonPositivePredictionDt
        );
        assert_eq!(
            MpcController::builder(hvac.clone(), HvacLimits::default())
                .recompute_every(0)
                .build()
                .unwrap_err(),
            MpcConfigError::ZeroRecomputeInterval
        );
        assert_eq!(
            MpcController::builder(hvac, HvacLimits::default())
                .max_sqp_iterations(0)
                .build()
                .unwrap_err(),
            MpcConfigError::ZeroSqpIterationCap
        );
    }

    #[test]
    fn produces_feasible_input_when_hot() {
        let mut c = mpc();
        let preview = preview_const(10_000.0, 35.0, 24);
        let context = ctx(26.5, 35.0, &preview);
        let input = c.control(&context);
        // Must actively cool: coil below the cabin temperature.
        assert!(input.tc.value() < 26.5, "{input:?}");
        // And satisfy the static constraint set.
        let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
        assert!(HvacLimits::default()
            .validate(&hvac, &input, context.state, context.ambient)
            .is_ok());
    }

    #[test]
    fn heats_when_cold() {
        let mut c = mpc();
        let preview = preview_const(10_000.0, 0.0, 24);
        let context = ctx(21.5, 0.0, &preview);
        let input = c.control(&context);
        assert!(input.ts.value() > 22.0, "supply must be warm: {input:?}");
    }

    #[test]
    fn closed_loop_keeps_comfort_zone() {
        let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
        let mut c = MpcController::builder(hvac.clone(), HvacLimits::default())
            .horizon(6)
            .recompute_every(4)
            .build()
            .unwrap();
        let preview = preview_const(8_000.0, 35.0, 40);
        let mut state = HvacState::new(Celsius::new(26.9));
        for _ in 0..400 {
            let context = ControlContext {
                state,
                ..ctx(state.tz.value(), 35.0, &preview)
            };
            let input = c.control(&context);
            state = hvac
                .step(
                    state,
                    &input,
                    Celsius::new(35.0),
                    Watts::new(400.0),
                    Seconds::new(1.0),
                )
                .0;
        }
        let tz = state.tz.value();
        assert!((21.0..=27.0).contains(&tz), "tz {tz} left comfort zone");
        // MPC should settle close to target rather than ride the band edge
        // into discomfort.
        assert!((tz - 24.0).abs() < 3.0);
    }

    #[test]
    fn reduces_hvac_power_during_predicted_motor_peak() {
        // Two scenarios at identical current state: flat low motor power
        // vs an imminent large peak. The lifetime-aware MPC should spend
        // less HVAC power (or pre-cool harder now and back off later);
        // measure its *planned first-step* power in each.
        let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
        let mk = || {
            MpcController::builder(hvac.clone(), HvacLimits::default())
                .horizon(6)
                .recompute_every(1)
                .build()
                .unwrap()
        };
        // Peak now: 60 kW for the first 2 blocks, then low.
        let mut peak_preview = preview_const(60_000.0, 35.0, 8);
        peak_preview.extend(preview_const(2_000.0, 35.0, 16));
        // Flat low power.
        let flat_preview = preview_const(2_000.0, 35.0, 24);

        let mut flat_mpc = mk();
        let mut peak_mpc = mk();
        let context_flat = ctx(25.5, 35.0, &flat_preview);
        let context_peak = ctx(25.5, 35.0, &peak_preview);
        let flat_input = flat_mpc.control(&context_flat);
        let peak_input = peak_mpc.control(&context_peak);
        let p_flat = hvac
            .power(&flat_input, context_flat.state, context_flat.ambient)
            .total()
            .value();
        let p_peak = hvac
            .power(&peak_input, context_peak.state, context_peak.ambient)
            .total()
            .value();
        assert!(
            p_peak < p_flat + 1e-9,
            "during a motor peak the MPC should not spend more: peak {p_peak} vs flat {p_flat}"
        );
    }

    #[test]
    fn held_input_between_recomputes() {
        let mut c = MpcController::builder(
            Hvac::new(CabinParams::default(), HvacParams::default()),
            HvacLimits::default(),
        )
        .horizon(4)
        .recompute_every(3)
        .build()
        .unwrap();
        let preview = preview_const(5_000.0, 32.0, 16);
        let context = ctx(25.0, 32.0, &preview);
        let first = c.control(&context);
        let second = c.control(&context);
        // Identical context, held input: equal commands.
        assert_eq!(first, second);
    }

    #[test]
    fn empty_preview_falls_back_to_current_ambient() {
        let mut c = mpc();
        let context = ctx(25.0, 30.0, &[]);
        let input = c.control(&context);
        assert!(input.mz.value() >= 0.02 - 1e-12);
    }

    /// Central-difference reference for the two derivative tests below.
    fn fd_gradient(nlp: &MpcNlp<'_>, z: &[f64]) -> Vec<f64> {
        ev_optim::finite_diff::gradient(&|p: &[f64]| nlp.objective(p), z)
    }

    #[test]
    fn analytic_gradient_matches_central_difference() {
        let c = mpc();
        let preview = preview_const(12_000.0, 33.0, 24);
        let context = ctx(27.0, 33.0, &preview);
        let nlp = c.build_nlp(&context);
        let mut z = c.cold_start(&context);
        // Break the cold start's uniformity so cross-step couplings show.
        for (i, zi) in z.iter_mut().enumerate() {
            *zi += 0.01 * (i as f64 % 7.0 - 3.0);
        }
        let mut g = vec![0.0; nlp.num_vars()];
        nlp.gradient(&z, &mut g);
        let fd = fd_gradient(&nlp, &z);
        for i in 0..g.len() {
            let scale = fd[i].abs().max(1.0);
            assert!(
                ((g[i] - fd[i]) / scale).abs() < 1e-5,
                "grad[{i}]: analytic {} vs fd {}",
                g[i],
                fd[i]
            );
        }
    }

    #[test]
    fn analytic_ineq_jacobian_matches_central_difference() {
        // Hot case exercises the constant coil floor; the cold case below
        // drives the mix below the floor so the tm-tracking branch runs.
        for (tz0, to, dr) in [(27.0, 35.0, 0.6), (18.0, -15.0, 0.1)] {
            let c = mpc();
            let preview = preview_const(9_000.0, to, 24);
            let context = ctx(tz0, to, &preview);
            let nlp = c.build_nlp(&context);
            let mut z = c.cold_start(&context);
            for (i, zi) in z.iter_mut().enumerate() {
                *zi += 0.008 * (i as f64 % 5.0 - 2.0);
            }
            for k in 0..c.horizon() {
                z[k * VARS_PER_STEP + 2] = dr;
            }
            let jac = nlp.ineq_jacobian(&z);
            let m = nlp.num_ineq();
            let fd_rows = ev_optim::finite_diff::jacobian(
                &|p: &[f64], out: &mut [f64]| nlp.ineq_constraints(p, out),
                &z,
                m,
            );
            assert_eq!(m, fd_rows.len());
            for (r, fd_row) in fd_rows.iter().enumerate() {
                for (cidx, &f) in fd_row.iter().enumerate() {
                    let a = jac.get(r, cidx);
                    let scale = f.abs().max(1.0);
                    assert!(
                        ((a - f) / scale).abs() < 1e-5,
                        "row {r} col {cidx} (to {to}): analytic {a} vs fd {f}"
                    );
                }
            }
        }
    }

    #[test]
    fn condensed_sparse_jacobian_matches_dense() {
        // Hot case: constant coil floor; cold case: tm-tracking C5 branch.
        for (tz0, to, dr) in [(27.0, 35.0, 0.6), (18.0, -15.0, 0.1)] {
            let c = mpc();
            let preview = preview_const(9_000.0, to, 24);
            let context = ctx(tz0, to, &preview);
            let nlp = c.build_nlp(&context);
            let mut z = c.cold_start(&context);
            for (i, zi) in z.iter_mut().enumerate() {
                *zi += 0.008 * (i as f64 % 5.0 - 2.0);
            }
            for k in 0..c.horizon() {
                z[k * VARS_PER_STEP + 2] = dr;
            }
            let r = nlp.rollout(&z);
            let dense = nlp.ineq_jacobian_of(&z, &r);
            let mut sparse = SparseMatrix::new();
            nlp.ineq_jacobian_sparse_of(&z, &r, &mut sparse);
            assert_eq!(sparse.rows(), dense.rows());
            let sd = sparse.to_dense();
            for row in 0..dense.rows() {
                for col in 0..dense.cols() {
                    let (a, b) = (dense.get(row, col), sd.get(row, col));
                    assert!(
                        a.to_bits() == b.to_bits() || (a == 0.0 && b == 0.0),
                        "row {row} col {col} (to {to}): dense {a:e} vs sparse {b:e}"
                    );
                }
            }
        }
    }

    /// Builds a multiple-shooting controller plus a perturbed iterate in
    /// the 5-per-step layout for the MS derivative tests.
    fn ms_fixture(
        tz0: f64,
        to: f64,
        dr: f64,
        pe_w: f64,
    ) -> (MpcController, Vec<PreviewSample>, Vec<f64>) {
        let c = MpcController::builder(
            Hvac::new(CabinParams::default(), HvacParams::default()),
            HvacLimits::default(),
        )
        .horizon(6)
        .prediction_dt(Seconds::new(4.0))
        .recompute_every(1)
        .multiple_shooting(true)
        .build()
        .expect("valid config");
        let preview = preview_const(pe_w, to, 24);
        let context = ctx(tz0, to, &preview);
        let mut z = c.cold_start(&context);
        assert_eq!(z.len(), c.horizon() * MS_VARS_PER_STEP);
        for (i, zi) in z.iter_mut().enumerate() {
            *zi += 0.008 * (i as f64 % 5.0 - 2.0);
        }
        for k in 0..c.horizon() {
            z[k * MS_VARS_PER_STEP + 2] = dr;
        }
        (c, preview, z)
    }

    #[test]
    fn ms_gradient_matches_central_difference() {
        let (c, preview, z) = ms_fixture(27.0, 33.0, 0.6, 12_000.0);
        let context = ctx(27.0, 33.0, &preview);
        let nlp = c.build_nlp(&context);
        let ms = MsMpcNlp::new(&nlp);
        let mut g = vec![0.0; ms.num_vars()];
        ms.gradient(&z, &mut g);
        let fd = ev_optim::finite_diff::gradient(&|p: &[f64]| ms.objective(p), &z);
        for i in 0..g.len() {
            let scale = fd[i].abs().max(1.0);
            assert!(
                ((g[i] - fd[i]) / scale).abs() < 1e-5,
                "ms grad[{i}]: analytic {} vs fd {}",
                g[i],
                fd[i]
            );
        }
    }

    #[test]
    fn ms_sparse_jacobians_match_central_difference() {
        // Hot case: constant coil floor; cold case with low recirculation
        // drives the mix below the floor (tm-tracking C5 branch).
        for (tz0, to, dr) in [(27.0, 35.0, 0.6), (18.0, -15.0, 0.1)] {
            let (c, preview, z) = ms_fixture(tz0, to, dr, 9_000.0);
            let context = ctx(tz0, to, &preview);
            let nlp = c.build_nlp(&context);
            let ms = MsMpcNlp::new(&nlp);

            let mut eq_sparse = SparseMatrix::new();
            assert!(ms.eq_jacobian_sparse_into(&z, &mut eq_sparse));
            let eq = eq_sparse.to_dense();
            let fd_eq = ev_optim::finite_diff::jacobian(
                &|p: &[f64], out: &mut [f64]| ms.eq_constraints(p, out),
                &z,
                ms.num_eq(),
            );
            for (r, fd_row) in fd_eq.iter().enumerate() {
                for (cidx, &f) in fd_row.iter().enumerate() {
                    let a = eq.get(r, cidx);
                    let scale = f.abs().max(1.0);
                    assert!(
                        ((a - f) / scale).abs() < 1e-5,
                        "eq row {r} col {cidx} (to {to}): analytic {a} vs fd {f}"
                    );
                }
            }

            let mut in_sparse = SparseMatrix::new();
            assert!(ms.ineq_jacobian_sparse_into(&z, &mut in_sparse));
            let jin = in_sparse.to_dense();
            let fd_in = ev_optim::finite_diff::jacobian(
                &|p: &[f64], out: &mut [f64]| ms.ineq_constraints(p, out),
                &z,
                ms.num_ineq(),
            );
            for (r, fd_row) in fd_in.iter().enumerate() {
                for (cidx, &f) in fd_row.iter().enumerate() {
                    let a = jin.get(r, cidx);
                    let scale = f.abs().max(1.0);
                    assert!(
                        ((a - f) / scale).abs() < 1e-5,
                        "ineq row {r} col {cidx} (to {to}): analytic {a} vs fd {f}"
                    );
                }
            }
        }
    }

    #[test]
    fn ms_jacobian_rows_fit_declared_structure() {
        let (c, preview, z) = ms_fixture(18.0, -15.0, 0.1, 9_000.0);
        let context = ctx(18.0, -15.0, &preview);
        let nlp = c.build_nlp(&context);
        let ms = MsMpcNlp::new(&nlp);
        let st = ms.qp_structure().expect("MS declares a structure");
        assert_eq!(
            (st.vars_per_block, st.eq_per_block, st.lookback),
            (MS_VARS_PER_STEP, 1, 1)
        );
        let mut jac = SparseMatrix::new();
        assert!(ms.ineq_jacobian_sparse_into(&z, &mut jac));
        for row in 0..jac.rows() {
            let (cols, _) = jac.row(row);
            if let (Some(&first), Some(&last)) = (cols.first(), cols.last()) {
                assert!(
                    last / st.vars_per_block <= first / st.vars_per_block + st.lookback,
                    "ineq row {row} spans more than {} blocks",
                    st.lookback + 1
                );
            }
        }
        let mut eq = SparseMatrix::new();
        assert!(ms.eq_jacobian_sparse_into(&z, &mut eq));
        for row in 0..eq.rows() {
            let (cols, _) = eq.row(row);
            for &cidx in cols {
                let kc = cidx / st.vars_per_block;
                assert!(
                    kc <= row && kc + st.lookback >= row,
                    "eq row {row} touches block {kc}"
                );
            }
        }
    }

    #[test]
    fn ms_closed_loop_keeps_comfort_zone() {
        let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
        let mut c = MpcController::builder(hvac.clone(), HvacLimits::default())
            .horizon(6)
            .recompute_every(4)
            .multiple_shooting(true)
            .build()
            .unwrap();
        let preview = preview_const(8_000.0, 35.0, 40);
        let mut state = HvacState::new(Celsius::new(26.9));
        for _ in 0..400 {
            let context = ControlContext {
                state,
                ..ctx(state.tz.value(), 35.0, &preview)
            };
            let input = c.control(&context);
            state = hvac
                .step(
                    state,
                    &input,
                    Celsius::new(35.0),
                    Watts::new(400.0),
                    Seconds::new(1.0),
                )
                .0;
        }
        let tz = state.tz.value();
        assert!((21.0..=27.0).contains(&tz), "tz {tz} left comfort zone");
        assert!((tz - 24.0).abs() < 3.0);
        let d = c.diagnostics();
        assert!(d.converged > 0, "{d:?}");
        assert_eq!(d.solver_errors, 0, "{d:?}");
    }

    #[test]
    fn ms_solution_cost_matches_condensed() {
        // Both transcriptions optimize the same trajectory: extracting the
        // HVAC inputs from the multiple-shooting solution and pricing them
        // with the condensed objective must land within a few percent of
        // the condensed solution's cost.
        let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
        let mk = |ms| {
            MpcController::builder(hvac.clone(), HvacLimits::default())
                .horizon(6)
                .recompute_every(1)
                .multiple_shooting(ms)
                .build()
                .unwrap()
        };
        let preview = preview_const(10_000.0, 35.0, 24);
        let context = ctx(26.5, 35.0, &preview);
        let mut dense = mk(false);
        let mut banded = mk(true);
        dense.control(&context);
        banded.control(&context);
        let z_dense = dense.warm_start.clone().expect("condensed solve succeeded");
        let z_ms = banded.warm_start.clone().expect("ms solve succeeded");
        assert_eq!(z_ms.len(), banded.horizon() * MS_VARS_PER_STEP);
        let mut z4 = Vec::with_capacity(banded.horizon() * VARS_PER_STEP);
        for k in 0..banded.horizon() {
            let o = k * MS_VARS_PER_STEP;
            z4.extend_from_slice(&z_ms[o..o + VARS_PER_STEP]);
        }
        let nlp = dense.build_nlp(&context);
        let f_dense = nlp.objective(&z_dense);
        let f_ms = nlp.objective(&z4);
        let scale = f_dense.abs().max(1.0);
        assert!(
            ((f_ms - f_dense) / scale).abs() < 0.05,
            "condensed cost {f_dense} vs ms cost {f_ms}"
        );
    }

    #[test]
    fn nlp_advertises_exact_derivatives_and_fd_wrapper_does_not() {
        let c = mpc();
        let preview = preview_const(5_000.0, 30.0, 24);
        let context = ctx(25.0, 30.0, &preview);
        let nlp = c.build_nlp(&context);
        assert!(nlp.has_exact_derivatives());
        assert!(!FiniteDiffMpcNlp(&nlp).has_exact_derivatives());
    }

    #[test]
    fn warm_start_shifts_by_elapsed_simulated_blocks() {
        let preview = preview_const(5_000.0, 30.0, 24);
        // Context dt is 1 s. Re-solving every simulation step advances a
        // quarter of a 4 s prediction block, which rounds to no shift at
        // all; the old fixed one-block shift threw away a still-valid
        // leading step.
        let context = ctx(25.0, 30.0, &preview);
        assert_eq!(mpc().elapsed_blocks(&context), 0);
        let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
        let mk = |every: usize| {
            MpcController::builder(hvac.clone(), HvacLimits::default())
                .horizon(4)
                .prediction_dt(Seconds::new(4.0))
                .recompute_every(every)
                .build()
                .unwrap()
        };
        assert_eq!(mk(4).elapsed_blocks(&context), 1);
        assert_eq!(mk(8).elapsed_blocks(&context), 2);
        // Longer than the horizon: clamp rather than overrun the slice.
        assert_eq!(mk(64).elapsed_blocks(&context), 4);

        let c = mk(8);
        let prev: Vec<f64> = (0..4 * VARS_PER_STEP).map(|i| i as f64).collect();
        assert_eq!(c.shifted_warm_start(&prev, 0), prev);
        let z = c.shifted_warm_start(&prev, 2);
        assert_eq!(z.len(), prev.len());
        assert_eq!(z[..2 * VARS_PER_STEP], prev[2 * VARS_PER_STEP..]);
        // Tail filled by repeating the last step.
        assert_eq!(
            z[2 * VARS_PER_STEP..3 * VARS_PER_STEP],
            prev[3 * VARS_PER_STEP..]
        );
        assert_eq!(z[3 * VARS_PER_STEP..], prev[3 * VARS_PER_STEP..]);
        let all = c.shifted_warm_start(&prev, 4);
        assert_eq!(all.len(), prev.len());
        assert_eq!(all[..VARS_PER_STEP], prev[3 * VARS_PER_STEP..]);
    }

    #[test]
    fn reset_session_restores_fresh_controller_behavior() {
        // A reused session slot must solve bitwise identically to a
        // freshly built controller: no warm start, multiplier cache or
        // cadence phase may leak from the previous vehicle.
        let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
        let mk = || {
            MpcController::builder(hvac.clone(), HvacLimits::default())
                .horizon(6)
                .recompute_every(2)
                .build()
                .unwrap()
        };
        let preview = preview_const(8_000.0, 35.0, 24);
        let drive = |c: &mut MpcController| -> Vec<HvacInput> {
            (0..5)
                .map(|step| c.control(&ctx(26.0 - 0.1 * step as f64, 35.0, &preview)))
                .collect()
        };
        let mut fresh = mk();
        let fresh_inputs = drive(&mut fresh);

        let mut reused = mk();
        // A previous "vehicle" leaves a warm start, a held input and an
        // odd cadence phase behind.
        for step in 0..3 {
            let _ = reused.control(&ctx(28.0 + 0.2 * step as f64, 40.0, &preview));
        }
        assert!(reused.warm_start.is_some(), "previous session warmed up");
        reused.reset_session();
        assert!(reused.warm_start.is_none());
        assert!(reused.cached_input.is_none());
        assert_eq!(reused.steps_since_solve, 0);
        assert_eq!(drive(&mut reused), fresh_inputs);
        // Diagnostics survive the reset (cumulative observability), and
        // the first post-reset solve is a cold start.
        let d = reused.diagnostics();
        assert_eq!(d.warm_start_misses, 2, "one per session's first solve");
    }

    #[test]
    fn telemetry_observes_without_perturbing() {
        let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
        let registry = Registry::enabled();
        let mk = |reg: Option<&Registry>| {
            let b = MpcController::builder(hvac.clone(), HvacLimits::default())
                .horizon(6)
                .recompute_every(2);
            let b = match reg {
                Some(r) => b.telemetry(r),
                None => b,
            };
            b.build().unwrap()
        };
        let mut plain = mk(None);
        let mut instrumented = mk(Some(&registry));
        let preview = preview_const(8_000.0, 35.0, 24);
        for step in 0..6 {
            let context = ctx(26.0 - 0.1 * step as f64, 35.0, &preview);
            let a = plain.control(&context);
            let b = instrumented.control(&context);
            assert_eq!(a, b, "telemetry must not perturb the command");
        }
        // Both controllers expose identical always-on diagnostics.
        assert_eq!(plain.diagnostics(), instrumented.diagnostics());
        let d = instrumented.diagnostics();
        assert_eq!(d.solves, 3, "6 steps at recompute_every=2");
        assert_eq!(d.warm_start_misses, 1);
        assert_eq!(d.warm_start_hits, 2);
        assert!(d.sqp_iterations > 0);
        assert!(d.rollout_cache_hits > 0, "solver re-evaluates per iterate");
        assert!(plain.solver_diagnostics().is_some());

        // The registry saw the same story, plus timing histograms.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("mpc_solves_total"), Some(3));
        assert_eq!(snap.counter("mpc_warm_start_hits_total"), Some(2));
        assert_eq!(
            snap.counter("mpc_rollout_cache_hits_total"),
            Some(d.rollout_cache_hits)
        );
        assert_eq!(snap.histogram("mpc_control_step_seconds").unwrap().count, 6);
        assert_eq!(snap.histogram("mpc_solve_seconds").unwrap().count, 3);
        assert_eq!(
            snap.histogram("mpc_sqp_iterations").unwrap().sum,
            d.sqp_iterations as f64
        );
        assert!(snap.histogram("sqp_qp_seconds").unwrap().count >= d.sqp_iterations);
    }

    #[test]
    fn flight_recorder_captures_decisions_without_perturbing() {
        use ev_telemetry::FlightRecord;
        let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
        let recorder = FlightRecorder::enabled(64);
        let mk = |rec: Option<&FlightRecorder>| {
            let b = MpcController::builder(hvac.clone(), HvacLimits::default())
                .horizon(6)
                .recompute_every(2);
            let b = match rec {
                Some(r) => b.flight_recorder(r),
                None => b,
            };
            b.build().unwrap()
        };
        let mut plain = mk(None);
        let mut recorded = mk(Some(&recorder));
        let preview = preview_const(8_000.0, 35.0, 24);
        for step in 0..6 {
            let context = ctx(26.0 - 0.1 * step as f64, 35.0, &preview);
            let a = plain.control(&context);
            let b = recorded.control(&context);
            assert_eq!(a, b, "recording must not perturb the command");
        }
        // Including the rollout-cache counters the capture path must not
        // touch (it re-rolls outside the cache).
        assert_eq!(plain.diagnostics(), recorded.diagnostics());

        let records = recorder.records();
        let decisions: Vec<&DecisionRecord> = records
            .iter()
            .filter_map(|r| match r {
                FlightRecord::Decision(d) => Some(d.as_ref()),
                _ => None,
            })
            .collect();
        assert_eq!(decisions.len(), 3, "6 steps at recompute_every=2");
        let first = decisions[0];
        assert_eq!(first.warm_start, WarmStart::Cold);
        assert_eq!(first.step, 0);
        assert_eq!(first.outcome, SolveOutcome::Converged);
        assert_eq!(first.motor_preview_w.len(), 6);
        assert!(first.motor_preview_w.iter().all(|&p| p == 8_000.0));
        assert_eq!(first.plan.len(), 6);
        assert_eq!(first.constraint_rows, INEQ_PER_STEP);
        assert_eq!(first.active_masks.len(), 6);
        // Later solves warm-start from the shifted previous plan.
        assert!(decisions[1..]
            .iter()
            .all(|d| matches!(d.warm_start, WarmStart::Shifted { .. })));
        assert_eq!(decisions[1].step, 2);

        // Attribution is internally consistent: shares sum to totals and
        // the planned schedule actually spends HVAC power (hot cabin).
        let a = first.attribution.expect("converged solve has attribution");
        assert!((a.battery_energy_wh - (a.motor_energy_wh + a.hvac_energy_wh)).abs() < 1e-9);
        assert!(
            (a.soc_drop_total_pct - (a.soc_drop_motor_pct + a.soc_drop_hvac_pct)).abs() < 1e-12
        );
        assert!(a.hvac_energy_wh > 0.0, "cooling a 26 °C cabin costs energy");
        assert!(a.soc_drop_hvac_pct > 0.0);
        assert!(a.soc_drop_motor_pct > 0.0);
        assert!(a.eff_charge_total_as > 0.0);
        assert!(a.cost_comfort > 0.0);
        // The plan's first step matches the command the controller gave
        // (before limit clamping the decoded values coincide here).
        assert!(first.plan[0].hvac_power_w > 0.0);
    }

    #[test]
    fn forced_iteration_cap_records_max_iter_and_auto_dumps() {
        let dir = std::env::temp_dir().join(format!(
            "ev-mpc-autodump-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let dump = dir.join("nested").join("postmortem.jsonl");
        let recorder = FlightRecorder::enabled(32).with_auto_dump(&dump);
        let mut c = MpcController::builder(
            Hvac::new(CabinParams::default(), HvacParams::default()),
            HvacLimits::default(),
        )
        .horizon(6)
        .recompute_every(1)
        .max_sqp_iterations(1)
        .flight_recorder(&recorder)
        .build()
        .unwrap();
        let preview = preview_const(10_000.0, 35.0, 24);
        let context = ctx(26.5, 35.0, &preview);
        let input = c.control(&context);
        // The capped solve still yields a usable (clamped) input...
        assert!(input.mz.value() > 0.0);
        // ...but reports MaxIterations and dumps the post-mortem, creating
        // the missing parent directories on the way.
        assert_eq!(c.diagnostics().max_iterations, 1);
        let text = std::fs::read_to_string(&dump).expect("auto-dump written");
        assert!(text.contains("\"kind\":\"meta\""));
        assert!(text.contains("mpc solve max_iterations at step 0"));
        assert!(text.contains("\"outcome\":\"max_iterations\""));
        assert!(recorder.last_dump_error().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn solver_error_records_error_decision() {
        let recorder = FlightRecorder::enabled(16);
        let mut c = MpcController::builder(
            Hvac::new(CabinParams::default(), HvacParams::default()),
            HvacLimits::default(),
        )
        .horizon(6)
        .recompute_every(1)
        .flight_recorder(&recorder)
        .build()
        .unwrap();
        let preview = preview_const(5_000.0, 30.0, 24);
        // Healthy solve first so the error path can fall back to the
        // cached input instead of clamping an idle input at a NaN state.
        c.control(&ctx(25.0, 30.0, &preview));
        c.control(&ctx(f64::NAN, 30.0, &preview));
        let records = recorder.records();
        let d = records
            .iter()
            .rev()
            .find_map(|r| match r {
                ev_telemetry::FlightRecord::Decision(d) => Some(d.as_ref()),
                _ => None,
            })
            .expect("decision recorded");
        assert_eq!(d.outcome, SolveOutcome::Error);
        assert!(d.plan.is_empty());
        assert!(d.attribution.is_none());
        assert!(d.objective.is_nan());
    }

    #[test]
    fn solver_failure_invalidates_warm_start() {
        let mut c = mpc();
        let preview = preview_const(5_000.0, 30.0, 24);
        let good = ctx(25.0, 30.0, &preview);
        c.control(&good);
        assert!(c.warm_start.is_some(), "successful solve stores a plan");
        // A non-finite cabin state makes the objective non-finite at z0,
        // which the solver rejects outright. The stale plan must go with
        // it — re-shifting it on later solves would anchor the warm start
        // ever further in the past.
        let bad = ctx(f64::NAN, 30.0, &preview);
        c.control(&bad);
        assert!(c.warm_start.is_none(), "failed solve must drop the plan");
        // And the controller recovers on the next healthy context.
        let input = c.control(&good);
        assert!(input.mz.value() > 0.0);
        assert!(c.warm_start.is_some());
    }
}
