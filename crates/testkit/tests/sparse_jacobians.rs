//! Property tests pinning the MPC's sparse constraint Jacobians to their
//! dense references.
//!
//! The SQP's structure-exploiting path consumes Jacobians in CSR form
//! (`NlpProblem::ineq_jacobian_sparse_into` /
//! `eq_jacobian_sparse_into`) and routes the resulting QP through the
//! block-banded KKT backend. Three things must hold or the banded solve
//! quietly optimizes a different problem:
//!
//! 1. The condensed transcription's sparse inequality Jacobian must equal
//!    its dense analytic Jacobian — same derivation, two emission paths.
//! 2. The multiple-shooting transcription's sparse Jacobians (its only
//!    analytic form) must match central differences of the constraint
//!    functions.
//! 3. Every sparse row must respect the one-step-lookback locality the
//!    NLP declares via `qp_structure()` — that declaration is what lets
//!    the QP solver pick the banded factorization, so an out-of-block
//!    entry would be silently dropped from the KKT matrix.

use ev_control::{ControlContext, MpcController, PreviewSample};
use ev_hvac::{CabinParams, Hvac, HvacLimits, HvacState};
use ev_linalg::SparseMatrix;
use ev_optim::NlpProblem;
use ev_units::{Celsius, Percent, Seconds, Watts};
use proptest::prelude::*;

const HORIZON: usize = 6;
const INEQ_PER_STEP: usize = 13;
/// The C4 row (`tc − tm`), used to recover `tm` from constraint values.
const C4_ROW: usize = 5;
/// The coil floor of the default HVAC parameters (°C); central
/// differences straddle the `min(min_coil, tm)` kink, so samples near it
/// are rejected rather than asserted on.
const MIN_COIL_C: f64 = 4.0;

fn controller(multiple_shooting: bool) -> MpcController {
    MpcController::builder(
        Hvac::new(CabinParams::default(), ev_hvac::HvacParams::default()),
        HvacLimits::default(),
    )
    .horizon(HORIZON)
    .prediction_dt(Seconds::new(4.0))
    .recompute_every(1)
    .multiple_shooting(multiple_shooting)
    .build()
    .expect("valid mpc config")
}

fn preview(motor_kw: f64, to: f64) -> Vec<PreviewSample> {
    (0..HORIZON * 4)
        .map(|i| PreviewSample {
            motor_power: Watts::new(motor_kw * 1000.0 * (1.0 + 0.5 * ((i % 5) as f64 - 2.0) / 2.0)),
            ambient: Celsius::new(to),
            solar: Watts::new(350.0),
        })
        .collect()
}

fn ctx_at<'a>(tz: f64, to: f64, soc: f64, samples: &'a [PreviewSample]) -> ControlContext<'a> {
    ControlContext {
        state: HvacState::new(Celsius::new(tz)),
        ambient: Celsius::new(to),
        solar: Watts::new(350.0),
        soc: Percent::new(soc),
        soc_avg: soc + 1.5,
        dt: Seconds::new(1.0),
        elapsed: Seconds::ZERO,
        preview: samples,
    }
}

/// Finite-difference comparison: `|analytic − fd| ≤ 1e-5·max(|fd|, 1)`.
fn close_fd(analytic: f64, fd: f64) -> bool {
    (analytic - fd).abs() <= 1e-5 * fd.abs().max(1.0)
}

/// Analytic-vs-analytic comparison: two emissions of the same derivation
/// may differ only by roundoff ordering.
fn close_exact(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * b.abs().max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Condensed transcription: the CSR inequality Jacobian and the dense
    /// analytic one are the same derivation emitted two ways, so they
    /// must agree to roundoff at arbitrary (even infeasible) iterates —
    /// both sides branch identically at the same `z`, so no kink
    /// rejection is needed.
    #[test]
    fn condensed_sparse_ineq_jacobian_matches_dense(
        tz in 12.0f64..40.0,
        to in -15.0f64..45.0,
        soc in 25.0f64..95.0,
        motor_kw in 0.0f64..60.0,
        steps in proptest::collection::vec(
            (1.0f64..4.5, 0.8f64..4.2, 0.0f64..0.7, 0.3f64..2.4),
            HORIZON,
        ),
    ) {
        let c = controller(false);
        let samples = preview(motor_kw, to);
        let context = ctx_at(tz, to, soc, &samples);
        let nlp = c.nlp(&context);

        let mut z = Vec::with_capacity(HORIZON * 4);
        for &(ts, tc, dr, mz) in &steps {
            z.extend_from_slice(&[ts, tc, dr, mz]);
        }

        let dense = nlp.ineq_jacobian(&z);
        let mut sparse = SparseMatrix::new();
        prop_assert!(nlp.ineq_jacobian_sparse_into(&z, &mut sparse));
        prop_assert_eq!(sparse.rows(), nlp.num_ineq());
        for r in 0..sparse.rows() {
            let from_sparse = sparse.to_dense();
            for col in 0..nlp.num_vars() {
                prop_assert!(
                    close_exact(from_sparse.get(r, col), dense.get(r, col)),
                    "row {} col {}: sparse {} vs dense {}",
                    r, col, from_sparse.get(r, col), dense.get(r, col)
                );
            }
        }
    }

    /// Multiple-shooting transcription: its sparse Jacobians are its only
    /// analytic form, so they are checked against central differences,
    /// and every row must stay inside the one-step-lookback block
    /// pattern declared through `qp_structure()`.
    #[test]
    fn multiple_shooting_sparse_jacobians_match_central_difference(
        tz in 12.0f64..40.0,
        to in -15.0f64..45.0,
        soc in 25.0f64..95.0,
        motor_kw in 0.0f64..60.0,
        steps in proptest::collection::vec(
            (1.0f64..4.5, 0.8f64..4.2, 0.0f64..0.7, 0.3f64..2.4, 1.2f64..4.0),
            HORIZON,
        ),
    ) {
        let c = controller(true);
        let samples = preview(motor_kw, to);
        let context = ctx_at(tz, to, soc, &samples);
        let outcome = c.with_active_nlp(&context, |nlp| {
            let st = nlp.qp_structure().expect("multiple shooting declares structure");
            let vb = st.vars_per_block;
            let n = nlp.num_vars();
            let m = nlp.num_ineq();
            let me = nlp.num_eq();
            assert_eq!(n, HORIZON * vb);
            assert_eq!(me, HORIZON * st.eq_per_block);

            let mut z = Vec::with_capacity(n);
            for &(ts, tc, dr, mz, tzv) in &steps {
                z.extend_from_slice(&[ts, tc, dr, mz, tzv]);
            }

            // Reject samples near the coil-floor kink (recovered from the
            // C4 row, `tc − tm`).
            let mut cons = vec![0.0; m];
            nlp.ineq_constraints(&z, &mut cons);
            for k in 0..HORIZON {
                let tc_phys = z[k * vb + 1] * 10.0;
                let tm = tc_phys - cons[k * INEQ_PER_STEP + C4_ROW];
                if (tm - MIN_COIL_C).abs() <= 0.05 {
                    return None;
                }
            }

            let mut sparse_in = SparseMatrix::new();
            assert!(nlp.ineq_jacobian_sparse_into(&z, &mut sparse_in));
            let mut sparse_eq = SparseMatrix::new();
            assert!(nlp.eq_jacobian_sparse_into(&z, &mut sparse_eq));

            // Locality: row r of step k may only touch blocks k−lookback..=k.
            for (sparse, rows_per_step, what) in [
                (&sparse_in, INEQ_PER_STEP, "ineq"),
                (&sparse_eq, st.eq_per_block, "eq"),
            ] {
                for r in 0..sparse.rows() {
                    let k = r / rows_per_step;
                    let lo = k.saturating_sub(st.lookback) * vb;
                    let hi = (k + 1) * vb;
                    let (cols, _) = sparse.row(r);
                    for &col in cols {
                        assert!(
                            (lo..hi).contains(&col),
                            "{what} row {r} (step {k}) touches column {col} outside \
                             the declared lookback-{} block range {lo}..{hi}",
                            st.lookback
                        );
                    }
                }
            }

            let fd_in = ev_optim::finite_diff::jacobian(
                &|p: &[f64], out: &mut [f64]| nlp.ineq_constraints(p, out),
                &z,
                m,
            );
            let fd_eq = ev_optim::finite_diff::jacobian(
                &|p: &[f64], out: &mut [f64]| nlp.eq_constraints(p, out),
                &z,
                me,
            );
            let dense_in = sparse_in.to_dense();
            let dense_eq = sparse_eq.to_dense();
            Some((dense_in, dense_eq, fd_in, fd_eq, n))
        });
        let Some((dense_in, dense_eq, fd_in, fd_eq, n)) = outcome else {
            // Near-kink sample: skip rather than assert across the branch.
            return Ok(());
        };
        for (r, fd_row) in fd_in.iter().enumerate() {
            for (col, &fd) in fd_row.iter().enumerate().take(n) {
                prop_assert!(
                    close_fd(dense_in.get(r, col), fd),
                    "ineq[{},{}]: sparse-analytic {} vs central-difference {}",
                    r, col, dense_in.get(r, col), fd
                );
            }
        }
        for (r, fd_row) in fd_eq.iter().enumerate() {
            for (col, &fd) in fd_row.iter().enumerate().take(n) {
                prop_assert!(
                    close_fd(dense_eq.get(r, col), fd),
                    "eq[{},{}]: sparse-analytic {} vs central-difference {}",
                    r, col, dense_eq.get(r, col), fd
                );
            }
        }
    }
}
