* Redundant inequalities: the active constraint appears three times at
* different scalings, so the optimal multipliers are non-unique.
* min (x-2)^2 + (y-2)^2 s.t. x + y <= 2 (x3 scalings), x, y >= 0.
* Optimum (1, 1), f* = 2.
NAME QPREDUND
ROWS
 N OBJ
 L R1
 L R2
 L R3
COLUMNS
 X OBJ -4.0 R1 1.0
 X R2 2.0 R3 0.5
 Y OBJ -4.0 R1 1.0
 Y R2 2.0 R3 0.5
RHS
 RHS R1 2.0 R2 4.0
 RHS R3 1.0 OBJ -8.0
QUADOBJ
 X X 2.0
 Y Y 2.0
ENDATA
