//! Battery lifetime-aware automotive climate control: the integrated EV
//! model, co-simulation engine and experiment harness.
//!
//! This crate ties the substrates together into the system the DAC 2015
//! paper evaluates:
//!
//! * [`EvParams`] — one parameter set covering the vehicle
//!   ([`ev_powertrain`]), cabin/HVAC ([`ev_hvac`]), battery
//!   ([`ev_battery`]) and accessories;
//! * [`ElectricVehicle`] — the physical plant (power train + HVAC +
//!   battery behind a BMS);
//! * [`Simulation`] — the fixed-step co-simulation loop of the paper's
//!   Algorithm 1: precompute the motor-power vector from the drive
//!   profile, then alternate controller and plant once per sample period;
//! * [`SimulationResult`] / [`Metrics`] — time series and the paper's
//!   figures of merit (ΔSoH, average HVAC power, SoC statistics, comfort);
//! * [`experiments`] — one function per table/figure of the paper's
//!   Section IV, used by the `repro` binary and the Criterion benches.
//!
//! # Examples
//!
//! ```no_run
//! use ev_core::{ControllerKind, EvParams, Simulation};
//! use ev_drive::{AmbientConditions, DriveCycle, DriveProfile};
//! use ev_units::{Celsius, Seconds};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = EvParams::nissan_leaf_like();
//! let profile = DriveProfile::from_cycle(
//!     &DriveCycle::ece_eudc(),
//!     AmbientConditions::constant(Celsius::new(35.0)),
//!     Seconds::new(1.0),
//! );
//! let sim = Simulation::new(params.clone(), profile)?;
//! let mut controller = ControllerKind::Mpc.instantiate(&params)?;
//! let result = sim.run(controller.as_mut())?;
//! println!("ΔSoH = {:.3} m%", result.metrics().delta_soh_milli_percent);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fleet;
mod flight;
pub mod observe;
mod params;
mod result;
mod sim;
mod telemetry;
mod vehicle;

pub use flight::FlightRecorderObserver;
pub use observe::{
    ChannelStats, ControllerMode, ModeCounts, NoopObserver, StatsObserver, StepObserver,
    StepRecord, TraceRecorder, TraceWriter,
};
pub use params::{ControllerKind, ControllerSetup, EvParams};
pub use result::{Metrics, SimulationResult, TimeSeries};
pub use sim::{SimError, SimSession, Simulation};
pub use telemetry::TelemetryObserver;
pub use vehicle::{ElectricVehicle, PlantStep};
