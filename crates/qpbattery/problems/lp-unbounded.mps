* Unbounded below: min -x with only the default x >= 0 bound; the
* objective decreases without limit along the feasible ray x -> inf.
NAME LPUNBOUND
ROWS
 N OBJ
COLUMNS
 X OBJ -1.0
RHS
ENDATA
