//! Solver proving ground for the `ev-optim` SQP/interior-point stack.
//!
//! The paper's controller leans entirely on one numerical engine — the
//! convex-QP interior-point solver inside the SQP loop — so this crate
//! exists to pressure-test that engine against problems *other people
//! wrote*, not just the fixtures that grew alongside the solver:
//!
//! * [`mps`] — a reader/writer for the MPS/QPS interchange format
//!   (fixed and free layout, `RANGES`/`BOUNDS` sections, `QUADOBJ`
//!   quadratic terms), lowering to [`ev_optim::QpProblem`].
//! * [`battery`] — a vendored, fully offline battery of classic small
//!   QPs and LPs (Hock–Schittkowski, Maros–Mészáros-style cases, plus
//!   hand-written degenerate/rank-deficient/infeasible instances) with
//!   reference objective values committed next to the fixtures.
//! * [`differential`] — a differential-oracle harness that solves
//!   seeded generated instances ([`ev_testkit::qpgen`]) through every
//!   factorization backend (dense LU, dense Cholesky, banded LDLᵀ) and
//!   cross-checks primal solutions, KKT residuals, and declared vs
//!   measured bandwidth, dumping an MPS reproducer on disagreement.
//!
//! The crate ships no binary: it is consumed by its own tests, by
//! `ev-optim`'s `battery` integration suite, and by the CI
//! `solver-battery` job.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod differential;
pub mod mps;

pub use battery::{BatteryCase, Expected, CASES};
pub use differential::{differential_solve, fuzz, BackendRun, DifferentialReport};
pub use mps::{parse_mps, write_mps, LoadedQp, MpsError, MpsFormat};
