//! Full discharge/charge cycle: testing the paper's constant-charge
//! assumption.
//!
//! The paper evaluates ΔSoH over the *drive* only, arguing that "the
//! charging part of the cycle is assumed to have fixed pattern and
//! duration and the effect of it on SoC_dev and SoC_avg are modeled as
//! constants" (Section II-D). With the CC-CV charger extension
//! ([`ev_battery::charge_to`]) we can close the cycle and verify that the
//! controller comparison survives: the charge half is (nearly) identical
//! across controllers, so the *ranking* is unchanged even though the
//! absolute statistics shift.

use ev_battery::{charge_to, Battery, Charger, SocStats, SohModel};
use ev_drive::DriveCycle;
use ev_units::{Percent, Seconds};

use crate::{ControllerKind, Simulation};

use super::{experiment_params, format_table, profile_at, COMPARISON_AMBIENT_C};

/// One controller's drive-only vs full-cycle ΔSoH.
#[derive(Debug, Clone, PartialEq)]
pub struct FullCycleRow {
    /// The controller.
    pub controller: ControllerKind,
    /// ΔSoH computed over the drive only, the paper's method (m%).
    pub drive_only_milli_pct: f64,
    /// ΔSoH computed over drive + CC-CV recharge (m%).
    pub full_cycle_milli_pct: f64,
    /// Wall-clock recharge duration (h).
    pub recharge_hours: f64,
}

/// Runs the full-cycle experiment: ECE_EUDC drive at the comparison
/// ambient, then a Level-2 recharge back to the starting SoC; ΔSoH from
/// the concatenated SoC trace.
///
/// # Panics
///
/// Panics only if built-in configurations fail to construct (they do
/// not).
#[must_use]
pub fn full_cycle() -> Vec<FullCycleRow> {
    let mut params = experiment_params();
    params.initial_cabin = Some(params.target);
    let profile = profile_at(&DriveCycle::ece_eudc(), COMPARISON_AMBIENT_C);
    let sim = Simulation::new(params.clone(), profile).expect("profile non-empty");
    let soh = SohModel::try_new(params.soh).expect("experiment soh params are valid");

    ControllerKind::paper_lineup()
        .into_iter()
        .map(|kind| {
            let mut controller = kind.instantiate(&params).expect("instantiates");
            let result = sim.run(controller.as_mut()).expect("runs");
            let drive_trace = result.series.soc.clone();
            let drive_only = soh.degradation(SocStats::from_trace(&drive_trace)) * 1000.0;

            // Recharge from the final drive SoC back to the initial SoC.
            let mut battery = Battery::new(params.battery.clone());
            battery.reset_soc(Percent::new(*drive_trace.last().expect("non-empty")));
            let session = charge_to(
                &mut battery,
                &Charger::level2_6kw(),
                params.battery.initial_soc,
                Seconds::new(10.0),
            );
            let mut full_trace = drive_trace;
            full_trace.extend_from_slice(&session.soc_trace);
            let full = soh.degradation(SocStats::from_trace(&full_trace)) * 1000.0;

            FullCycleRow {
                controller: kind,
                drive_only_milli_pct: drive_only,
                full_cycle_milli_pct: full,
                recharge_hours: session.duration.value() / 3600.0,
            }
        })
        .collect()
}

/// Formats the full-cycle rows.
#[must_use]
pub fn render_full_cycle(rows: &[FullCycleRow]) -> String {
    let header: Vec<String> = [
        "controller",
        "drive-only ΔSoH (m%)",
        "full-cycle ΔSoH (m%)",
        "recharge (h)",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.controller.label().to_owned(),
                format!("{:.3}", r.drive_only_milli_pct),
                format!("{:.3}", r.full_cycle_milli_pct),
                format!("{:.2}", r.recharge_hours),
            ]
        })
        .collect();
    format!(
        "Full cycle — drive + CC-CV recharge (validates the paper's constant-charge assumption)\n{}",
        format_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_ranking_survives_the_charge_half() {
        let rows = full_cycle();
        assert_eq!(rows.len(), 3);
        let get = |kind: ControllerKind| {
            rows.iter()
                .find(|r| r.controller == kind)
                .expect("present")
                .clone()
        };
        let onoff = get(ControllerKind::OnOff);
        let mpc = get(ControllerKind::Mpc);
        // The paper's drive-only ranking…
        assert!(mpc.drive_only_milli_pct < onoff.drive_only_milli_pct);
        // …survives closing the cycle with the (identical) recharge.
        assert!(
            mpc.full_cycle_milli_pct < onoff.full_cycle_milli_pct,
            "mpc {} vs onoff {}",
            mpc.full_cycle_milli_pct,
            onoff.full_cycle_milli_pct
        );
        // The recharge durations differ only by the energy each
        // controller consumed (tens of minutes at most).
        assert!((mpc.recharge_hours - onoff.recharge_hours).abs() < 1.0);
    }
}
