//! Preview-error robustness: how the MPC's advantage degrades when the
//! motor-power forecast is wrong.
//!
//! The paper assumes "the route information and the parameters of each
//! route segment … are known accurately before driving" (Section II-A).
//! Real traffic forecasts are noisy; this experiment corrupts the preview
//! with multiplicative noise and measures how gracefully the
//! lifetime-aware behavior decays toward the reactive baselines.

use ev_control::{ClimateController, ControlContext, PreviewSample};
use ev_drive::DriveCycle;
use ev_hvac::HvacInput;
use ev_units::Watts;

use crate::{ControllerKind, Simulation};

use super::{experiment_params, format_table, profile_at, COMPARISON_AMBIENT_C};

/// A controller adapter that corrupts the preview's motor-power forecast
/// with deterministic multiplicative noise before delegating.
///
/// Noise is a per-sample factor `1 + σ·u`, where `u` is a deterministic
/// pseudo-random value in [−1, 1] derived from the sample index and the
/// controller step — reproducible without threading an RNG through the
/// simulation.
pub struct NoisyPreview<C> {
    inner: C,
    sigma: f64,
    step: u64,
}

impl<C: ClimateController> NoisyPreview<C> {
    /// Wraps a controller with forecast noise of relative magnitude
    /// `sigma` (0 = exact preview).
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0`.
    #[must_use]
    pub fn new(inner: C, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "noise magnitude must be non-negative");
        Self {
            inner,
            sigma,
            step: 0,
        }
    }

    /// Deterministic pseudo-random value in [−1, 1] (splitmix64 hash).
    fn noise(&self, k: u64) -> f64 {
        let mut z = (self.step << 32)
            .wrapping_add(k)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z as f64 / u64::MAX as f64) * 2.0 - 1.0
    }
}

impl<C: ClimateController> ClimateController for NoisyPreview<C> {
    fn name(&self) -> &'static str {
        "noisy-preview"
    }

    fn control(&mut self, ctx: &ControlContext<'_>) -> HvacInput {
        self.step += 1;
        let corrupted: Vec<PreviewSample> = ctx
            .preview
            .iter()
            .enumerate()
            .map(|(k, s)| PreviewSample {
                motor_power: Watts::new(
                    s.motor_power.value() * (1.0 + self.sigma * self.noise(k as u64)),
                ),
                ..*s
            })
            .collect();
        let noisy_ctx = ControlContext {
            preview: &corrupted,
            ..ctx.clone()
        };
        self.inner.control(&noisy_ctx)
    }
}

/// One noise level's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessRow {
    /// Relative forecast-noise magnitude σ.
    pub sigma: f64,
    /// ΔSoH (milli-percent).
    pub delta_soh_milli_percent: f64,
    /// Average HVAC power (kW).
    pub avg_hvac_kw: f64,
    /// Worst comfort excursion (K).
    pub max_comfort_excursion: f64,
}

/// Sweeps forecast-noise levels for the MPC on the standard scenario.
///
/// # Panics
///
/// Panics only if built-in configurations fail to construct (they do
/// not).
#[must_use]
pub fn robustness_sweep() -> Vec<RobustnessRow> {
    let mut params = experiment_params();
    params.initial_cabin = Some(params.target);
    let profile = profile_at(&DriveCycle::ece_eudc(), COMPARISON_AMBIENT_C);
    let sim = Simulation::new(params.clone(), profile).expect("profile non-empty");
    [0.0, 0.25, 0.5, 1.0]
        .into_iter()
        .map(|sigma| {
            let inner = ControllerKind::Mpc
                .instantiate(&params)
                .expect("instantiates");
            let mut noisy = NoisyPreview::new(BoxedController(inner), sigma);
            let r = sim.run(&mut noisy).expect("runs");
            let m = r.metrics();
            RobustnessRow {
                sigma,
                delta_soh_milli_percent: m.delta_soh_milli_percent,
                avg_hvac_kw: m.avg_hvac_power.value(),
                max_comfort_excursion: m.max_comfort_excursion,
            }
        })
        .collect()
}

/// Adapter: a boxed controller as a concrete `ClimateController`.
struct BoxedController(Box<dyn ClimateController>);

impl ClimateController for BoxedController {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn control(&mut self, ctx: &ControlContext<'_>) -> HvacInput {
        self.0.control(ctx)
    }
    fn reset_session(&mut self) {
        self.0.reset_session();
    }
}

/// Formats the robustness sweep as a text table.
#[must_use]
pub fn render_robustness(rows: &[RobustnessRow]) -> String {
    let header: Vec<String> = [
        "forecast noise σ",
        "ΔSoH (m%)",
        "HVAC kW",
        "worst excursion (K)",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.sigma),
                format!("{:.3}", r.delta_soh_milli_percent),
                format!("{:.3}", r.avg_hvac_kw),
                format!("{:.2}", r.max_comfort_excursion),
            ]
        })
        .collect();
    format!(
        "Robustness — MPC under motor-power forecast noise (ECE_EUDC, 35 °C)\n{}",
        format_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_hvac::HvacState;
    use ev_units::{Celsius, Percent, Seconds};

    /// A controller that records the preview it saw.
    struct Recorder {
        seen: Vec<f64>,
    }
    impl ClimateController for Recorder {
        fn name(&self) -> &'static str {
            "recorder"
        }
        fn control(&mut self, ctx: &ControlContext<'_>) -> HvacInput {
            self.seen = ctx.preview.iter().map(|s| s.motor_power.value()).collect();
            HvacInput::idle(&ev_hvac::HvacParams::default(), ctx.state.tz)
        }
    }

    fn ctx(preview: &[PreviewSample]) -> ControlContext<'_> {
        ControlContext {
            state: HvacState::new(Celsius::new(24.0)),
            ambient: Celsius::new(30.0),
            solar: Watts::new(350.0),
            soc: Percent::new(90.0),
            soc_avg: 91.0,
            dt: Seconds::new(1.0),
            elapsed: Seconds::ZERO,
            preview,
        }
    }

    #[test]
    fn zero_sigma_passes_preview_through() {
        let preview = vec![
            PreviewSample {
                motor_power: Watts::new(10_000.0),
                ambient: Celsius::new(30.0),
                solar: Watts::new(350.0),
            };
            4
        ];
        let mut noisy = NoisyPreview::new(Recorder { seen: Vec::new() }, 0.0);
        let _ = noisy.control(&ctx(&preview));
        assert_eq!(noisy.inner.seen, vec![10_000.0; 4]);
    }

    #[test]
    fn noise_perturbs_within_bounds() {
        let preview = vec![
            PreviewSample {
                motor_power: Watts::new(10_000.0),
                ambient: Celsius::new(30.0),
                solar: Watts::new(350.0),
            };
            16
        ];
        let mut noisy = NoisyPreview::new(Recorder { seen: Vec::new() }, 0.5);
        let _ = noisy.control(&ctx(&preview));
        let mut any_changed = false;
        for &p in &noisy.inner.seen {
            assert!((5_000.0..=15_000.0).contains(&p), "out of ±50 %: {p}");
            if (p - 10_000.0).abs() > 1.0 {
                any_changed = true;
            }
        }
        assert!(any_changed, "noise must actually perturb");
    }

    #[test]
    fn noise_is_deterministic() {
        let preview = vec![
            PreviewSample {
                motor_power: Watts::new(20_000.0),
                ambient: Celsius::new(30.0),
                solar: Watts::new(350.0),
            };
            8
        ];
        let run = || {
            let mut noisy = NoisyPreview::new(Recorder { seen: Vec::new() }, 0.3);
            let _ = noisy.control(&ctx(&preview));
            noisy.inner.seen
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_sigma() {
        let _ = NoisyPreview::new(Recorder { seen: Vec::new() }, -0.1);
    }
}
