//! Sequential quadratic programming.

use ev_linalg::{vecops, Matrix, SparseMatrix};

use crate::observer::{NoopSqpObserver, QpSubproblemStatus, SqpIterationRecord, SqpObserver};
use crate::{
    NlpProblem, OptimError, QpProblem, QpSolver, QpSolverOptions, QpStructure, QpView, QpWarmStart,
};

/// A constraint Jacobian for one SQP iteration, in whichever form the
/// problem produced it. Sparse Jacobians flow straight into the QP's CSR
/// path ([`QpView::with_sparse_inequalities`]) without densification.
#[derive(Clone, Copy)]
enum JacRef<'a> {
    Dense(&'a Matrix),
    Sparse(&'a SparseMatrix),
}

impl JacRef<'_> {
    /// `out = Jᵀ·x` (overwrites `out`).
    fn matvec_transposed_into(&self, x: &[f64], out: &mut [f64]) -> Result<(), OptimError> {
        match self {
            Self::Dense(m) => {
                let v = m.matvec_transposed(x)?;
                out.copy_from_slice(&v);
            }
            Self::Sparse(s) => s.matvec_transposed(x, out)?,
        }
        Ok(())
    }
}

/// Options for the SQP solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SqpOptions {
    /// Convergence tolerance on step size and constraint violation.
    pub tolerance: f64,
    /// Maximum major (SQP) iterations.
    pub max_iterations: usize,
    /// Maximum backtracking steps per line search.
    pub max_line_search: usize,
    /// Initial L1 merit penalty.
    pub initial_penalty: f64,
    /// Options forwarded to the inner QP solver.
    pub qp: QpSolverOptions,
}

impl Default for SqpOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-6,
            max_iterations: 60,
            max_line_search: 25,
            initial_penalty: 10.0,
            qp: QpSolverOptions::default(),
        }
    }
}

/// Why the SQP loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqpStatus {
    /// Step size and constraint violation met tolerance.
    Converged,
    /// The iteration budget ran out; the best iterate found is returned.
    MaxIterations,
    /// The merit line search could not make progress; the best iterate
    /// found is returned (often already near-optimal on flat problems).
    LineSearchStalled,
}

/// Result of an SQP run.
#[derive(Debug, Clone)]
pub struct SqpResult {
    /// The final iterate.
    pub z: Vec<f64>,
    /// Objective value at `z`.
    pub objective: f64,
    /// Termination status.
    pub status: SqpStatus,
    /// Major iterations performed.
    pub iterations: usize,
    /// Maximum constraint violation at `z` (0 when unconstrained).
    pub constraint_violation: f64,
}

impl SqpResult {
    /// Returns `true` if the solver reached its convergence tolerance.
    #[must_use]
    pub fn is_converged(&self) -> bool {
        self.status == SqpStatus::Converged
    }
}

/// Sequential quadratic programming solver with damped-BFGS Hessian
/// approximation and an L1-merit backtracking line search.
///
/// Each major iteration linearizes the constraints, builds a convex QP with
/// the current Hessian approximation and solves it with [`QpSolver`]. If
/// the linearized constraints are inconsistent, the subproblem is retried
/// in *elastic mode* (slack variables with a linear penalty), which always
/// has a solution.
///
/// This is the optimizer the paper's MPC runs every control step
/// (Section III, "the best option might be to apply Sequential Quadratic
/// Programming").
///
/// # Examples
///
/// ```
/// use ev_optim::{NlpProblem, SqpSolver};
///
/// /// min (z0−2)² + z1², s.t. z0 ≤ 1.
/// struct P;
/// impl NlpProblem for P {
///     fn num_vars(&self) -> usize { 2 }
///     fn objective(&self, z: &[f64]) -> f64 { (z[0] - 2.0).powi(2) + z[1] * z[1] }
///     fn num_ineq(&self) -> usize { 1 }
///     fn ineq_constraints(&self, z: &[f64], out: &mut [f64]) { out[0] = z[0] - 1.0; }
/// }
///
/// # fn main() -> Result<(), ev_optim::OptimError> {
/// let result = SqpSolver::default().solve(&P, &[0.0, 0.5])?;
/// assert!(result.is_converged());
/// assert!((result.z[0] - 1.0).abs() < 1e-5);
/// assert!(result.z[1].abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct SqpSolver {
    options: SqpOptions,
}

impl SqpSolver {
    /// Creates a solver with the given options.
    #[must_use]
    pub fn new(options: SqpOptions) -> Self {
        Self { options }
    }

    /// Borrows the solver options.
    #[must_use]
    pub fn options(&self) -> &SqpOptions {
        &self.options
    }

    /// Solves the nonlinear program starting from `z0`.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::DimensionMismatch`] if `z0.len()` does not
    /// match the problem, [`OptimError::NonFiniteData`] if the objective or
    /// constraints return non-finite values at `z0`, and propagates
    /// structural QP failures.
    pub fn solve<P: NlpProblem + ?Sized>(
        &self,
        problem: &P,
        z0: &[f64],
    ) -> Result<SqpResult, OptimError> {
        self.solve_observed(problem, z0, NoopSqpObserver)
    }

    /// Solves the nonlinear program starting from `z0`, reporting one
    /// [`SqpIterationRecord`] per major iteration to `observer`.
    ///
    /// Observation is read-only: the iterate path is bit-identical to
    /// [`SqpSolver::solve`]. When [`SqpObserver::active`] is `false`
    /// (as for [`NoopSqpObserver`]) no record is assembled and no clock
    /// is read, so the hook costs nothing.
    ///
    /// # Errors
    ///
    /// Same contract as [`SqpSolver::solve`].
    pub fn solve_observed<P: NlpProblem + ?Sized, O: SqpObserver>(
        &self,
        problem: &P,
        z0: &[f64],
        observer: O,
    ) -> Result<SqpResult, OptimError> {
        self.solve_inner(problem, z0, None, observer)
    }

    /// Solves the nonlinear program like [`SqpSolver::solve_observed`],
    /// additionally restarting every QP subproblem's interior-point method
    /// from the multipliers cached in `warm` (see
    /// [`QpSolver::solve_view_warm`]).
    ///
    /// A receding-horizon caller keeps the [`QpWarmStart`] alive across
    /// control steps: consecutive subproblems share their active set, so
    /// the cached multipliers typically cut the interior-point iteration
    /// count by more than half. The cache changes only the QP's starting
    /// point, never its convergence tolerance — but because the iterate
    /// *path* differs from a cold solve, callers that pin bit-exact
    /// trajectories should use [`SqpSolver::solve_observed`] instead.
    ///
    /// # Errors
    ///
    /// Same contract as [`SqpSolver::solve`].
    pub fn solve_cached<P: NlpProblem + ?Sized, O: SqpObserver>(
        &self,
        problem: &P,
        z0: &[f64],
        warm: &mut QpWarmStart,
        observer: O,
    ) -> Result<SqpResult, OptimError> {
        self.solve_inner(problem, z0, Some(warm), observer)
    }

    fn solve_inner<P: NlpProblem + ?Sized, O: SqpObserver>(
        &self,
        problem: &P,
        z0: &[f64],
        mut qp_warm: Option<&mut QpWarmStart>,
        mut observer: O,
    ) -> Result<SqpResult, OptimError> {
        let observing = observer.active();
        let n = problem.num_vars();
        if z0.len() != n {
            return Err(OptimError::DimensionMismatch {
                what: "z0 vs problem",
            });
        }
        let me = problem.num_eq();
        let mi = problem.num_ineq();
        let opts = &self.options;
        let qp_solver = QpSolver::new(opts.qp);

        let mut z = z0.to_vec();
        let mut f = problem.objective(&z);
        if !f.is_finite() {
            return Err(OptimError::NonFiniteData);
        }
        let mut grad = vec![0.0; n];
        problem.gradient(&z, &mut grad);
        let mut c_eq = vec![0.0; me];
        let mut c_in = vec![0.0; mi];
        problem.eq_constraints(&z, &mut c_eq);
        problem.ineq_constraints(&z, &mut c_in);
        if c_eq.iter().chain(&c_in).any(|v| !v.is_finite()) || grad.iter().any(|v| !v.is_finite()) {
            return Err(OptimError::NonFiniteData);
        }

        let mut b = Matrix::identity(n);
        let mut penalty = opts.initial_penalty;
        let mut best = (z.clone(), f, violation(&c_eq, &c_in));
        let mut merit_window: Vec<f64> = Vec::with_capacity(5);

        // Workspace buffers reused across major iterations and every
        // line-search trial: the hot loop below performs no allocations of
        // its own (the QP subproblem borrows `b`/`grad`/Jacobians through
        // a [`QpView`] instead of cloning them).
        let mut z_trial = vec![0.0; n];
        let mut c_eq_trial = vec![0.0; me];
        let mut c_in_trial = vec![0.0; mi];
        let mut trial_d = vec![0.0; n];
        let mut grad_new = vec![0.0; n];
        let mut gl_old = vec![0.0; n];
        let mut gl_new = vec![0.0; n];
        let mut step_s = vec![0.0; n];
        let mut yv = vec![0.0; n];
        let mut neg_c_eq = vec![0.0; me];
        let mut neg_c_in = vec![0.0; mi];
        let mut jt_buf = vec![0.0; n];
        // CSR workspaces refilled in place each iteration when the problem
        // produces sparse Jacobians (`*_new` hold the trial-point Jacobians
        // for the Lagrangian BFGS update).
        let mut j_eq_s = SparseMatrix::new();
        let mut j_in_s = SparseMatrix::new();
        let mut j_eq_s_new = SparseMatrix::new();
        let mut j_in_s_new = SparseMatrix::new();
        let structure = problem.qp_structure();

        for iter in 0..opts.max_iterations {
            let j_eq_dense;
            let j_eq = if me > 0 && problem.eq_jacobian_sparse_into(&z, &mut j_eq_s) {
                JacRef::Sparse(&j_eq_s)
            } else {
                j_eq_dense = problem.eq_jacobian(&z);
                JacRef::Dense(&j_eq_dense)
            };
            let j_in_dense;
            let j_in = if mi > 0 && problem.ineq_jacobian_sparse_into(&z, &mut j_in_s) {
                JacRef::Sparse(&j_in_s)
            } else {
                j_in_dense = problem.ineq_jacobian(&z);
                JacRef::Dense(&j_in_dense)
            };

            // QP subproblem in the step d (right-hand sides are the
            // negated constraint values).
            for (o, v) in neg_c_eq.iter_mut().zip(&c_eq) {
                *o = -v;
            }
            for (o, v) in neg_c_in.iter_mut().zip(&c_in) {
                *o = -v;
            }
            let qp_t0 = if observing {
                Some(std::time::Instant::now())
            } else {
                None
            };
            let (d, mult_eq, mult_in, qp_status, qp_iterations) = match self.solve_subproblem(
                &qp_solver,
                &b,
                &grad,
                j_eq,
                &c_eq,
                &neg_c_eq,
                j_in,
                &c_in,
                &neg_c_in,
                penalty,
                structure,
                qp_warm.as_deref_mut(),
            ) {
                Ok((d, y_eq, lambda_in, status, qp_iters)) => {
                    let mult = vecops::norm_inf(&y_eq).max(vecops::norm_inf(&lambda_in));
                    penalty = penalty.max(1.5 * mult + 1.0);
                    (d, y_eq, lambda_in, status, qp_iters)
                }
                Err(_) => {
                    // The subproblem failed numerically (singular KKT from
                    // a degenerate constraint Jacobian, or an elastic
                    // breakdown): take a plain gradient-descent fallback
                    // step rather than aborting — a degenerate linearization
                    // is a problem state, not a structural error.
                    let d = vecops::scale(-1.0 / (1.0 + vecops::norm2(&grad)), &grad);
                    (
                        d,
                        vec![0.0; me],
                        vec![0.0; mi],
                        QpSubproblemStatus::GradientFallback,
                        0,
                    )
                }
            };
            let qp_seconds = qp_t0.map_or(0.0, |t| t.elapsed().as_secs_f64());

            let viol = violation(&c_eq, &c_in);
            let step_small = vecops::norm_inf(&d) <= opts.tolerance * (1.0 + vecops::norm_inf(&z));
            if step_small && viol <= opts.tolerance {
                if observing {
                    let active_set = if observer.wants_active_set() {
                        active_set_indices(&mult_in)
                    } else {
                        Vec::new()
                    };
                    observer.on_iteration(&SqpIterationRecord {
                        iteration: iter,
                        objective: f,
                        merit: f + penalty * viol,
                        constraint_violation: viol,
                        kkt_residual: kkt_residual(&grad, j_eq, &mult_eq, j_in, &mult_in),
                        step_norm: vecops::norm_inf(&d),
                        step_length: 0.0,
                        accepted: true,
                        line_search_steps: 0,
                        qp_status,
                        qp_iterations,
                        qp_seconds,
                        active_set_size: active_set_size(&mult_in),
                        active_set,
                    });
                }
                return Ok(SqpResult {
                    objective: f,
                    constraint_violation: viol,
                    z,
                    status: SqpStatus::Converged,
                    iterations: iter,
                });
            }

            // L1-merit backtracking line search with a second-order
            // correction (Maratos remedy) tried after the first rejection
            // of the full step, and a mild non-monotone (watchdog)
            // acceptance window.
            let merit0 = f + penalty * viol;
            merit_window.push(merit0);
            if merit_window.len() > 4 {
                merit_window.remove(0);
            }
            let merit_ref = merit_window.iter().copied().fold(merit0, f64::max);
            // Directional derivative estimate of the merit function.
            let ddir = vecops::dot(&grad, &d) - penalty * viol;
            let mut alpha = 1.0;
            let mut accepted = false;
            let mut soc_tried = false;
            let mut f_new = f;
            let mut line_search_steps = 0usize;
            trial_d.copy_from_slice(&d);
            for _ in 0..opts.max_line_search {
                line_search_steps += 1;
                z_trial.copy_from_slice(&z);
                vecops::axpy(alpha, &trial_d, &mut z_trial);
                f_new = problem.objective(&z_trial);
                problem.eq_constraints(&z_trial, &mut c_eq_trial);
                problem.ineq_constraints(&z_trial, &mut c_in_trial);
                if f_new.is_finite() {
                    let merit_new = f_new + penalty * violation(&c_eq_trial, &c_in_trial);
                    if merit_new <= merit_ref + 1e-4 * alpha * ddir.min(0.0)
                        || merit_new < merit0 - 1e-12 * merit0.abs()
                    {
                        accepted = true;
                        break;
                    }
                    if !soc_tried && alpha == 1.0 && me > 0 {
                        // Second-order correction: shift the step to cancel
                        // the constraint curvature revealed at z + d
                        // (trial_d still equals d on this first trial).
                        soc_tried = true;
                        if let Some(correction) = second_order_correction(j_eq, &c_eq_trial) {
                            vecops::axpy(1.0, &correction, &mut trial_d);
                            continue; // retry at alpha = 1 with the SOC step
                        }
                    }
                    // Fall back to the plain step when backtracking.
                    trial_d.copy_from_slice(&d);
                }
                alpha *= 0.5;
            }
            if std::env::var("SQP_DEBUG").is_ok() {
                eprintln!("it={iter} z={z:?} f={f:.4} viol={viol:.4} pen={penalty:.2} d={d:?} ddir={ddir:.4} accepted={accepted} alpha={alpha:.4}");
            }
            if observing {
                let active_set = if observer.wants_active_set() {
                    active_set_indices(&mult_in)
                } else {
                    Vec::new()
                };
                observer.on_iteration(&SqpIterationRecord {
                    iteration: iter,
                    objective: f,
                    merit: merit0,
                    constraint_violation: viol,
                    kkt_residual: kkt_residual(&grad, j_eq, &mult_eq, j_in, &mult_in),
                    step_norm: vecops::norm_inf(&d),
                    step_length: if accepted { alpha } else { 0.0 },
                    accepted,
                    line_search_steps,
                    qp_status,
                    qp_iterations,
                    qp_seconds,
                    active_set_size: active_set_size(&mult_in),
                    active_set,
                });
            }
            if !accepted {
                let (bz, bf, bv) = best;
                return Ok(SqpResult {
                    z: bz,
                    objective: bf,
                    status: SqpStatus::LineSearchStalled,
                    iterations: iter,
                    constraint_violation: bv,
                });
            }

            // Damped BFGS update on the *Lagrangian* gradient difference
            // (the objective alone carries no curvature information when it
            // is linear; the multipliers supply the constraint curvature).
            problem.gradient(&z_trial, &mut grad_new);
            for i in 0..n {
                step_s[i] = z_trial[i] - z[i];
            }
            gl_old.copy_from_slice(&grad);
            gl_new.copy_from_slice(&grad_new);
            if me > 0 {
                j_eq.matvec_transposed_into(&mult_eq, &mut jt_buf)?;
                vecops::axpy(1.0, &jt_buf, &mut gl_old);
                let j_eq_new_dense;
                let j_eq_new = if problem.eq_jacobian_sparse_into(&z_trial, &mut j_eq_s_new) {
                    JacRef::Sparse(&j_eq_s_new)
                } else {
                    j_eq_new_dense = problem.eq_jacobian(&z_trial);
                    JacRef::Dense(&j_eq_new_dense)
                };
                j_eq_new.matvec_transposed_into(&mult_eq, &mut jt_buf)?;
                vecops::axpy(1.0, &jt_buf, &mut gl_new);
            }
            if mi > 0 {
                j_in.matvec_transposed_into(&mult_in, &mut jt_buf)?;
                vecops::axpy(1.0, &jt_buf, &mut gl_old);
                let j_in_new_dense;
                let j_in_new = if problem.ineq_jacobian_sparse_into(&z_trial, &mut j_in_s_new) {
                    JacRef::Sparse(&j_in_s_new)
                } else {
                    j_in_new_dense = problem.ineq_jacobian(&z_trial);
                    JacRef::Dense(&j_in_new_dense)
                };
                j_in_new.matvec_transposed_into(&mult_in, &mut jt_buf)?;
                vecops::axpy(1.0, &jt_buf, &mut gl_new);
            }
            for i in 0..n {
                yv[i] = gl_new[i] - gl_old[i];
            }
            match structure {
                // A declared horizon structure promises the QP a
                // block-diagonal Hessian: update each variable block
                // independently so BFGS fill-in never couples blocks and
                // the banded KKT assembly stays exact.
                Some(st) if st.vars_per_block > 0 && n.is_multiple_of(st.vars_per_block) => {
                    let vb = st.vars_per_block;
                    for k in 0..n / vb {
                        let r = k * vb..(k + 1) * vb;
                        bfgs_update_block(&mut b, &step_s[r.clone()], &yv[r.clone()], r.start);
                    }
                }
                _ => bfgs_update(&mut b, &step_s, &yv),
            }

            // Adopt the accepted trial point by swapping buffers; the
            // trial buffers are fully overwritten on the next use.
            std::mem::swap(&mut z, &mut z_trial);
            f = f_new;
            std::mem::swap(&mut grad, &mut grad_new);
            std::mem::swap(&mut c_eq, &mut c_eq_trial);
            std::mem::swap(&mut c_in, &mut c_in_trial);
            let v = violation(&c_eq, &c_in);
            if v < best.2 || (v <= best.2 + opts.tolerance && f < best.1) {
                best.0.copy_from_slice(&z);
                best.1 = f;
                best.2 = v;
            }
        }

        let (bz, bf, bv) = best;
        Ok(SqpResult {
            z: bz,
            objective: bf,
            status: SqpStatus::MaxIterations,
            iterations: opts.max_iterations,
            constraint_violation: bv,
        })
    }

    /// Builds and solves one QP subproblem; returns the step, the
    /// equality/inequality multipliers (used for penalty updates and the
    /// Lagrangian BFGS update), which path solved it, and the inner QP
    /// iteration count. The nominal path borrows all problem data
    /// through a [`QpView`] (no clones) and declares the problem's
    /// horizon structure so the QP can pick the banded KKT backend. A
    /// numerically failed nominal solve (singular KKT mid-IPM) is first
    /// retried with heavily boosted Hessian regularization — a degenerate
    /// active-set guess usually just needs a better-conditioned system —
    /// before falling back to elastic mode, which builds its own
    /// enlarged (dense) problem.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn solve_subproblem(
        &self,
        qp_solver: &QpSolver,
        b: &Matrix,
        grad: &[f64],
        j_eq: JacRef<'_>,
        c_eq: &[f64],
        neg_c_eq: &[f64],
        j_in: JacRef<'_>,
        c_in: &[f64],
        neg_c_in: &[f64],
        penalty: f64,
        structure: Option<QpStructure>,
        mut qp_warm: Option<&mut QpWarmStart>,
    ) -> Result<(Vec<f64>, Vec<f64>, Vec<f64>, QpSubproblemStatus, usize), OptimError> {
        let n = grad.len();
        let me = c_eq.len();
        let mi = c_in.len();

        let mut qp = QpView::new(b, grad)?;
        if me > 0 {
            qp = match j_eq {
                JacRef::Dense(m) => qp.with_equalities(m, neg_c_eq)?,
                JacRef::Sparse(s) => qp.with_sparse_equalities(s, neg_c_eq)?,
            };
        }
        if mi > 0 {
            qp = match j_in {
                JacRef::Dense(m) => qp.with_inequalities(m, neg_c_in)?,
                JacRef::Sparse(s) => qp.with_sparse_inequalities(s, neg_c_in)?,
            };
        }
        if let Some(st) = structure {
            qp = qp.with_structure(st);
        }
        let origin = vec![0.0; n];
        let first = match match qp_warm.as_deref_mut() {
            Some(w) => qp_solver.solve_view_warm(&qp, &origin, w),
            None => qp_solver.solve_view(&qp),
        } {
            Ok(sol) => {
                return Ok((
                    sol.z,
                    sol.y_eq,
                    sol.lambda_in,
                    QpSubproblemStatus::Nominal,
                    sol.iterations,
                ))
            }
            Err(
                e @ (OptimError::QpMaxIterations { .. }
                | OptimError::QpInfeasible { .. }
                | OptimError::QpUnbounded { .. }
                | OptimError::Linalg(_)),
            ) => {
                // Singular/ill-conditioned KKT mid-IPM: retry once with
                // boosted regularization before declaring the subproblem
                // inconsistent.
                let mut boosted = *qp_solver.options();
                boosted.regularization = boosted.regularization.max(1e-12) * 1e6;
                let retry = QpSolver::new(boosted);
                if let Ok(sol) = match qp_warm.as_mut() {
                    Some(w) => retry.solve_view_warm(&qp, &origin, w),
                    None => retry.solve_view(&qp),
                } {
                    return Ok((
                        sol.z,
                        sol.y_eq,
                        sol.lambda_in,
                        QpSubproblemStatus::RegularizationRetry,
                        sol.iterations,
                    ));
                }
                e
            }
            Err(e) => return Err(e),
        };
        match first {
            OptimError::QpMaxIterations { .. }
            | OptimError::QpInfeasible { .. }
            | OptimError::QpUnbounded { .. }
            | OptimError::Linalg(_) => {
                // Densify sparse Jacobians for the (rare, allocating)
                // elastic rebuild below.
                let j_eq_store;
                let j_eq = match j_eq {
                    JacRef::Dense(m) => m,
                    JacRef::Sparse(s) => {
                        j_eq_store = s.to_dense();
                        &j_eq_store
                    }
                };
                let j_in_store;
                let j_in = match j_in {
                    JacRef::Dense(m) => m,
                    JacRef::Sparse(s) => {
                        j_in_store = s.to_dense();
                        &j_in_store
                    }
                };
                // Elastic mode: d plus slack t ≥ 0 on every constraint,
                // penalized linearly. Always feasible (t large enough).
                let nt = n + me + mi;
                let mut h = Matrix::zeros(nt, nt);
                for r in 0..n {
                    for c in 0..n {
                        h.set(r, c, b.get(r, c));
                    }
                }
                for i in n..nt {
                    h.set(i, i, 1e-8);
                }
                let mut g = vec![0.0; nt];
                g[..n].copy_from_slice(grad);
                for gi in g.iter_mut().skip(n) {
                    *gi = penalty * 10.0;
                }
                // Equalities become two-sided inequalities with slack:
                //   J_eq d − t ≤ −c_eq,  −J_eq d − t ≤ c_eq,  −t ≤ 0
                let mut rows: Vec<Vec<f64>> = Vec::new();
                let mut rhs: Vec<f64> = Vec::new();
                for r in 0..me {
                    let mut row = vec![0.0; nt];
                    row[..n].copy_from_slice(j_eq.row(r));
                    row[n + r] = -1.0;
                    rows.push(row);
                    rhs.push(-c_eq[r]);
                    let mut row2 = vec![0.0; nt];
                    for c in 0..n {
                        row2[c] = -j_eq.get(r, c);
                    }
                    row2[n + r] = -1.0;
                    rows.push(row2);
                    rhs.push(c_eq[r]);
                }
                for r in 0..mi {
                    let mut row = vec![0.0; nt];
                    row[..n].copy_from_slice(j_in.row(r));
                    row[n + me + r] = -1.0;
                    rows.push(row);
                    rhs.push(-c_in[r]);
                }
                for t in 0..(me + mi) {
                    let mut row = vec![0.0; nt];
                    row[n + t] = -1.0;
                    rows.push(row);
                    rhs.push(0.0);
                }
                let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
                let a_in = Matrix::from_rows(&refs).expect("elastic rows rectangular");
                let eqp = QpProblem::new(h, g)?.with_inequalities(a_in, rhs)?;
                let sol = qp_solver.solve(&eqp)?;
                // Map the multipliers of the elasticized rows back to the
                // original constraints: the first 2·me rows correspond to
                // the ±equality pair, the next mi to the inequalities.
                let mut y_eq = vec![0.0; me];
                for (r, y) in y_eq.iter_mut().enumerate() {
                    *y = sol.lambda_in[2 * r] - sol.lambda_in[2 * r + 1];
                }
                let lambda_in = sol.lambda_in[2 * me..2 * me + mi].to_vec();
                Ok((
                    sol.z[..n].to_vec(),
                    y_eq,
                    lambda_in,
                    QpSubproblemStatus::Elastic,
                    sol.iterations,
                ))
            }
            e => Err(e),
        }
    }
}

/// Second-order correction step: the minimum-norm solution of
/// `J_eq · d̂ = −c_eq(z + d)`, i.e. `d̂ = −J_eqᵀ (J_eq J_eqᵀ)⁻¹ c_eq(z+d)`.
/// Returns `None` when `J_eq J_eqᵀ` is singular.
fn second_order_correction(j_eq: JacRef<'_>, c_at_trial: &[f64]) -> Option<Vec<f64>> {
    let store;
    let j_eq = match j_eq {
        JacRef::Dense(m) => m,
        JacRef::Sparse(s) => {
            store = s.to_dense();
            &store
        }
    };
    let jjt = j_eq.matmul(&j_eq.transpose()).ok()?;
    let w = ev_linalg::Lu::factor(&jjt).ok()?.solve(c_at_trial).ok()?;
    let mut d_hat = j_eq.matvec_transposed(&w).ok()?;
    for v in &mut d_hat {
        *v = -*v;
    }
    Some(d_hat)
}

/// Stationarity residual of the KKT system at the current iterate:
/// `‖∇f + J_eqᵀ y + J_inᵀ λ‖_∞`. Only evaluated for an active observer;
/// returns NaN when a Jacobian product fails dimensionally.
fn kkt_residual(
    grad: &[f64],
    j_eq: JacRef<'_>,
    mult_eq: &[f64],
    j_in: JacRef<'_>,
    mult_in: &[f64],
) -> f64 {
    let mut r = grad.to_vec();
    let mut buf = vec![0.0; grad.len()];
    if !mult_eq.is_empty() {
        match j_eq.matvec_transposed_into(mult_eq, &mut buf) {
            Ok(()) => vecops::axpy(1.0, &buf, &mut r),
            Err(_) => return f64::NAN,
        }
    }
    if !mult_in.is_empty() {
        match j_in.matvec_transposed_into(mult_in, &mut buf) {
            Ok(()) => vecops::axpy(1.0, &buf, &mut r),
            Err(_) => return f64::NAN,
        }
    }
    vecops::norm_inf(&r)
}

/// Multiplier magnitude above which an inequality row counts as active.
const ACTIVE_MULT_TOL: f64 = 1e-8;

/// Number of inequality multipliers meaningfully away from zero — the
/// size of the QP active set at the subproblem solution. Allocation-free;
/// the index list is only assembled for observers that ask
/// ([`SqpObserver::wants_active_set`]).
fn active_set_size(mult_in: &[f64]) -> usize {
    mult_in.iter().filter(|l| l.abs() > ACTIVE_MULT_TOL).count()
}

/// Indices of inequality multipliers meaningfully away from zero — the
/// QP active set at the subproblem solution, in row order.
fn active_set_indices(mult_in: &[f64]) -> Vec<usize> {
    mult_in
        .iter()
        .enumerate()
        .filter(|(_, l)| l.abs() > ACTIVE_MULT_TOL)
        .map(|(i, _)| i)
        .collect()
}

/// L1 constraint violation: `Σ|c_eq| + Σ max(0, c_in)`.
fn violation(c_eq: &[f64], c_in: &[f64]) -> f64 {
    c_eq.iter().map(|v| v.abs()).sum::<f64>() + c_in.iter().map(|v| v.max(0.0)).sum::<f64>()
}

/// Damped BFGS update (Powell damping) of `b` in place.
fn bfgs_update(b: &mut Matrix, s: &[f64], y: &[f64]) {
    bfgs_update_block(b, s, y, 0);
}

/// Damped BFGS on the `s.len() × s.len()` diagonal sub-block of `b`
/// starting at row/column `lo`, using the matching slices of the step and
/// gradient-difference vectors. With `lo = 0` and full-length slices this
/// is the classic full-matrix update; structured problems call it once per
/// variable block so the approximation stays block-diagonal.
fn bfgs_update_block(b: &mut Matrix, s: &[f64], y: &[f64], lo: usize) {
    let n = s.len();
    let mut bs = vec![0.0; n];
    for i in 0..n {
        bs[i] = (0..n).map(|j| b.get(lo + i, lo + j) * s[j]).sum();
    }
    let sbs = vecops::dot(s, &bs);
    if sbs <= 1e-14 || vecops::norm2(s) < 1e-14 {
        return;
    }
    let sy = vecops::dot(s, y);
    // Powell damping: blend y with Bs to keep the update positive definite.
    let theta = if sy >= 0.2 * sbs {
        1.0
    } else {
        0.8 * sbs / (sbs - sy)
    };
    let mut r = vec![0.0; n];
    for i in 0..n {
        r[i] = theta * y[i] + (1.0 - theta) * bs[i];
    }
    let sr = vecops::dot(s, &r);
    if sr <= 1e-14 {
        return;
    }
    // B ← B − (Bs)(Bs)ᵀ/sᵀBs + r rᵀ/sᵀr
    for i in 0..n {
        for j in 0..n {
            let upd = -bs[i] * bs[j] / sbs + r[i] * r[j] / sr;
            b.add_at(lo + i, lo + j, upd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Rosenbrock;
    impl NlpProblem for Rosenbrock {
        fn num_vars(&self) -> usize {
            2
        }
        fn objective(&self, z: &[f64]) -> f64 {
            (1.0 - z[0]).powi(2) + 100.0 * (z[1] - z[0] * z[0]).powi(2)
        }
    }

    struct CircleMin;
    impl NlpProblem for CircleMin {
        fn num_vars(&self) -> usize {
            2
        }
        fn objective(&self, z: &[f64]) -> f64 {
            z[0] + z[1]
        }
        fn num_eq(&self) -> usize {
            1
        }
        fn eq_constraints(&self, z: &[f64], out: &mut [f64]) {
            out[0] = z[0] * z[0] + z[1] * z[1] - 2.0;
        }
    }

    struct BoxedQuadratic;
    impl NlpProblem for BoxedQuadratic {
        fn num_vars(&self) -> usize {
            2
        }
        fn objective(&self, z: &[f64]) -> f64 {
            (z[0] - 3.0).powi(2) + (z[1] + 2.0).powi(2)
        }
        fn num_ineq(&self) -> usize {
            4
        }
        fn ineq_constraints(&self, z: &[f64], out: &mut [f64]) {
            out[0] = z[0] - 1.0; // z0 ≤ 1
            out[1] = -z[0] - 1.0; // z0 ≥ −1
            out[2] = z[1] - 1.0; // z1 ≤ 1
            out[3] = -z[1] - 1.0; // z1 ≥ −1
        }
    }

    /// Bilinear objective/constraints like the HVAC MPC subproblem.
    struct BilinearHvacLike;
    impl NlpProblem for BilinearHvacLike {
        fn num_vars(&self) -> usize {
            2 // (flow, temperature-delta)
        }
        fn objective(&self, z: &[f64]) -> f64 {
            // Power ∝ flow · Δtemp, plus quadratic comfort penalty.
            let power = z[0] * z[1];
            power + 4.0 * (z[0] * z[1] - 1.0).powi(2)
        }
        fn num_ineq(&self) -> usize {
            4
        }
        fn ineq_constraints(&self, z: &[f64], out: &mut [f64]) {
            out[0] = 0.05 - z[0]; // flow ≥ 0.05
            out[1] = z[0] - 0.5; // flow ≤ 0.5
            out[2] = -z[1]; // Δtemp ≥ 0
            out[3] = z[1] - 30.0; // Δtemp ≤ 30
        }
    }

    #[test]
    fn unconstrained_rosenbrock() {
        let opts = SqpOptions {
            max_iterations: 300,
            tolerance: 1e-8,
            ..SqpOptions::default()
        };
        let r = SqpSolver::new(opts)
            .solve(&Rosenbrock, &[-1.2, 1.0])
            .unwrap();
        assert!(
            (r.z[0] - 1.0).abs() < 1e-3 && (r.z[1] - 1.0).abs() < 1e-3,
            "{:?} {:?}",
            r.z,
            r.status
        );
    }

    #[test]
    fn equality_constrained_circle() {
        // min z0+z1 on circle radius √2 → (−1, −1).
        let r = SqpSolver::default().solve(&CircleMin, &[1.0, 0.5]).unwrap();
        assert!((r.z[0] + 1.0).abs() < 1e-4, "{:?} {:?}", r.z, r.status);
        assert!((r.z[1] + 1.0).abs() < 1e-4);
        assert!(r.constraint_violation < 1e-5);
    }

    #[test]
    fn box_constrained_quadratic() {
        let r = SqpSolver::default()
            .solve(&BoxedQuadratic, &[0.0, 0.0])
            .unwrap();
        assert!(r.is_converged(), "{:?}", r.status);
        assert!((r.z[0] - 1.0).abs() < 1e-5);
        assert!((r.z[1] + 1.0).abs() < 1e-5);
    }

    #[test]
    fn bilinear_problem_stays_feasible() {
        let r = SqpSolver::default()
            .solve(&BilinearHvacLike, &[0.1, 5.0])
            .unwrap();
        assert!(r.z[0] >= 0.05 - 1e-6 && r.z[0] <= 0.5 + 1e-6, "{:?}", r.z);
        assert!(r.z[1] >= -1e-6 && r.z[1] <= 30.0 + 1e-6);
        // Optimum trades power (flow·Δt) against the (flow·Δt − 1)² pull:
        // product should settle near 1 − 1/8.
        let product = r.z[0] * r.z[1];
        assert!((product - 0.875).abs() < 1e-2, "product {product}");
    }

    #[test]
    fn infeasible_start_recovers() {
        // Start far outside the box; elastic/merit machinery must pull in.
        let r = SqpSolver::default()
            .solve(&BoxedQuadratic, &[50.0, -50.0])
            .unwrap();
        assert!((r.z[0] - 1.0).abs() < 1e-4, "{:?} {:?}", r.z, r.status);
        assert!((r.z[1] + 1.0).abs() < 1e-4);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let err = SqpSolver::default().solve(&Rosenbrock, &[0.0]).unwrap_err();
        assert!(matches!(err, OptimError::DimensionMismatch { .. }));
    }

    #[test]
    fn non_finite_start_is_reported() {
        let err = SqpSolver::default()
            .solve(&Rosenbrock, &[f64::NAN, 0.0])
            .unwrap_err();
        assert!(matches!(err, OptimError::NonFiniteData));
    }

    #[test]
    fn already_optimal_converges_immediately() {
        let r = SqpSolver::default()
            .solve(&BoxedQuadratic, &[1.0, -1.0])
            .unwrap();
        assert!(r.is_converged());
        assert!(r.iterations <= 2, "iterations {}", r.iterations);
    }

    /// An NLP whose equality constraint is unsatisfiable: c(z) = z² + 1.
    struct Impossible;
    impl NlpProblem for Impossible {
        fn num_vars(&self) -> usize {
            1
        }
        fn objective(&self, z: &[f64]) -> f64 {
            z[0] * z[0]
        }
        fn num_eq(&self) -> usize {
            1
        }
        fn eq_constraints(&self, z: &[f64], out: &mut [f64]) {
            out[0] = z[0] * z[0] + 1.0;
        }
    }

    #[test]
    fn infeasible_equalities_return_best_effort_not_panic() {
        // The elastic subproblem always has a solution; the solver must
        // terminate with a finite iterate and report the residual
        // violation instead of diverging or panicking.
        let r = SqpSolver::default().solve(&Impossible, &[3.0]).unwrap();
        assert!(r.z[0].is_finite());
        assert!(
            r.constraint_violation >= 1.0 - 1e-6,
            "violation cannot drop below 1: {}",
            r.constraint_violation
        );
        assert!(!r.is_converged());
        // Best effort: the unconstrained pull toward 0 shows through.
        assert!(r.z[0].abs() < 3.0 + 1e-9);
    }

    #[test]
    fn starved_line_search_stalls_gracefully() {
        let opts = SqpOptions {
            max_line_search: 1,
            max_iterations: 5,
            ..SqpOptions::default()
        };
        // Rosenbrock from the classic hard start: with one backtracking
        // step per iteration the solver may stall — it must still return
        // a finite result with an honest status.
        let r = SqpSolver::new(opts)
            .solve(&Rosenbrock, &[-1.2, 1.0])
            .unwrap();
        assert!(r.z.iter().all(|v| v.is_finite()));
        assert!(matches!(
            r.status,
            SqpStatus::Converged | SqpStatus::MaxIterations | SqpStatus::LineSearchStalled
        ));
    }

    #[test]
    fn observer_sees_every_iteration_and_does_not_perturb() {
        use crate::SqpTraceObserver;
        let solver = SqpSolver::default();
        let plain = solver.solve(&BoxedQuadratic, &[0.0, 0.0]).unwrap();
        let mut trace = SqpTraceObserver::default();
        let observed = solver
            .solve_observed(&BoxedQuadratic, &[0.0, 0.0], &mut trace)
            .unwrap();
        // Observation must not change the iterate path at all.
        assert_eq!(plain.z, observed.z);
        assert_eq!(plain.iterations, observed.iterations);
        assert_eq!(plain.status, observed.status);
        // One record per major iteration, including the converging one.
        assert_eq!(trace.records.len(), observed.iterations + 1);
        let last = trace.records.last().unwrap();
        assert!(last.accepted);
        assert!(last.step_norm <= 1e-5 || last.constraint_violation <= 1e-5);
        assert!(trace
            .records
            .iter()
            .all(|r| r.qp_status == QpSubproblemStatus::Nominal));
        assert!(trace.records.iter().all(|r| r.kkt_residual.is_finite()));
        // Both box constraints are active at the optimum, and the index
        // list names them in row order and agrees with the size.
        assert_eq!(last.active_set_size, 2);
        assert_eq!(last.active_set.len(), last.active_set_size);
        assert!(last.active_set.windows(2).all(|w| w[0] < w[1]));
        // Accepted full steps report α = 1.
        assert!(trace
            .records
            .iter()
            .filter(|r| r.accepted && r.line_search_steps == 1)
            .all(|r| r.step_length == 1.0));
    }

    #[test]
    fn count_only_observer_gets_size_without_index_list() {
        // A metrics-style observer that does not opt into the index list
        // must still see the active-set size, but receive an empty (and
        // therefore unallocated) `active_set`.
        struct CountOnly {
            sizes: Vec<usize>,
            index_lists_seen: usize,
        }
        impl SqpObserver for CountOnly {
            fn on_iteration(&mut self, record: &SqpIterationRecord) {
                self.sizes.push(record.active_set_size);
                self.index_lists_seen += usize::from(!record.active_set.is_empty());
            }
        }
        let solver = SqpSolver::default();
        let mut count_only = CountOnly {
            sizes: Vec::new(),
            index_lists_seen: 0,
        };
        let r = solver
            .solve_observed(&BoxedQuadratic, &[0.0, 0.0], &mut count_only)
            .unwrap();
        assert!(r.is_converged());
        // Both box constraints are active at the optimum.
        assert_eq!(*count_only.sizes.last().unwrap(), 2);
        assert_eq!(count_only.index_lists_seen, 0);
    }

    #[test]
    fn bfgs_update_keeps_descent_usable() {
        let mut b = Matrix::identity(2);
        bfgs_update(&mut b, &[1.0, 0.0], &[2.0, 0.0]);
        // Curvature along s doubled.
        assert!((b.get(0, 0) - 2.0).abs() < 1e-12);
        // Degenerate inputs are no-ops.
        let before = b.clone();
        bfgs_update(&mut b, &[0.0, 0.0], &[1.0, 1.0]);
        assert_eq!(b, before);
    }
}
