//! Dense linear algebra sized for embedded MPC problems.
//!
//! This crate provides the small, dependency-free linear-algebra kernel the
//! evclimate optimizer ([`ev-optim`]) is built on: a row-major dense
//! [`Matrix`], LU factorization with partial pivoting ([`Lu`]), Cholesky
//! factorization for symmetric positive-definite systems ([`Cholesky`]) and
//! Householder QR for least squares ([`Qr`]).
//!
//! The model-predictive-control problems solved in this workspace involve a
//! few hundred variables at most, so straightforward `O(n³)` dense
//! algorithms are the right tool: simple, cache-friendly and easy to verify.
//!
//! For horizon-structured MPC systems the crate additionally provides a CSR
//! [`SparseMatrix`] for constraint Jacobians, a symmetric [`BandedMatrix`]
//! with an `O(n·w²)` LDLᵀ factorization ([`BandedCholesky`]) for the
//! block-banded KKT matrices those Jacobians induce, and a pluggable
//! [`Factorization`] trait making the LU / Cholesky / banded backends
//! interchangeable.
//!
//! [`ev-optim`]: https://docs.rs/ev-optim
//!
//! # Examples
//!
//! ```
//! use ev_linalg::{Matrix, Lu};
//!
//! # fn main() -> Result<(), ev_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = Lu::factor(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + 1.0 * x[1] - 1.0).abs() < 1e-12);
//! assert!((1.0 * x[0] + 3.0 * x[1] - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Indexed loops over multiple parallel arrays are clearer than iterator
// chains in the dense numeric kernels below.
#![allow(clippy::needless_range_loop)]

mod banded;
mod cholesky;
mod error;
mod factor;
mod lu;
mod matrix;
mod qr;
mod sparse;
pub mod vecops;

pub use banded::{BandedCholesky, BandedMatrix};
pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use factor::{BandedFactor, CholeskyFactor, Factorization, LuFactor};
pub use lu::{solve, Lu};
pub use matrix::Matrix;
pub use qr::Qr;
pub use sparse::SparseMatrix;
