//! Fig. 7 — SoH degradation comparison across drive profiles.

use crate::ControllerKind;

use super::format_table;
use super::sweep::{evaluation_sweep, SweepCell};

/// One drive profile's SoH-degradation comparison, normalized to the
/// On/Off controller = 100 % (the paper's y-axis).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Row {
    /// Drive-profile name.
    pub profile: String,
    /// On/Off ΔSoH, normalized (always 100).
    pub onoff_pct: f64,
    /// Fuzzy ΔSoH as % of On/Off.
    pub fuzzy_pct: f64,
    /// MPC ΔSoH as % of On/Off.
    pub mpc_pct: f64,
    /// Absolute ΔSoH values in milli-percent (On/Off, fuzzy, MPC).
    pub absolute_milli_pct: (f64, f64, f64),
}

/// Projects the evaluation sweep into the Fig. 7 rows.
#[must_use]
pub fn fig7_from(cells: &[SweepCell]) -> Vec<Fig7Row> {
    let profiles: Vec<String> = {
        let mut seen = Vec::new();
        for c in cells {
            if !seen.contains(&c.profile) {
                seen.push(c.profile.clone());
            }
        }
        seen
    };
    profiles
        .into_iter()
        .map(|profile| {
            let get = |kind: ControllerKind| {
                super::sweep::find(cells, &profile, kind)
                    .expect("sweep contains every cell")
                    .result
                    .metrics()
                    .delta_soh_milli_percent
            };
            let onoff = get(ControllerKind::OnOff);
            let fuzzy = get(ControllerKind::Fuzzy);
            let mpc = get(ControllerKind::Mpc);
            Fig7Row {
                profile,
                onoff_pct: 100.0,
                fuzzy_pct: 100.0 * fuzzy / onoff,
                mpc_pct: 100.0 * mpc / onoff,
                absolute_milli_pct: (onoff, fuzzy, mpc),
            }
        })
        .collect()
}

/// Runs the full sweep and produces the Fig. 7 rows.
///
/// # Panics
///
/// Panics only if built-in simulations fail to construct (they do not).
#[must_use]
pub fn fig7() -> Vec<Fig7Row> {
    fig7_from(&evaluation_sweep())
}

/// Formats the Fig. 7 rows as a text table.
#[must_use]
pub fn render_fig7(rows: &[Fig7Row]) -> String {
    let header: Vec<String> = [
        "Drive profile",
        "On/Off %",
        "Fuzzy %",
        "Ours %",
        "ΔSoH On/Off (m%)",
        "ΔSoH Fuzzy (m%)",
        "ΔSoH Ours (m%)",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.profile.clone(),
                format!("{:.1}", r.onoff_pct),
                format!("{:.1}", r.fuzzy_pct),
                format!("{:.1}", r.mpc_pct),
                format!("{:.3}", r.absolute_milli_pct.0),
                format!("{:.3}", r.absolute_milli_pct.1),
                format!("{:.3}", r.absolute_milli_pct.2),
            ]
        })
        .collect();
    let avg_impr: f64 = rows.iter().map(|r| 100.0 - r.mpc_pct).sum::<f64>() / rows.len() as f64;
    format!(
        "Fig. 7 — SoH degradation per drive profile (% of On/Off)\n{}\naverage ΔSoH improvement vs On/Off: {:.1} % (paper: ~14 %)\n",
        format_table(&header, &body),
        avg_impr
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::evaluation_sweep_at;
    use ev_drive::DriveCycle;

    #[test]
    fn fig7_shape_on_reduced_sweep() {
        // One representative cycle keeps the test fast; the full sweep is
        // exercised by the repro binary and integration tests.
        let cells = evaluation_sweep_at(35.0, &[DriveCycle::ece_eudc()]);
        let rows = fig7_from(&cells);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.onoff_pct, 100.0);
        // The paper's headline: the lifetime-aware MPC degrades the
        // battery less than On/Off on every profile.
        assert!(r.mpc_pct < 100.0, "mpc {}", r.mpc_pct);
        // And no worse than fuzzy (the MPC additionally flattens SoC).
        assert!(
            r.mpc_pct <= r.fuzzy_pct + 1.0,
            "mpc {} fuzzy {}",
            r.mpc_pct,
            r.fuzzy_pct
        );
    }

    #[test]
    fn render_includes_summary_line() {
        let cells = evaluation_sweep_at(35.0, &[DriveCycle::ece15()]);
        let rows = fig7_from(&cells);
        let text = render_fig7(&rows);
        assert!(text.contains("average ΔSoH improvement"));
    }
}
