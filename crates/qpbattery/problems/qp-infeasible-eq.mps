* Inconsistent equalities: x + y = 1 and x + y = 2 cannot both hold.
* min x^2 + y^2; expected outcome is an infeasibility error.
NAME QPINFEASEQ
ROWS
 N OBJ
 E P1
 E P2
COLUMNS
 X OBJ 0.0 P1 1.0
 X P2 1.0
 Y OBJ 0.0 P1 1.0
 Y P2 1.0
RHS
 RHS P1 1.0 P2 2.0
BOUNDS
 FR BND X
 FR BND Y
QUADOBJ
 X X 2.0
 Y Y 2.0
ENDATA
