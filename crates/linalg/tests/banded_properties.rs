//! Property tests pinning the banded LDLᵀ backend to the dense LU oracle
//! on randomized block-tridiagonal systems, the structure produced by
//! horizon-coupled MPC KKT matrices.

use ev_linalg::{vecops, BandedCholesky, BandedFactor, BandedMatrix, Factorization, Lu, LuFactor};
use proptest::prelude::*;

/// Relative agreement required between the banded solve and the LU oracle.
const REL_TOL: f64 = 1e-10;

/// Strategy: a diagonally dominant symmetric block-tridiagonal matrix with
/// `nb` blocks of size `bs` (bandwidth `2·bs − 1`), plus a sign vector
/// that optionally flips block diagonals to make the matrix
/// quasidefinite (KKT-style) instead of positive definite.
fn block_tridiagonal(
    nb: usize,
    bs: usize,
    quasidefinite: bool,
) -> impl Strategy<Value = BandedMatrix> {
    let n = nb * bs;
    let w = 2 * bs - 1;
    let entries = proptest::collection::vec(-1.0f64..1.0, n * (w + 1));
    let signs = proptest::collection::vec(0.0f64..1.0, nb);
    (entries, signs).prop_map(move |(data, signs)| {
        let mut a = BandedMatrix::zeros(n, w);
        for j in 0..n {
            for i in (j + 1)..(j + w + 1).min(n) {
                // Couple only within a block or to the adjacent block.
                if i / bs <= j / bs + 1 {
                    a.set(i, j, data[(i - j) * n + j]);
                }
            }
        }
        // Strong diagonal so the unpivoted factorization is stable; a
        // negated block diagonal keeps |pivots| large but indefinite.
        for j in 0..n {
            let dom = 2.0 * (w as f64) + 2.0 + data[j].abs();
            let sign = if quasidefinite && signs[j / bs] > 0.5 {
                -1.0
            } else {
                1.0
            };
            a.set(j, j, sign * dom);
        }
        a
    })
}

/// `x` and `reference` must agree to `REL_TOL` relative to the solution
/// magnitude.
fn assert_close(x: &[f64], reference: &[f64]) -> Result<(), TestCaseError> {
    let scale = vecops::norm_inf(reference).max(1.0);
    for (xi, ri) in x.iter().zip(reference) {
        prop_assert!(
            (xi - ri).abs() <= REL_TOL * scale,
            "banded {xi} vs dense-LU {ri} (scale {scale})"
        );
    }
    Ok(())
}

proptest! {
    #[test]
    fn banded_matches_dense_lu_on_spd_block_tridiagonal(
        a in block_tridiagonal(5, 3, false),
        b in proptest::collection::vec(-10.0f64..10.0, 15),
    ) {
        let mut f = BandedCholesky::new();
        f.factor(&a).expect("dominant SPD factors");
        let x = f.solve(&b).expect("dims");
        let reference = Lu::factor(&a.to_dense()).expect("nonsingular")
            .solve(&b).expect("dims");
        assert_close(&x, &reference)?;
    }

    #[test]
    fn banded_matches_dense_lu_on_quasidefinite_kkt(
        a in block_tridiagonal(4, 4, true),
        b in proptest::collection::vec(-10.0f64..10.0, 16),
    ) {
        let mut f = BandedCholesky::new();
        f.factor(&a).expect("dominant quasidefinite factors unpivoted");
        let x = f.solve(&b).expect("dims");
        let reference = Lu::factor(&a.to_dense()).expect("nonsingular")
            .solve(&b).expect("dims");
        assert_close(&x, &reference)?;
    }

    #[test]
    fn factorization_trait_backends_agree(
        a in block_tridiagonal(4, 2, false),
        b in proptest::collection::vec(-10.0f64..10.0, 8),
    ) {
        let dense = a.to_dense();
        let mut lu = LuFactor::new();
        let mut banded = BandedFactor::new();
        lu.refactor(&dense).expect("factors");
        banded.refactor(&dense).expect("factors");
        let mut x_lu = b.clone();
        let mut x_banded = b.clone();
        lu.solve_in_place(&mut x_lu).expect("dims");
        banded.solve_in_place(&mut x_banded).expect("dims");
        assert_close(&x_banded, &x_lu)?;
    }
}
