//! Row-major dense matrix.

use crate::LinalgError;

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse container of the evclimate optimizer. It keeps
/// its storage in a flat `Vec<f64>` indexed as `data[r * cols + c]` and
/// offers the operations a dense interior-point QP / SQP solver needs:
/// products, transpose, slicing of rows, norms and elementwise arithmetic.
///
/// # Examples
///
/// ```
/// use ev_linalg::Matrix;
///
/// # fn main() -> Result<(), ev_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// assert_eq!(a.matvec(&[1.0, 1.0])?, vec![3.0, 7.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates an `n × n` diagonal matrix from the given diagonal entries.
    #[must_use]
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::RaggedRows`] if the rows have different
    /// lengths and [`LinalgError::Empty`] if no rows or zero-length rows
    /// are supplied.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(LinalgError::Empty);
        }
        let ncols = rows[0].len();
        if ncols == 0 {
            return Err(LinalgError::Empty);
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(LinalgError::RaggedRows);
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Creates a matrix by evaluating `f(r, c)` at every position.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] += v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        let cols = self.cols;
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    #[must_use]
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Borrows the underlying row-major storage.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transpose.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix–matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if
    /// `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Self) -> Result<Self, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, other.cols),
                actual: (other.rows, other.cols),
            });
        }
        let mut out = Self::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.add_at(r, c, a * other.get(k, c));
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.cols, 1),
                actual: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = self.row(r);
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        Ok(out)
    }

    /// Transposed matrix–vector product `selfᵀ · x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != rows`.
    pub fn matvec_transposed(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: (self.rows, 1),
                actual: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            let row = self.row(r);
            for (o, &a) in out.iter_mut().zip(row) {
                *o += a * xr;
            }
        }
        Ok(out)
    }

    /// Elementwise sum `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn add(&self, other: &Self) -> Result<Self, LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                expected: self.shape(),
                actual: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Elementwise difference `self − other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn sub(&self, other: &Self) -> Result<Self, LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                expected: self.shape(),
                actual: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self` scaled by `s`.
    #[must_use]
    pub fn scale(&self, s: f64) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Adds `s · I` to a square matrix in place (Levenberg regularization).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diag(&mut self, s: f64) {
        assert!(self.is_square(), "add_diag requires a square matrix");
        for i in 0..self.rows {
            self.add_at(i, i, s);
        }
    }

    /// Frobenius norm.
    #[must_use]
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (∞-norm of the flattened matrix).
    #[must_use]
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Returns `true` if the matrix is symmetric within `tol`.
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self.get(r, c) - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Stacks `self` on top of `other` (row concatenation).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if column counts differ.
    pub fn vstack(&self, other: &Self) -> Result<Self, LinalgError> {
        if self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                expected: (other.rows, self.cols),
                actual: other.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Self {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Extracts the rows with the given indices into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut out = Self::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }
}

impl core::fmt::Display for Matrix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self.get(r, c))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert_eq!(err, LinalgError::RaggedRows);
        assert_eq!(Matrix::from_rows(&[]).unwrap_err(), LinalgError::Empty);
        let empty_row: &[f64] = &[];
        assert_eq!(
            Matrix::from_rows(&[empty_row]).unwrap_err(),
            LinalgError::Empty
        );
    }

    #[test]
    fn identity_and_diag() {
        let i = Matrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        let d = Matrix::from_diag(&[2.0, 5.0]);
        assert_eq!(d.get(1, 1), 5.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = sample();
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[4.0, 5.0], &[10.0, 11.0]]).unwrap());
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = sample();
        assert!(a.matmul(&sample()).is_err());
    }

    #[test]
    fn matvec_and_transposed() {
        let a = sample();
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]).unwrap(), vec![-2.0, -2.0]);
        assert_eq!(
            a.matvec_transposed(&[1.0, 1.0]).unwrap(),
            vec![5.0, 7.0, 9.0]
        );
        assert!(a.matvec(&[1.0]).is_err());
        assert!(a.matvec_transposed(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn add_sub_scale() {
        let a = sample();
        let s = a.add(&a).unwrap();
        assert_eq!(s, a.scale(2.0));
        let z = s.sub(&a).unwrap().sub(&a).unwrap();
        assert_eq!(z.norm_frobenius(), 0.0);
    }

    #[test]
    fn add_diag_regularizes() {
        let mut m = Matrix::zeros(2, 2);
        m.add_diag(0.5);
        assert_eq!(m, Matrix::from_diag(&[0.5, 0.5]));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn add_diag_panics_on_rect() {
        let mut m = Matrix::zeros(2, 3);
        m.add_diag(1.0);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]).unwrap();
        assert!((m.norm_frobenius() - 5.0).abs() < 1e-12);
        assert_eq!(m.norm_max(), 4.0);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        assert!(s.is_symmetric(0.0));
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]).unwrap();
        assert!(!a.is_symmetric(1e-9));
        assert!(!sample().is_symmetric(1.0));
    }

    #[test]
    fn vstack_and_select_rows() {
        let a = sample();
        let st = a.vstack(&a).unwrap();
        assert_eq!(st.shape(), (4, 3));
        assert_eq!(st.row(2), a.row(0));
        let sel = st.select_rows(&[3, 0]);
        assert_eq!(sel.row(0), a.row(1));
        assert_eq!(sel.row(1), a.row(0));
        let bad = Matrix::zeros(1, 2);
        assert!(a.vstack(&bad).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let _ = sample().get(2, 0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = format!("{}", Matrix::identity(2));
        assert!(s.contains("1.0000"));
    }
}
