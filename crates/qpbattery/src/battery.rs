//! The vendored problem battery: small standard QPs/LPs with committed
//! reference objectives, embedded at compile time so the suite runs
//! fully offline.
//!
//! Reference values come from two independent sources: the literature
//! optimum where one is published (Hock–Schittkowski, CUTE), and a
//! solver bootstrap certified by [`ev_optim::verify_kkt`] at `1e-9`
//! (for a convex problem a KKT point is a global optimum, so the
//! certification is sound, not circular). The `regen_reference_values`
//! helper below re-derives every value; see `EXPERIMENTS.md`.

use crate::mps::{parse_mps, LoadedQp, MpsError, MpsFormat};

/// What the solver is expected to produce for a battery case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Expected {
    /// Solves to this optimal objective value (original problem sense,
    /// constant included), matched to `1e-6` relative tolerance.
    Objective(f64),
    /// Must return a routable infeasibility (or max-iterations) error.
    Infeasible,
    /// Must return a routable unboundedness (or max-iterations) error.
    Unbounded,
}

/// One vendored problem: embedded MPS text plus its expectation.
#[derive(Debug, Clone, Copy)]
pub struct BatteryCase {
    /// Stable case name (matches the fixture file stem).
    pub name: &'static str,
    /// Embedded MPS source text.
    pub mps: &'static str,
    /// Physical layout of `mps`.
    pub format: MpsFormat,
    /// Expected solver outcome.
    pub expected: Expected,
    /// What the case exercises.
    pub notes: &'static str,
}

impl BatteryCase {
    /// Parses the embedded MPS text.
    ///
    /// # Errors
    ///
    /// Propagates [`MpsError`]; the battery's own tests guarantee every
    /// vendored case loads cleanly.
    pub fn load(&self) -> Result<LoadedQp, MpsError> {
        parse_mps(self.mps, self.format)
    }
}

macro_rules! case {
    ($name:literal, $format:expr, $expected:expr, $notes:literal) => {
        BatteryCase {
            name: $name,
            mps: include_str!(concat!("../problems/", $name, ".mps")),
            format: $format,
            expected: $expected,
            notes: $notes,
        }
    };
}

/// The full vendored battery, in alphabetical-ish curriculum order.
pub const CASES: &[BatteryCase] = &[
    case!(
        "hs21",
        MpsFormat::Free,
        Expected::Objective(-99.96),
        "classic QP with an objective constant from the RHS section"
    ),
    case!(
        "hs35",
        MpsFormat::Free,
        Expected::Objective(0.111_111_111_111_111_1),
        "Beale's problem; dense coupled Hessian, one active inequality"
    ),
    case!(
        "hs35mod",
        MpsFormat::Free,
        Expected::Objective(0.25),
        "HS35 with an FX (fixed-variable) bound"
    ),
    case!(
        "hs51",
        MpsFormat::Free,
        Expected::Objective(0.0),
        "semidefinite Hessian, equality-constrained, FR bounds"
    ),
    case!(
        "hs52",
        MpsFormat::Free,
        Expected::Objective(5.326_647_564_469_912),
        "equality-constrained least squares; f* = 1859/349"
    ),
    case!(
        "hs53",
        MpsFormat::Free,
        Expected::Objective(4.093_023_255_813_954),
        "HS51 objective on HS52 equalities inside an inactive box; f* = 176/43"
    ),
    case!(
        "hs76",
        MpsFormat::Free,
        Expected::Objective(-4.681_818_181_818_182),
        "indefinite-looking but convex cross terms, mixed L/G rows"
    ),
    case!(
        "tame",
        MpsFormat::Free,
        Expected::Objective(0.0),
        "Maros-Meszaros TAME; rank-1 semidefinite Hessian"
    ),
    case!(
        "genhs28",
        MpsFormat::Free,
        Expected::Objective(0.927_173_693_766_391),
        "CUTE GENHS28; tridiagonal semidefinite Hessian, 8 equalities"
    ),
    case!(
        "qp-kms-dense",
        MpsFormat::Free,
        Expected::Objective(-4.933_940_905_136_996),
        "fully dense Kac-Murdock-Szego Hessian with box and two rows"
    ),
    case!(
        "lp-vertex",
        MpsFormat::Fixed,
        Expected::Objective(-6.0),
        "pure LP in fixed-column format; optimum at a bound vertex"
    ),
    case!(
        "lp-ranges-g",
        MpsFormat::Free,
        Expected::Objective(2.0),
        "RANGES on a G row (interval constraint from below)"
    ),
    case!(
        "lp-ranges-l",
        MpsFormat::Free,
        Expected::Objective(-8.0),
        "RANGES on an L row plus an objective constant"
    ),
    case!(
        "qp-ranges-eq",
        MpsFormat::Free,
        Expected::Objective(2.0),
        "RANGES on an E row (equality widened to an interval)"
    ),
    case!(
        "qp-free-bounds",
        MpsFormat::Free,
        Expected::Objective(-0.5),
        "MI/LO/PL bound kinds; interior unconstrained optimum"
    ),
    case!(
        "qp-degenerate-vertex",
        MpsFormat::Free,
        Expected::Objective(0.0),
        "LP with three constraints active at a 2-D vertex (degenerate)"
    ),
    case!(
        "qp-rank-deficient-eq",
        MpsFormat::Free,
        Expected::Objective(0.0),
        "duplicated (rank-deficient but consistent) equality rows"
    ),
    case!(
        "qp-redundant-ineq",
        MpsFormat::Free,
        Expected::Objective(2.0),
        "active constraint repeated at three scalings; non-unique duals"
    ),
    case!(
        "qp-illcond-diag",
        MpsFormat::Free,
        Expected::Objective(9.900_000_000_99e-5),
        "diagonal Hessian with condition number 1e8; analytic f* = 1e4/101010101"
    ),
    case!(
        "qp-banded-chain",
        MpsFormat::Free,
        Expected::Objective(0.3575),
        "12-stage slope-limited tracking chain; analytic f* = 0.0025*2*71.5"
    ),
    case!(
        "qp-eq-chain",
        MpsFormat::Free,
        Expected::Objective(0.75),
        "equality-only QP (pure-equality KKT path, no inequalities)"
    ),
    case!(
        "qp-fixed-quad",
        MpsFormat::Fixed,
        Expected::Objective(0.25),
        "fixed-column format with a QUADOBJ section"
    ),
    case!(
        "qp-maxobj",
        MpsFormat::Free,
        Expected::Objective(2.5),
        "OBJSENSE MAXIMIZE with a concave quadratic (loader negates)"
    ),
    case!(
        "lp-infeasible",
        MpsFormat::Free,
        Expected::Infeasible,
        "row and bound contradict; solver must error, not hang"
    ),
    case!(
        "qp-infeasible-eq",
        MpsFormat::Free,
        Expected::Infeasible,
        "inconsistent equality rows"
    ),
    case!(
        "lp-unbounded",
        MpsFormat::Free,
        Expected::Unbounded,
        "objective decreases along a feasible ray"
    ),
];

/// Looks a case up by name.
#[must_use]
pub fn find(name: &str) -> Option<&'static BatteryCase> {
    CASES.iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_optim::{kkt_report, QpSolver, QpSolverOptions};

    #[test]
    fn battery_is_large_and_loads() {
        assert!(CASES.len() >= 20, "battery shrank below 20 cases");
        let solvable = CASES
            .iter()
            .filter(|c| matches!(c.expected, Expected::Objective(_)))
            .count();
        assert!(
            solvable >= 20,
            "need at least 20 solvable cases, have {solvable}"
        );
        let mut names: Vec<&str> = CASES.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CASES.len(), "duplicate case names");
        for case in CASES {
            let qp = case
                .load()
                .unwrap_or_else(|e| panic!("{} failed to load: {e}", case.name));
            assert!(qp.num_vars() > 0, "{} has no variables", case.name);
        }
    }

    #[test]
    fn both_formats_and_all_sections_are_covered() {
        assert!(CASES.iter().any(|c| c.format == MpsFormat::Fixed));
        assert!(CASES.iter().any(|c| c.format == MpsFormat::Free));
        let has = |s: &str| CASES.iter().any(|c| c.mps.contains(s));
        assert!(has("RANGES"), "no case exercises RANGES");
        assert!(has("BOUNDS"), "no case exercises BOUNDS");
        assert!(has("QUADOBJ"), "no case exercises QUADOBJ");
        assert!(has("OBJSENSE"), "no case exercises OBJSENSE");
        for kind in ["FX", "FR", "MI", "UP", "LO"] {
            assert!(
                CASES
                    .iter()
                    .any(|c| c.mps.lines().any(|l| l.trim_start().starts_with(kind))),
                "no case exercises {kind} bounds"
            );
        }
    }

    /// Re-derives every committed reference objective with the solver at
    /// tight tolerance and certifies each via the KKT conditions. Run
    /// with `--ignored --nocapture` after adding or editing a fixture
    /// and copy the printed values into [`CASES`].
    #[test]
    #[ignore = "regeneration helper, prints reference values"]
    fn regen_reference_values() {
        let solver = QpSolver::new(QpSolverOptions {
            tolerance: 1e-10,
            max_iterations: 200,
            ..QpSolverOptions::default()
        });
        for case in CASES {
            let qp = case.load().expect("load");
            let problem = qp.problem().expect("build");
            match solver.solve(&problem) {
                Ok(sol) => {
                    let report = kkt_report(&problem.as_view(), &sol.z, &sol.y_eq, &sol.lambda_in)
                        .expect("kkt report");
                    println!(
                        "{:<22} objective {:+.15e}  kkt {:.2e} (scale {:.2e}) iters {}",
                        case.name,
                        qp.objective_value(&sol.z),
                        report.max_residual(),
                        report.scale,
                        sol.iterations,
                    );
                }
                Err(e) => println!("{:<22} error: {e}", case.name),
            }
        }
    }
}
