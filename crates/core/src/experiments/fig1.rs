//! Fig. 1 — percentages of the three power-consumption types in an EV
//! and an ICE vehicle across ambient temperatures.

use ev_hvac::HvacState;
use ev_powertrain::{IceParams, IceVehicle, PowerTrain};
use ev_units::{Celsius, KilometersPerHour, Seconds, Watts};

use crate::ControllerKind;

use super::{experiment_params, format_table};

/// One ambient-temperature column of Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig1Row {
    /// Ambient temperature (°C).
    pub ambient_c: f64,
    /// EV: motor share of total power (%).
    pub ev_motor_pct: f64,
    /// EV: HVAC share (%).
    pub ev_hvac_pct: f64,
    /// EV: accessories share (%).
    pub ev_accessories_pct: f64,
    /// EV: absolute HVAC power (kW).
    pub ev_hvac_kw: f64,
    /// ICE: engine share of total fuel power (%).
    pub ice_engine_pct: f64,
    /// ICE: HVAC share (%).
    pub ice_hvac_pct: f64,
    /// ICE: accessories share (%).
    pub ice_accessories_pct: f64,
}

/// Cruise speed of the comparison (both vehicles).
const CRUISE_KMH: f64 = 60.0;
/// Ambient sweep of the paper's figure.
const AMBIENTS: [f64; 6] = [-10.0, 0.0, 10.0, 20.0, 30.0, 40.0];
/// Settling time before averaging the HVAC power.
const SETTLE_S: usize = 900;
/// Averaging window after settling.
const AVG_S: usize = 300;

/// Steady-state EV HVAC power at an ambient: closed-loop fuzzy control at
/// constant cruise, averaged after settling.
fn ev_hvac_steady_w(ambient: Celsius) -> f64 {
    let params = experiment_params();
    let hvac = params.hvac_model();
    let mut controller = ControllerKind::Fuzzy
        .instantiate(&params)
        .expect("fuzzy instantiates");
    let mut state = HvacState::new(ambient); // soaked cabin
    let solar = Watts::new(400.0);
    let dt = Seconds::new(1.0);
    let mut acc = 0.0;
    for k in 0..SETTLE_S + AVG_S {
        let ctx = ev_control::ControlContext {
            state,
            ambient,
            solar,
            soc: ev_units::Percent::new(90.0),
            soc_avg: 92.0,
            dt,
            elapsed: Seconds::new(k as f64),
            preview: &[],
        };
        let input = controller.control(&ctx);
        let (next, power) = hvac.step(state, &input, ambient, solar, dt);
        state = next;
        if k >= SETTLE_S {
            acc += power.total().value();
        }
    }
    acc / AVG_S as f64
}

/// Runs the Fig. 1 sweep.
///
/// # Panics
///
/// Panics only if the built-in controllers fail to instantiate (they do
/// not).
#[must_use]
pub fn fig1() -> Vec<Fig1Row> {
    let params = experiment_params();
    let train = PowerTrain::new(params.vehicle.clone());
    let ice = IceVehicle::new(IceParams::corolla_like());
    let v = KilometersPerHour::new(CRUISE_KMH).to_meters_per_second();
    let accessories = params.accessory_power.value();

    AMBIENTS
        .iter()
        .map(|&ambient_c| {
            let ambient = Celsius::new(ambient_c);
            // EV split.
            let motor = train.power(v, 0.0, 0.0).value();
            let hvac = ev_hvac_steady_w(ambient);
            let total = motor + hvac + accessories;
            // ICE split: cabin thermal load at the same ambient from the
            // same cabin model, heating below the 24 °C target and
            // cooling above.
            let cabin_load =
                (params.cabin.shell_conductance.value() * (ambient_c - 24.0)).abs() + 400.0;
            let heating = ambient_c < 24.0;
            let engine = ice.propulsion_fuel_power(v, 0.0, 0.0).value();
            let ice_hvac = ice
                .hvac_fuel_power(v, Watts::new(cabin_load), heating)
                .value();
            // Accessories through alternator + engine efficiency.
            let ice_acc = accessories / 0.55 / 0.32;
            let ice_total = engine + ice_hvac + ice_acc;
            Fig1Row {
                ambient_c,
                ev_motor_pct: 100.0 * motor / total,
                ev_hvac_pct: 100.0 * hvac / total,
                ev_accessories_pct: 100.0 * accessories / total,
                ev_hvac_kw: hvac / 1000.0,
                ice_engine_pct: 100.0 * engine / ice_total,
                ice_hvac_pct: 100.0 * ice_hvac / ice_total,
                ice_accessories_pct: 100.0 * ice_acc / ice_total,
            }
        })
        .collect()
}

/// Formats the Fig. 1 rows as a text table.
#[must_use]
pub fn render_fig1(rows: &[Fig1Row]) -> String {
    let header: Vec<String> = [
        "T_amb (°C)",
        "EV motor %",
        "EV HVAC %",
        "EV acc %",
        "EV HVAC kW",
        "ICE engine %",
        "ICE HVAC %",
        "ICE acc %",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.ambient_c),
                format!("{:.1}", r.ev_motor_pct),
                format!("{:.1}", r.ev_hvac_pct),
                format!("{:.1}", r.ev_accessories_pct),
                format!("{:.2}", r.ev_hvac_kw),
                format!("{:.1}", r.ice_engine_pct),
                format!("{:.1}", r.ice_hvac_pct),
                format!("{:.1}", r.ice_accessories_pct),
            ]
        })
        .collect();
    format!(
        "Fig. 1 — power-type split at {CRUISE_KMH:.0} km/h cruise\n{}",
        format_table(&header, &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_paper_shape() {
        let rows = fig1();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            let sum = r.ev_motor_pct + r.ev_hvac_pct + r.ev_accessories_pct;
            assert!((sum - 100.0).abs() < 1e-9, "EV shares must sum to 100");
            let ice_sum = r.ice_engine_pct + r.ice_hvac_pct + r.ice_accessories_pct;
            assert!((ice_sum - 100.0).abs() < 1e-9);
        }
        // EV HVAC share is significant at temperature extremes (paper:
        // "upto 20 %") and smaller at mild ambient.
        let cold = &rows[0]; // −10 °C
        let mild = &rows[3]; // 20 °C
        let hot = &rows[5]; // 40 °C
        assert!(
            cold.ev_hvac_pct > 2.0 * mild.ev_hvac_pct,
            "cold {} mild {}",
            cold.ev_hvac_pct,
            mild.ev_hvac_pct
        );
        assert!(hot.ev_hvac_pct > 2.0 * mild.ev_hvac_pct);
        assert!(cold.ev_hvac_pct > 10.0, "EV heating share substantial");
        // ICE heating is nearly free: cold-side ICE HVAC share far below
        // the EV share (paper: engine waste heat).
        assert!(
            cold.ice_hvac_pct < 0.5 * cold.ev_hvac_pct,
            "ICE {} vs EV {}",
            cold.ice_hvac_pct,
            cold.ev_hvac_pct
        );
        // Hot side: both consume, EV HVAC share still higher than ICE's
        // (paper: up to 20 % vs up to 9 %).
        assert!(hot.ev_hvac_pct > hot.ice_hvac_pct);
    }

    #[test]
    fn render_contains_all_ambients() {
        let rows = fig1();
        let table = render_fig1(&rows);
        for a in ["-10", "0", "10", "20", "30", "40"] {
            assert!(table.contains(a), "missing ambient {a}");
        }
    }
}
