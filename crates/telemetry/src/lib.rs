//! # ev-telemetry — lightweight instrumentation for the evclimate stack
//!
//! A dependency-free metrics substrate: monotonic-timed [`Span`]s,
//! [`Counter`]s, log-bucketed [`Histogram`]s, and a [`Registry`] that
//! hands out cheap cloneable handles. The design goal is *zero overhead
//! when disabled*: a handle minted from [`Registry::disabled`] carries no
//! allocation and every operation on it — including [`Histogram::start_span`],
//! which skips the `Instant::now()` call entirely — is a single branch on
//! an `Option` that the optimizer folds away at monomorphization sites.
//!
//! Enabled handles update lock-free atomics (`u64` counters, f64-bit CAS
//! for sums and extrema), so instrumented hot loops never take a lock and
//! never allocate after metric registration.
//!
//! ## Quickstart
//!
//! ```
//! use ev_telemetry::{HistogramSpec, Registry};
//!
//! let registry = Registry::enabled();
//! let solves = registry.counter("mpc_solves_total");
//! let latency = registry.histogram("solve_seconds", HistogramSpec::latency_seconds());
//!
//! for _ in 0..3 {
//!     let span = latency.start_span();
//!     solves.inc();
//!     span.finish();
//! }
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("mpc_solves_total"), Some(3));
//! assert_eq!(snapshot.histogram("solve_seconds").unwrap().count, 3);
//! println!("{}", ev_telemetry::export::render_report(&snapshot));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;
mod metrics;
pub mod recorder;
mod registry;
pub mod scrape;
pub mod slo;
mod span;
pub mod trace;
pub mod tsdb;

pub use metrics::{Counter, Exemplar, Gauge, Histogram, HistogramSpec};
pub use recorder::{
    Attribution, DecisionRecord, FlightRecord, FlightRecorder, PlannedStep, SolveOutcome,
    StepSummary, WarmStart,
};
pub use registry::{
    CounterSnapshot, GaugeSnapshot, HistogramSnapshot, LabelSet, Registry, Snapshot,
};
pub use scrape::{scrape_once, scrape_once_with_timeout, ScrapeError, ScrapeServer};
pub use span::Span;
pub use trace::{TraceEvent, TracePhase, TraceRing, TraceSpan};
