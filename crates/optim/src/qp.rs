//! Convex quadratic programming by an infeasible-start primal-dual
//! interior-point method (Mehrotra predictor–corrector).
//!
//! The reduced KKT system `[H + CᵀWC, A_eqᵀ; A_eq, −δI]` is assembled from
//! either dense or sparse (CSR) constraint Jacobians and factored by one of
//! three interchangeable backends: dense LU (the indefinite-safe oracle),
//! dense Cholesky (when there are no equality constraints the reduced
//! matrix is SPD), or — when the problem declares its horizon structure via
//! [`QpStructure`] — a banded LDLᵀ under a stage-interleaved permutation,
//! making each interior-point iteration `O(N)` in the horizon length.

use ev_linalg::{vecops, BandedCholesky, BandedMatrix, Cholesky, Lu, Matrix, SparseMatrix};

use crate::OptimError;

/// Declares the block-banded horizon structure of a QP.
///
/// Decision variables are grouped into consecutive stage blocks of
/// [`vars_per_block`](Self::vars_per_block); equality constraints into
/// consecutive blocks of [`eq_per_block`](Self::eq_per_block), one block
/// per stage. A constraint row (equality or inequality) may reference
/// variables of its own stage and of at most [`lookback`](Self::lookback)
/// preceding stages.
///
/// Under the stage-interleaved unknown ordering `[z₀, ν₀, z₁, ν₁, …]` the
/// reduced KKT matrix then has bandwidth
/// `(lookback + 1)·(vars_per_block + eq_per_block) − 1`, which the solver
/// factors with [`ev_linalg::BandedCholesky`] in time linear in the number
/// of stages. Structure is advisory: if the declared shape does not match
/// the supplied (sparse) Jacobians the solver silently falls back to the
/// dense path, which remains the correctness oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QpStructure {
    /// Decision variables per stage block.
    pub vars_per_block: usize,
    /// Equality constraints per stage block (zero for purely
    /// inequality-constrained stages).
    pub eq_per_block: usize,
    /// How many preceding stage blocks a constraint row may reference.
    pub lookback: usize,
}

impl QpStructure {
    /// Bandwidth of the stage-interleaved reduced KKT matrix.
    #[must_use]
    pub fn bandwidth(&self) -> usize {
        (self.lookback + 1) * (self.vars_per_block + self.eq_per_block) - 1
    }
}

/// Which factorization backend produced a [`QpSolution`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpKktBackend {
    /// Dense LU with partial pivoting (fallback and correctness oracle).
    DenseLu,
    /// Dense Cholesky on the SPD reduced system (no equality constraints).
    DenseCholesky,
    /// Banded LDLᵀ under the stage-interleaved permutation declared by
    /// [`QpStructure`].
    Banded,
}

/// A constraint Jacobian borrowed in either dense or CSR form.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ConstraintRef<'a> {
    Dense(&'a Matrix),
    Sparse(&'a SparseMatrix),
}

impl ConstraintRef<'_> {
    pub(crate) fn norm_max(&self) -> f64 {
        match self {
            Self::Dense(m) => m.norm_max(),
            Self::Sparse(s) => s.norm_max(),
        }
    }

    /// `out = A·x` without allocating.
    pub(crate) fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        match self {
            Self::Dense(m) => {
                for r in 0..m.rows() {
                    out[r] = vecops::dot(m.row(r), x);
                }
            }
            Self::Sparse(s) => s.matvec(x, out).expect("dimensions checked at view build"),
        }
    }

    /// `out += coeff · row_i` (length `cols`).
    pub(crate) fn add_scaled_row(&self, i: usize, coeff: f64, out: &mut [f64]) {
        match self {
            Self::Dense(m) => {
                for (o, v) in out.iter_mut().zip(m.row(i)) {
                    *o += coeff * v;
                }
            }
            Self::Sparse(s) => {
                let (cols, vals) = s.row(i);
                for (c, v) in cols.iter().zip(vals) {
                    out[*c] += coeff * v;
                }
            }
        }
    }
}

/// A convex quadratic program
///
/// ```text
/// minimize    ½ zᵀ H z + gᵀ z
/// subject to  A_eq z = b_eq
///             A_in z ≤ b_in
/// ```
///
/// `H` must be symmetric positive semidefinite; the solver adds a tiny
/// Levenberg regularization so semidefinite Hessians (common in MPC, where
/// some inputs do not enter the cost) are handled without special cases.
///
/// # Examples
///
/// ```
/// use ev_optim::QpProblem;
/// use ev_linalg::Matrix;
///
/// # fn main() -> Result<(), ev_optim::OptimError> {
/// // min (z-3)²  s.t. z ≤ 1
/// let p = QpProblem::new(Matrix::from_diag(&[2.0]), vec![-6.0])?
///     .with_inequalities(Matrix::from_rows(&[&[1.0]]).unwrap(), vec![1.0])?;
/// assert_eq!(p.num_vars(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QpProblem {
    h: Matrix,
    g: Vec<f64>,
    a_eq: Option<Matrix>,
    b_eq: Vec<f64>,
    a_in: Option<Matrix>,
    b_in: Vec<f64>,
    structure: Option<QpStructure>,
}

impl QpProblem {
    /// Symmetry tolerance for the Hessian check, relative to its magnitude.
    const SYM_TOL: f64 = 1e-8;

    /// Creates an unconstrained QP from the Hessian `h` and linear term `g`.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::DimensionMismatch`] if `h` is not square with
    /// side `g.len()`, [`OptimError::AsymmetricHessian`] if `h` is not
    /// symmetric, and [`OptimError::NonFiniteData`] on NaN/∞ entries.
    pub fn new(h: Matrix, g: Vec<f64>) -> Result<Self, OptimError> {
        if !h.is_square() || h.rows() != g.len() {
            return Err(OptimError::DimensionMismatch { what: "H vs g" });
        }
        if !h.is_symmetric(Self::SYM_TOL * h.norm_max().max(1.0)) {
            return Err(OptimError::AsymmetricHessian);
        }
        if h.as_slice().iter().any(|v| !v.is_finite()) || g.iter().any(|v| !v.is_finite()) {
            return Err(OptimError::NonFiniteData);
        }
        Ok(Self {
            h,
            g,
            a_eq: None,
            b_eq: Vec::new(),
            a_in: None,
            b_in: Vec::new(),
            structure: None,
        })
    }

    /// Declares the block-banded horizon structure of this problem.
    ///
    /// Advisory metadata: the solver uses its banded backend when the
    /// structure matches the supplied Jacobians and falls back to the
    /// dense path otherwise.
    #[must_use]
    pub fn with_structure(mut self, structure: QpStructure) -> Self {
        self.structure = Some(structure);
        self
    }

    /// Adds the equality constraints `a_eq · z = b_eq`.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::DimensionMismatch`] if shapes are inconsistent
    /// and [`OptimError::NonFiniteData`] on NaN/∞ entries.
    pub fn with_equalities(mut self, a_eq: Matrix, b_eq: Vec<f64>) -> Result<Self, OptimError> {
        if a_eq.cols() != self.num_vars() || a_eq.rows() != b_eq.len() {
            return Err(OptimError::DimensionMismatch {
                what: "A_eq vs b_eq",
            });
        }
        if a_eq.as_slice().iter().any(|v| !v.is_finite()) || b_eq.iter().any(|v| !v.is_finite()) {
            return Err(OptimError::NonFiniteData);
        }
        self.a_eq = Some(a_eq);
        self.b_eq = b_eq;
        Ok(self)
    }

    /// Adds the inequality constraints `a_in · z ≤ b_in`.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::DimensionMismatch`] if shapes are inconsistent
    /// and [`OptimError::NonFiniteData`] on NaN/∞ entries.
    pub fn with_inequalities(mut self, a_in: Matrix, b_in: Vec<f64>) -> Result<Self, OptimError> {
        if a_in.cols() != self.num_vars() || a_in.rows() != b_in.len() {
            return Err(OptimError::DimensionMismatch {
                what: "A_in vs b_in",
            });
        }
        if a_in.as_slice().iter().any(|v| !v.is_finite()) || b_in.iter().any(|v| !v.is_finite()) {
            return Err(OptimError::NonFiniteData);
        }
        self.a_in = Some(a_in);
        self.b_in = b_in;
        Ok(self)
    }

    /// Number of decision variables.
    #[inline]
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.g.len()
    }

    /// Number of equality constraints.
    #[inline]
    #[must_use]
    pub fn num_eq(&self) -> usize {
        self.b_eq.len()
    }

    /// Number of inequality constraints.
    #[inline]
    #[must_use]
    pub fn num_ineq(&self) -> usize {
        self.b_in.len()
    }

    /// Evaluates the objective `½ zᵀHz + gᵀz`.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != num_vars()`.
    #[must_use]
    pub fn objective(&self, z: &[f64]) -> f64 {
        let hz = self.h.matvec(z).expect("dimension checked at construction");
        0.5 * vecops::dot(z, &hz) + vecops::dot(&self.g, z)
    }

    /// Borrows the problem as a [`QpView`] (no data is copied).
    #[must_use]
    pub fn as_view(&self) -> QpView<'_> {
        QpView {
            h: &self.h,
            g: &self.g,
            a_eq: self.a_eq.as_ref(),
            b_eq: &self.b_eq,
            a_in: self.a_in.as_ref(),
            b_in: &self.b_in,
            a_eq_sparse: None,
            a_in_sparse: None,
            structure: self.structure,
        }
    }
}

/// A borrowed view of a convex QP — the same problem shape as
/// [`QpProblem`], but holding references instead of owned data.
///
/// This is the allocation-free entry point for hot loops that re-solve a
/// QP with data they already own: the SQP solver builds one of these per
/// major iteration instead of cloning its Hessian approximation and the
/// constraint Jacobians into a fresh [`QpProblem`].
///
/// # Examples
///
/// ```
/// use ev_optim::{QpSolver, QpView};
/// use ev_linalg::Matrix;
///
/// # fn main() -> Result<(), ev_optim::OptimError> {
/// // min (z-3)² s.t. z ≤ 1, without giving up ownership of the data.
/// let h = Matrix::from_diag(&[2.0]);
/// let g = [-6.0];
/// let a = Matrix::from_rows(&[&[1.0]]).unwrap();
/// let b = [1.0];
/// let view = QpView::new(&h, &g)?.with_inequalities(&a, &b)?;
/// let sol = QpSolver::default().solve_view(&view)?;
/// assert!((sol.z[0] - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct QpView<'a> {
    h: &'a Matrix,
    g: &'a [f64],
    a_eq: Option<&'a Matrix>,
    b_eq: &'a [f64],
    a_in: Option<&'a Matrix>,
    b_in: &'a [f64],
    a_eq_sparse: Option<&'a SparseMatrix>,
    a_in_sparse: Option<&'a SparseMatrix>,
    structure: Option<QpStructure>,
}

impl<'a> QpView<'a> {
    /// Creates an unconstrained view from the Hessian `h` and linear
    /// term `g`, validating like [`QpProblem::new`].
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::DimensionMismatch`] if `h` is not square with
    /// side `g.len()`, [`OptimError::AsymmetricHessian`] if `h` is not
    /// symmetric, and [`OptimError::NonFiniteData`] on NaN/∞ entries.
    pub fn new(h: &'a Matrix, g: &'a [f64]) -> Result<Self, OptimError> {
        if !h.is_square() || h.rows() != g.len() {
            return Err(OptimError::DimensionMismatch { what: "H vs g" });
        }
        if !h.is_symmetric(QpProblem::SYM_TOL * h.norm_max().max(1.0)) {
            return Err(OptimError::AsymmetricHessian);
        }
        if h.as_slice().iter().any(|v| !v.is_finite()) || g.iter().any(|v| !v.is_finite()) {
            return Err(OptimError::NonFiniteData);
        }
        Ok(Self {
            h,
            g,
            a_eq: None,
            b_eq: &[],
            a_in: None,
            b_in: &[],
            a_eq_sparse: None,
            a_in_sparse: None,
            structure: None,
        })
    }

    /// Adds the equality constraints `a_eq · z = b_eq`.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::DimensionMismatch`] if shapes are inconsistent
    /// and [`OptimError::NonFiniteData`] on NaN/∞ entries.
    pub fn with_equalities(
        mut self,
        a_eq: &'a Matrix,
        b_eq: &'a [f64],
    ) -> Result<Self, OptimError> {
        if a_eq.cols() != self.num_vars() || a_eq.rows() != b_eq.len() {
            return Err(OptimError::DimensionMismatch {
                what: "A_eq vs b_eq",
            });
        }
        if a_eq.as_slice().iter().any(|v| !v.is_finite()) || b_eq.iter().any(|v| !v.is_finite()) {
            return Err(OptimError::NonFiniteData);
        }
        self.a_eq = Some(a_eq);
        self.b_eq = b_eq;
        Ok(self)
    }

    /// Adds the inequality constraints `a_in · z ≤ b_in`.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::DimensionMismatch`] if shapes are inconsistent
    /// and [`OptimError::NonFiniteData`] on NaN/∞ entries.
    pub fn with_inequalities(
        mut self,
        a_in: &'a Matrix,
        b_in: &'a [f64],
    ) -> Result<Self, OptimError> {
        if a_in.cols() != self.num_vars() || a_in.rows() != b_in.len() {
            return Err(OptimError::DimensionMismatch {
                what: "A_in vs b_in",
            });
        }
        if a_in.as_slice().iter().any(|v| !v.is_finite()) || b_in.iter().any(|v| !v.is_finite()) {
            return Err(OptimError::NonFiniteData);
        }
        self.a_in = Some(a_in);
        self.b_in = b_in;
        Ok(self)
    }

    /// Adds the equality constraints `a_eq · z = b_eq` from a CSR
    /// Jacobian; required (together with [`QpView::with_structure`]) for
    /// the banded KKT backend.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::DimensionMismatch`] if shapes are inconsistent
    /// and [`OptimError::NonFiniteData`] on NaN/∞ entries.
    pub fn with_sparse_equalities(
        mut self,
        a_eq: &'a SparseMatrix,
        b_eq: &'a [f64],
    ) -> Result<Self, OptimError> {
        if a_eq.cols() != self.num_vars() || a_eq.rows() != b_eq.len() {
            return Err(OptimError::DimensionMismatch {
                what: "A_eq vs b_eq",
            });
        }
        if b_eq.iter().any(|v| !v.is_finite()) || !a_eq.norm_max().is_finite() {
            return Err(OptimError::NonFiniteData);
        }
        self.a_eq = None;
        self.a_eq_sparse = Some(a_eq);
        self.b_eq = b_eq;
        Ok(self)
    }

    /// Adds the inequality constraints `a_in · z ≤ b_in` from a CSR
    /// Jacobian, avoiding any densification of the constraint matrix.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::DimensionMismatch`] if shapes are inconsistent
    /// and [`OptimError::NonFiniteData`] on NaN/∞ entries.
    pub fn with_sparse_inequalities(
        mut self,
        a_in: &'a SparseMatrix,
        b_in: &'a [f64],
    ) -> Result<Self, OptimError> {
        if a_in.cols() != self.num_vars() || a_in.rows() != b_in.len() {
            return Err(OptimError::DimensionMismatch {
                what: "A_in vs b_in",
            });
        }
        if b_in.iter().any(|v| !v.is_finite()) || !a_in.norm_max().is_finite() {
            return Err(OptimError::NonFiniteData);
        }
        self.a_in = None;
        self.a_in_sparse = Some(a_in);
        self.b_in = b_in;
        Ok(self)
    }

    /// Declares the block-banded horizon structure of this problem (see
    /// [`QpStructure`]).
    #[must_use]
    pub fn with_structure(mut self, structure: QpStructure) -> Self {
        self.structure = Some(structure);
        self
    }

    /// The declared horizon structure, if any.
    #[inline]
    #[must_use]
    pub fn structure(&self) -> Option<QpStructure> {
        self.structure
    }

    /// Number of decision variables.
    #[inline]
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.g.len()
    }

    /// Number of equality constraints.
    #[inline]
    #[must_use]
    pub fn num_eq(&self) -> usize {
        self.b_eq.len()
    }

    /// Number of inequality constraints.
    #[inline]
    #[must_use]
    pub fn num_ineq(&self) -> usize {
        self.b_in.len()
    }

    /// Evaluates the objective `½ zᵀHz + gᵀz`.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != num_vars()`.
    #[must_use]
    pub fn objective(&self, z: &[f64]) -> f64 {
        let hz = self.h.matvec(z).expect("dimension checked at construction");
        0.5 * vecops::dot(z, &hz) + vecops::dot(self.g, z)
    }

    /// The Hessian (crate-internal, for the KKT verifier).
    pub(crate) fn h(&self) -> &Matrix {
        self.h
    }

    /// The linear term (crate-internal, for the KKT verifier).
    pub(crate) fn g(&self) -> &[f64] {
        self.g
    }

    /// The equality right-hand side (crate-internal).
    pub(crate) fn b_eq(&self) -> &[f64] {
        self.b_eq
    }

    /// The inequality right-hand side (crate-internal).
    pub(crate) fn b_in(&self) -> &[f64] {
        self.b_in
    }

    /// The bandwidth the banded KKT backend would actually factor at for
    /// this problem, or `None` when the declared structure is missing or
    /// inconsistent with the supplied Jacobians (the dense path would be
    /// used).
    ///
    /// This is the *measured* bandwidth — the widest coupling the
    /// Jacobians and Hessian really contain under the stage-interleaved
    /// ordering — which is at most [`QpStructure::bandwidth`], the
    /// declared worst case. The solver battery cross-checks the two to
    /// catch structure declarations that silently disable the banded
    /// backend.
    #[must_use]
    pub fn planned_bandwidth(&self) -> Option<usize> {
        banded_plan(self).map(|(_, w)| w)
    }

    /// The inequality Jacobian in whichever form was supplied.
    pub(crate) fn a_in_ref(&self) -> Option<ConstraintRef<'a>> {
        match (self.a_in_sparse, self.a_in) {
            (Some(s), _) => Some(ConstraintRef::Sparse(s)),
            (None, Some(d)) => Some(ConstraintRef::Dense(d)),
            (None, None) => None,
        }
    }

    /// The equality Jacobian in whichever form was supplied.
    pub(crate) fn a_eq_ref(&self) -> Option<ConstraintRef<'a>> {
        match (self.a_eq_sparse, self.a_eq) {
            (Some(s), _) => Some(ConstraintRef::Sparse(s)),
            (None, Some(d)) => Some(ConstraintRef::Dense(d)),
            (None, None) => None,
        }
    }
}

/// Solution of a QP: the minimizer and its Lagrange multipliers.
#[derive(Debug, Clone)]
pub struct QpSolution {
    /// The primal minimizer.
    pub z: Vec<f64>,
    /// Multipliers of the equality constraints.
    pub y_eq: Vec<f64>,
    /// Multipliers of the inequality constraints (non-negative).
    pub lambda_in: Vec<f64>,
    /// Objective value at `z`.
    pub objective: f64,
    /// Interior-point iterations used.
    pub iterations: usize,
    /// Which KKT factorization backend produced the final iterate.
    pub kkt_backend: QpKktBackend,
}

/// Reusable interior-point warm-start state for
/// [`QpSolver::solve_view_warm`].
///
/// Holds the inequality multipliers of the last successful solve; a
/// receding-horizon caller keeps one of these alive across control steps
/// so each QP restarts near the previous active set. The cache is purely
/// an accelerator: solves that fail leave it empty (the next solve is
/// cold), and a dimension mismatch is ignored.
#[derive(Debug, Clone, Default)]
pub struct QpWarmStart {
    lam: Vec<f64>,
}

impl QpWarmStart {
    /// An empty cache; the first solve through it starts cold.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops the cached multipliers so the next solve starts cold.
    pub fn clear(&mut self) {
        self.lam.clear();
    }

    /// Whether a previous solve has deposited multipliers.
    #[must_use]
    pub fn is_warm(&self) -> bool {
        !self.lam.is_empty()
    }
}

/// Options for the interior-point QP solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QpSolverOptions {
    /// Convergence tolerance on the complementarity measure and residuals.
    pub tolerance: f64,
    /// Maximum interior-point iterations.
    pub max_iterations: usize,
    /// Levenberg regularization added to the Hessian diagonal.
    pub regularization: f64,
    /// Prefer a dense Cholesky factorization over LU when the reduced KKT
    /// matrix is SPD (no equality constraints). Off by default: Cholesky
    /// and LU produce different floating-point roundoff, and the default
    /// dense path doubles as the bit-reproducible oracle behind recorded
    /// controller traces. Enable for standalone QPs where a ~2× cheaper
    /// dense factorization matters more than replaying historical
    /// iterates.
    pub prefer_dense_cholesky: bool,
}

impl Default for QpSolverOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-8,
            max_iterations: 100,
            regularization: 1e-10,
            prefer_dense_cholesky: false,
        }
    }
}

/// Infeasible-start primal-dual interior-point solver for convex QPs.
///
/// Implements the Mehrotra predictor–corrector scheme with a shared LU
/// factorization of the reduced KKT system per iteration. Designed as the
/// subproblem engine of [`crate::SqpSolver`] but fully usable on its own.
///
/// # Examples
///
/// ```
/// use ev_optim::{QpProblem, QpSolver};
/// use ev_linalg::Matrix;
///
/// # fn main() -> Result<(), ev_optim::OptimError> {
/// // Projection of (2, 0) onto the unit box [−1, 1]².
/// let h = Matrix::from_diag(&[2.0, 2.0]);
/// let g = vec![-4.0, 0.0];
/// let a = Matrix::from_rows(&[
///     &[1.0, 0.0], &[-1.0, 0.0], &[0.0, 1.0], &[0.0, -1.0],
/// ]).unwrap();
/// let p = QpProblem::new(h, g)?.with_inequalities(a, vec![1.0; 4])?;
/// let sol = QpSolver::default().solve(&p)?;
/// assert!((sol.z[0] - 1.0).abs() < 1e-6);
/// assert!(sol.z[1].abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct QpSolver {
    options: QpSolverOptions,
}

impl QpSolver {
    /// Creates a solver with the given options.
    #[must_use]
    pub fn new(options: QpSolverOptions) -> Self {
        Self { options }
    }

    /// Borrows the solver options.
    #[must_use]
    pub fn options(&self) -> &QpSolverOptions {
        &self.options
    }

    /// Solves the QP starting from the origin.
    ///
    /// # Errors
    ///
    /// Returns [`OptimError::QpMaxIterations`] when the KKT residuals do
    /// not meet tolerance within the iteration budget (typically an
    /// infeasible or unbounded problem) and propagates factorization
    /// failures as [`OptimError::Linalg`].
    pub fn solve(&self, problem: &QpProblem) -> Result<QpSolution, OptimError> {
        let z0 = vec![0.0; problem.num_vars()];
        self.solve_from(problem, &z0)
    }

    /// Solves the QP from a warm-start primal point `z0`.
    ///
    /// # Errors
    ///
    /// Same as [`QpSolver::solve`]; additionally returns
    /// [`OptimError::DimensionMismatch`] if `z0.len() != num_vars()`.
    pub fn solve_from(&self, problem: &QpProblem, z0: &[f64]) -> Result<QpSolution, OptimError> {
        self.solve_view_from(&problem.as_view(), z0)
    }

    /// Solves a borrowed-view QP starting from the origin (the
    /// allocation-free entry point used by the SQP hot loop).
    ///
    /// # Errors
    ///
    /// Same as [`QpSolver::solve`].
    pub fn solve_view(&self, view: &QpView<'_>) -> Result<QpSolution, OptimError> {
        let z0 = vec![0.0; view.num_vars()];
        self.solve_view_from(view, z0.as_slice())
    }

    /// Solves a borrowed-view QP from a warm-start primal point `z0`.
    ///
    /// # Errors
    ///
    /// Same as [`QpSolver::solve_from`].
    pub fn solve_view_from(
        &self,
        problem: &QpView<'_>,
        z0: &[f64],
    ) -> Result<QpSolution, OptimError> {
        self.solve_view_inner(problem, z0, None)
    }

    /// Solves a borrowed-view QP from a warm-start primal point `z0`,
    /// seeding the interior-point duals from `warm` and depositing the
    /// converged multipliers back into it on success.
    ///
    /// Successive QP subproblems of a receding-horizon controller share
    /// their active set almost verbatim, so restarting the interior-point
    /// method from the previous multipliers instead of the cold
    /// `(s, λ) = (max(b − Cz, 1), 1)` point typically more than halves the
    /// iteration count. The warm data is only an initial guess — the
    /// solver still iterates to the same KKT tolerance, so a stale or
    /// mismatched cache costs iterations, never correctness (a cache whose
    /// dimension does not match `num_ineq` is ignored entirely).
    ///
    /// # Errors
    ///
    /// Same as [`QpSolver::solve_from`].
    pub fn solve_view_warm(
        &self,
        problem: &QpView<'_>,
        z0: &[f64],
        warm: &mut QpWarmStart,
    ) -> Result<QpSolution, OptimError> {
        self.solve_view_inner(problem, z0, Some(warm))
    }

    fn solve_view_inner(
        &self,
        problem: &QpView<'_>,
        z0: &[f64],
        mut warm: Option<&mut QpWarmStart>,
    ) -> Result<QpSolution, OptimError> {
        let n = problem.num_vars();
        if z0.len() != n {
            return Err(OptimError::DimensionMismatch { what: "z0 vs H" });
        }
        let me = problem.num_eq();
        let mi = problem.num_ineq();

        // No inequalities: the KKT conditions are a single linear system.
        if mi == 0 {
            return self.solve_equality_only(problem, me);
        }

        let a_in = problem.a_in_ref().expect("mi > 0 implies A_in");
        let a_eq = problem.a_eq_ref();
        let mut z = z0.to_vec();
        let mut y = vec![0.0; me];

        // Per-solve workspaces: everything the interior-point loop touches
        // is allocated once here and reused across iterations.
        let mut ws = KktWorkspace::new(problem, self.options.prefer_dense_cholesky);
        let mut hz = vec![0.0; n];
        let mut rd = vec![0.0; n];
        let mut rp = vec![0.0; me];
        let mut cz = vec![0.0; mi];
        let mut rc = vec![0.0; mi];
        let mut wvec = vec![0.0; mi];
        let mut r_slam = vec![0.0; mi];
        let mut rhs = vec![0.0; n + me];
        let mut dz = vec![0.0; n];
        let mut dy = vec![0.0; me];
        let mut ds = vec![0.0; mi];
        let mut dlam = vec![0.0; mi];
        let mut ds_aff = vec![0.0; mi];
        let mut dlam_aff = vec![0.0; mi];
        let mut cdz = vec![0.0; mi];
        let mut jt = vec![0.0; n];

        // Strictly positive slack/dual initialization: from the previous
        // solve's multipliers when a matching warm cache was supplied
        // (slacks re-derived from the *current* constraint values so an
        // infeasible start still yields s > 0), cold (s ≥ 1, λ = 1)
        // otherwise.
        a_in.matvec_into(&z, &mut cz);
        let warm_lam = warm
            .as_deref_mut()
            .filter(|w| w.lam.len() == mi)
            .map(|w| std::mem::take(&mut w.lam));
        let (mut s, mut lam) = match warm_lam {
            Some(prev) => {
                let s = problem
                    .b_in
                    .iter()
                    .zip(&cz)
                    .map(|(b, c)| (b - c).max(1e-3))
                    .collect();
                let lam = prev.iter().map(|l| l.max(1e-3)).collect();
                (s, lam)
            }
            None => {
                let s: Vec<f64> = problem
                    .b_in
                    .iter()
                    .zip(&cz)
                    .map(|(b, c)| (b - c).max(1.0))
                    .collect();
                (s, vec![1.0; mi])
            }
        };

        // When the declared horizon structure comes with a truly
        // block-diagonal Hessian (the SQP's partitioned BFGS maintains
        // one), H·z shrinks from O(n²) to O(n·vb). Hand-built structured
        // problems may still couple adjacent blocks inside the band, so
        // the in-band below-block entries are checked once per solve;
        // entries beyond the declared band are already promised zero.
        // Structure-less problems keep the dense matvec with its
        // historical summation order.
        let h_block = problem.structure.and_then(|st| {
            let vb = st.vars_per_block;
            if vb == 0 || !n.is_multiple_of(vb) {
                return None;
            }
            let w_max = st.bandwidth();
            let stride = vb + st.eq_per_block;
            let var_pos = |j: usize| (j / vb) * stride + (j % vb);
            let block_diag = (0..n).all(|j| {
                let block_start = (j / vb) * vb;
                (0..block_start)
                    .rev()
                    .take_while(|&j2| var_pos(j) - var_pos(j2) <= w_max)
                    .all(|j2| problem.h.get(j, j2) == 0.0)
            });
            block_diag.then_some(vb)
        });

        // For a verified block-diagonal H the off-block entries are zero,
        // so scanning only the diagonal blocks yields the same max-norm as
        // the full O(n²) sweep.
        let h_norm = match h_block {
            Some(vb) => {
                let mut m = 0.0f64;
                for b in (0..n).step_by(vb) {
                    for r in b..b + vb {
                        for c in b..b + vb {
                            let v = problem.h.get(r, c).abs();
                            if v > m {
                                m = v;
                            }
                        }
                    }
                }
                m
            }
            None => problem.h.norm_max(),
        };
        let data_scale = 1.0
            + h_norm
            + vecops::norm_inf(problem.g)
            + a_eq.map_or(0.0, |a| a.norm_max())
            + a_in.norm_max();

        let reg = self.options.regularization.max(1e-12);
        let tol = self.options.tolerance;
        // Scale against which iterate divergence and irreducible primal
        // residuals are judged: the constraint right-hand sides bound the
        // geometry of the feasible set the same way the matrix norms in
        // `data_scale` bound the operator magnitudes.
        let geom_scale =
            data_scale + vecops::norm_inf(problem.b_in) + vecops::norm_inf(problem.b_eq);
        // Residual threshold separating "still converging" from "stuck":
        // √tol sits orders of magnitude above the convergence tolerance
        // yet far below any genuine constraint gap.
        let stuck_tol = tol.max(f64::EPSILON).sqrt();

        for iter in 0..self.options.max_iterations {
            // Residuals: rd = Hz + g + A_eqᵀy + A_inᵀλ, rp = A_eq·z − b_eq,
            // rc = A_in·z + s − b_in.
            match h_block {
                Some(vb) => block_diag_matvec(problem.h, vb, &z, &mut hz),
                None => matvec_into(problem.h, &z, &mut hz),
            }
            for r in 0..n {
                rd[r] = hz[r] + problem.g[r];
            }
            // Each transposed product accumulates in its own buffer and is
            // added to rd as one elementwise pass — the exact summation
            // order of a standalone matvec_transposed, so iterates stay
            // bit-identical to the historical dense path.
            if let Some(a_eq) = a_eq {
                jt.fill(0.0);
                for r in 0..me {
                    a_eq.add_scaled_row(r, y[r], &mut jt);
                }
                for r in 0..n {
                    rd[r] += jt[r];
                }
            }
            jt.fill(0.0);
            for i in 0..mi {
                a_in.add_scaled_row(i, lam[i], &mut jt);
            }
            for r in 0..n {
                rd[r] += jt[r];
            }
            if let Some(a_eq) = a_eq {
                a_eq.matvec_into(&z, &mut rp);
                for r in 0..me {
                    rp[r] -= problem.b_eq[r];
                }
            }
            a_in.matvec_into(&z, &mut cz);
            for i in 0..mi {
                rc[i] = cz[i] + s[i] - problem.b_in[i];
            }
            let mu = vecops::dot(&s, &lam) / mi as f64;

            let converged = mu <= tol * data_scale
                && vecops::norm_inf(&rd) <= tol * data_scale
                && vecops::norm_inf(&rp) <= tol * data_scale
                && vecops::norm_inf(&rc) <= tol * data_scale;
            if converged {
                let objective = match h_block {
                    Some(vb) => {
                        block_diag_matvec(problem.h, vb, &z, &mut hz);
                        0.5 * vecops::dot(&z, &hz) + vecops::dot(problem.g, &z)
                    }
                    None => problem.objective(&z),
                };
                if let Some(w) = warm.as_deref_mut() {
                    w.lam.clear();
                    w.lam.extend_from_slice(&lam);
                }
                return Ok(QpSolution {
                    objective,
                    z,
                    y_eq: y,
                    lambda_in: lam,
                    iterations: iter,
                    kkt_backend: ws.backend,
                });
            }

            // Reduced KKT matrix: [H + CᵀWC  A_eqᵀ; A_eq  −δI], W = Λ/S.
            for i in 0..mi {
                wvec[i] = lam[i] / s[i];
            }
            ws.factor(problem, a_in, &wvec, reg)?;

            // Affine (predictor) direction: target σ = 0.
            for i in 0..mi {
                r_slam[i] = s[i] * lam[i];
            }
            newton_step(
                &mut ws,
                a_in,
                &rd,
                &rp,
                &rc,
                &s,
                &lam,
                &r_slam,
                &mut rhs,
                &mut dz,
                &mut dy,
                &mut ds_aff,
                &mut dlam_aff,
                &mut cdz,
            )?;
            let alpha_aff = step_length(&s, &ds_aff, &lam, &dlam_aff);
            let mu_aff = {
                let mut acc = 0.0;
                for i in 0..mi {
                    acc += (s[i] + alpha_aff * ds_aff[i]) * (lam[i] + alpha_aff * dlam_aff[i]);
                }
                acc / mi as f64
            };
            let sigma = (mu_aff / mu).powi(3).clamp(0.0, 1.0);

            // Corrector direction with centering + Mehrotra correction.
            for i in 0..mi {
                r_slam[i] = s[i] * lam[i] + ds_aff[i] * dlam_aff[i] - sigma * mu;
            }
            newton_step(
                &mut ws, a_in, &rd, &rp, &rc, &s, &lam, &r_slam, &mut rhs, &mut dz, &mut dy,
                &mut ds, &mut dlam, &mut cdz,
            )?;

            let alpha = 0.995 * step_length(&s, &ds, &lam, &dlam);
            let alpha = alpha.min(1.0);
            vecops::axpy(alpha, &dz, &mut z);
            vecops::axpy(alpha, &dy, &mut y);
            vecops::axpy(alpha, &ds, &mut s);
            vecops::axpy(alpha, &dlam, &mut lam);

            // Divergence guard: the iterates of a solvable QP stay within
            // a bounded multiple of the problem geometry, so a primal
            // point ten orders of magnitude beyond it will never come
            // back. Near-feasible divergence is an unbounded objective
            // (an LP ray the constraints fail to cap); divergence with an
            // irreducible primal residual is the dual ray of an
            // infeasible constraint set.
            let z_norm = vecops::norm_inf(&z);
            if z_norm > 1e10 * geom_scale {
                // Judged relative to the diverged iterate: along a feasible
                // ray the residual stays bounded while ‖z‖ explodes
                // (unbounded objective); if the residual grew with the
                // iterate, no feasible ray exists (infeasible constraints).
                let primal = vecops::norm_inf(&rp).max(vecops::norm_inf(&rc));
                return Err(if primal <= stuck_tol * z_norm {
                    OptimError::QpUnbounded { z_norm }
                } else {
                    OptimError::QpInfeasible {
                        primal_residual: primal,
                    }
                });
            }
        }

        // Re-evaluate residuals for the error report.
        matvec_into(problem.h, &z, &mut hz);
        for r in 0..n {
            rd[r] = hz[r] + problem.g[r];
        }
        if let Some(a_eq) = a_eq {
            a_eq.matvec_into(&z, &mut rp);
            for r in 0..me {
                rp[r] -= problem.b_eq[r];
            }
        }
        a_in.matvec_into(&z, &mut cz);
        for i in 0..mi {
            rc[i] = cz[i] + s[i] - problem.b_in[i];
        }
        let primal_residual = vecops::norm_inf(&rp).max(vecops::norm_inf(&rc));
        // A primal residual stuck far above the convergence scale after a
        // full iteration budget is the signature of inconsistent
        // constraints: route it as infeasibility so callers (SQP elastic
        // mode, the battery harness) can react to the cause rather than
        // the symptom. Slow-but-feasible problems keep the generic
        // max-iterations report.
        if primal_residual > stuck_tol * geom_scale {
            return Err(OptimError::QpInfeasible { primal_residual });
        }
        Err(OptimError::QpMaxIterations {
            mu: vecops::dot(&s, &lam) / mi as f64,
            primal_residual,
            dual_residual: vecops::norm_inf(&rd),
        })
    }

    /// Direct KKT solve when the problem has no inequality constraints.
    fn solve_equality_only(
        &self,
        problem: &QpView<'_>,
        me: usize,
    ) -> Result<QpSolution, OptimError> {
        let n = problem.num_vars();
        let dim = n + me;
        let delta = self.options.regularization.max(1e-12);
        let mut kkt = Matrix::zeros(dim, dim);
        for r in 0..n {
            for c in 0..n {
                kkt.set(r, c, problem.h.get(r, c));
            }
            kkt.add_at(r, r, delta);
        }
        if let Some(a_eq) = problem.a_eq_ref() {
            for r in 0..me {
                match a_eq {
                    ConstraintRef::Dense(m) => {
                        for c in 0..n {
                            kkt.set(n + r, c, m.get(r, c));
                            kkt.set(c, n + r, m.get(r, c));
                        }
                    }
                    ConstraintRef::Sparse(s) => {
                        let (cols, vals) = s.row(r);
                        for (c, v) in cols.iter().zip(vals) {
                            kkt.set(n + r, *c, *v);
                            kkt.set(*c, n + r, *v);
                        }
                    }
                }
            }
        }
        // Quasi-definite −δ block: keeps the factorization nonsingular
        // when equality rows are linearly dependent (duplicated or
        // rescaled rows), at an O(δ·‖y‖) perturbation of the solution.
        for r in 0..me {
            kkt.add_at(n + r, n + r, -delta);
        }
        let mut rhs = vec![0.0; dim];
        for i in 0..n {
            rhs[i] = -problem.g[i];
        }
        rhs[n..(me + n)].copy_from_slice(&problem.b_eq[..me]);
        let sol = Lu::factor(&kkt)?.solve(&rhs)?;
        let z = sol[..n].to_vec();
        let y_eq = sol[n..].to_vec();
        // The regularized system always has an answer, even when the
        // equalities contradict each other; only the residual tells an
        // inconsistent system from a consistent rank-deficient one.
        if me > 0 {
            let mut az = vec![0.0; me];
            if let Some(a_eq) = problem.a_eq_ref() {
                a_eq.matvec_into(&z, &mut az);
            }
            let mut primal_residual = 0.0f64;
            for r in 0..me {
                primal_residual = primal_residual.max((az[r] - problem.b_eq[r]).abs());
            }
            let scale = 1.0
                + problem.h.norm_max()
                + vecops::norm_inf(problem.g)
                + vecops::norm_inf(problem.b_eq)
                + problem.a_eq_ref().map_or(0.0, |a| a.norm_max());
            let stuck_tol = self.options.tolerance.max(f64::EPSILON).sqrt();
            if !primal_residual.is_finite() || primal_residual > stuck_tol * scale {
                return Err(OptimError::QpInfeasible { primal_residual });
            }
        }
        Ok(QpSolution {
            objective: problem.objective(&z),
            z,
            y_eq,
            lambda_in: Vec::new(),
            iterations: 1,
            kkt_backend: QpKktBackend::DenseLu,
        })
    }
}

/// `out = M·x` for a dense matrix without allocating.
fn matvec_into(m: &Matrix, x: &[f64], out: &mut [f64]) {
    for r in 0..m.rows() {
        out[r] = vecops::dot(m.row(r), x);
    }
}

/// `out = M·x` for a block-diagonal matrix with `vb × vb` blocks, reading
/// only the in-block entries. Every off-block entry is structurally zero
/// under a declared [`QpStructure`], so this matches the dense matvec up
/// to the sign of exact zeros.
fn block_diag_matvec(m: &Matrix, vb: usize, x: &[f64], out: &mut [f64]) {
    for (k, chunk) in out.chunks_mut(vb).enumerate() {
        let lo = k * vb;
        let xb = &x[lo..lo + vb];
        for (i, o) in chunk.iter_mut().enumerate() {
            *o = vecops::dot(&m.row(lo + i)[lo..lo + vb], xb);
        }
    }
}

/// Solves one Newton system given the factored KKT workspace and the
/// complementarity right-hand side `r_slam` (entries `sᵢλᵢ − target`),
/// writing the directions into the provided buffers.
#[allow(clippy::too_many_arguments)]
fn newton_step(
    ws: &mut KktWorkspace,
    a_in: ConstraintRef<'_>,
    rd: &[f64],
    rp: &[f64],
    rc: &[f64],
    s: &[f64],
    lam: &[f64],
    r_slam: &[f64],
    rhs: &mut [f64],
    dz: &mut [f64],
    dy: &mut [f64],
    ds: &mut [f64],
    dlam: &mut [f64],
    cdz: &mut [f64],
) -> Result<(), OptimError> {
    let n = dz.len();
    let me = dy.len();
    let mi = s.len();

    // rhs1 = −rd + Σᵢ cᵢ · (r_slamᵢ − λᵢ·rcᵢ)/sᵢ
    for r in 0..n {
        rhs[r] = -rd[r];
    }
    for i in 0..mi {
        let coeff = (r_slam[i] - lam[i] * rc[i]) / s[i];
        a_in.add_scaled_row(i, coeff, &mut rhs[..n]);
    }
    for r in 0..me {
        rhs[n + r] = -rp[r];
    }
    ws.solve_in_place(rhs)?;
    dz.copy_from_slice(&rhs[..n]);
    dy.copy_from_slice(&rhs[n..]);

    a_in.matvec_into(dz, cdz);
    for i in 0..mi {
        ds[i] = -rc[i] - cdz[i];
        dlam[i] = -(r_slam[i] + lam[i] * ds[i]) / s[i];
    }
    Ok(())
}

/// Per-solve scratch for assembling and factoring the reduced KKT matrix
/// `[H + CᵀWC, A_eqᵀ; A_eq, −δI]` with whichever backend fits the problem:
/// banded LDLᵀ when a valid [`QpStructure`] plan exists, dense Cholesky
/// when the reduced system is SPD (no equalities), dense LU otherwise.
/// Backends degrade monotonically within one solve: a banded or Cholesky
/// factorization failure permanently drops to the next denser backend, so
/// the dense LU oracle is always the last resort.
struct KktWorkspace {
    n: usize,
    me: usize,
    /// Stage-interleaved position of each unknown (vars then eq
    /// multipliers); empty when no banded plan is active.
    pos: Vec<usize>,
    bandwidth: usize,
    banded: bool,
    band: BandedMatrix,
    band_factor: BandedCholesky,
    perm_rhs: Vec<f64>,
    dense: Option<Matrix>,
    cholesky: Option<Cholesky>,
    use_cholesky: bool,
    lu: Option<Lu>,
    backend: QpKktBackend,
}

impl KktWorkspace {
    fn new(problem: &QpView<'_>, prefer_dense_cholesky: bool) -> Self {
        let n = problem.num_vars();
        let me = problem.num_eq();
        let (pos, bandwidth, banded) = match banded_plan(problem) {
            Some((pos, w)) => (pos, w, true),
            None => (Vec::new(), 0, false),
        };
        Self {
            n,
            me,
            pos,
            bandwidth,
            banded,
            band: BandedMatrix::default(),
            band_factor: BandedCholesky::new(),
            perm_rhs: vec![0.0; n + me],
            dense: None,
            cholesky: None,
            // With no equality block the reduced KKT matrix is SPD, but
            // Cholesky is only used when the caller opted in (it changes
            // roundoff relative to the historical LU iterates).
            use_cholesky: prefer_dense_cholesky && me == 0,
            lu: None,
            backend: QpKktBackend::DenseLu,
        }
    }

    /// Assembles and factors the KKT matrix for the current weights
    /// `wvec = λ/s`, degrading to a denser backend on factorization
    /// failure.
    fn factor(
        &mut self,
        problem: &QpView<'_>,
        a_in: ConstraintRef<'_>,
        wvec: &[f64],
        reg: f64,
    ) -> Result<(), OptimError> {
        if self.banded {
            match self.factor_banded(problem, wvec, reg) {
                Ok(()) => {
                    self.backend = QpKktBackend::Banded;
                    return Ok(());
                }
                // E.g. a pivot collapsed under extreme complementarity
                // weights: fall back to the dense oracle for the rest of
                // this solve.
                Err(_) => self.banded = false,
            }
        }
        self.factor_dense(problem, a_in, wvec, reg)
    }

    fn factor_banded(
        &mut self,
        problem: &QpView<'_>,
        wvec: &[f64],
        reg: f64,
    ) -> Result<(), OptimError> {
        let (n, me) = (self.n, self.me);
        self.band.reset(n + me, self.bandwidth);
        let w = self.band.bandwidth();

        // Hessian block: positions are increasing in the variable index,
        // so a sliding window bounds the in-band column range. Entries
        // outside the band must be structurally zero (the structure
        // declaration promises a block-diagonal Hessian).
        let h = problem.h;
        let mut jmin = 0usize;
        for j in 0..n {
            while self.pos[j] - self.pos[jmin] > w {
                jmin += 1;
            }
            for j2 in jmin..=j {
                let v = h.get(j, j2);
                if v != 0.0 {
                    self.band.set(self.pos[j], self.pos[j2], v);
                }
            }
            self.band.add_at(self.pos[j], self.pos[j], reg);
        }
        debug_assert!(
            (0..n).all(|j| (0..j.saturating_sub(w)).all(|j2| h.get(j, j2) == 0.0)),
            "Hessian has couplings outside the declared block structure"
        );

        // CᵀWC from the CSR inequality Jacobian (guaranteed by the plan).
        let a_in = problem
            .a_in_sparse
            .expect("banded plan requires a CSR inequality Jacobian");
        for i in 0..a_in.rows() {
            let wi = wvec[i];
            if wi == 0.0 {
                continue;
            }
            let (cols, vals) = a_in.row(i);
            for a in 0..cols.len() {
                let pa = self.pos[cols[a]];
                let va = wi * vals[a];
                for b in 0..=a {
                    self.band.add_at(pa, self.pos[cols[b]], va * vals[b]);
                }
            }
        }

        // Equality rows and the −δ regularized equality diagonal.
        if let Some(a_eq) = problem.a_eq_sparse {
            for r in 0..me {
                let (cols, vals) = a_eq.row(r);
                let pr = self.pos[n + r];
                for (c, v) in cols.iter().zip(vals) {
                    self.band.set(pr, self.pos[*c], *v);
                }
                self.band.set(pr, pr, -1e-12);
            }
        }
        self.band_factor.factor(&self.band)?;
        Ok(())
    }

    fn factor_dense(
        &mut self,
        problem: &QpView<'_>,
        a_in: ConstraintRef<'_>,
        wvec: &[f64],
        reg: f64,
    ) -> Result<(), OptimError> {
        let (n, me) = (self.n, self.me);
        let dim = n + me;
        if self.dense.as_ref().is_none_or(|m| m.rows() != dim) {
            self.dense = Some(Matrix::zeros(dim, dim));
        }
        let kkt = self.dense.as_mut().expect("just ensured");

        // Hessian block overwrites last iteration's values wholesale; the
        // constant equality blocks below only rewrite their own entries.
        for r in 0..n {
            for c in 0..n {
                kkt.set(r, c, problem.h.get(r, c));
            }
        }
        match a_in {
            ConstraintRef::Dense(m) => {
                for i in 0..m.rows() {
                    let wi = wvec[i];
                    let row = m.row(i);
                    for r in 0..n {
                        let ar = row[r];
                        if ar == 0.0 {
                            continue;
                        }
                        for c in 0..n {
                            kkt.add_at(r, c, wi * ar * row[c]);
                        }
                    }
                }
            }
            ConstraintRef::Sparse(s) => {
                for i in 0..s.rows() {
                    let wi = wvec[i];
                    let (cols, vals) = s.row(i);
                    for a in 0..cols.len() {
                        let va = wi * vals[a];
                        for b in 0..cols.len() {
                            kkt.add_at(cols[a], cols[b], va * vals[b]);
                        }
                    }
                }
            }
        }
        for r in 0..n {
            kkt.add_at(r, r, reg);
        }
        if me > 0 {
            match problem.a_eq_ref().expect("me > 0 implies A_eq") {
                ConstraintRef::Dense(m) => {
                    for r in 0..me {
                        for c in 0..n {
                            kkt.set(n + r, c, m.get(r, c));
                            kkt.set(c, n + r, m.get(r, c));
                        }
                        kkt.set(n + r, n + r, -1e-12);
                    }
                }
                ConstraintRef::Sparse(s) => {
                    for r in 0..me {
                        let (cols, vals) = s.row(r);
                        for (c, v) in cols.iter().zip(vals) {
                            kkt.set(n + r, *c, *v);
                            kkt.set(*c, n + r, *v);
                        }
                        kkt.set(n + r, n + r, -1e-12);
                    }
                }
            }
        }

        if self.use_cholesky {
            let ok = match self.cholesky.as_mut() {
                Some(c) if c.dim() == dim => c.refactor(kkt).is_ok(),
                _ => match Cholesky::factor(kkt) {
                    Ok(c) => {
                        self.cholesky = Some(c);
                        true
                    }
                    Err(_) => false,
                },
            };
            if ok {
                self.backend = QpKktBackend::DenseCholesky;
                return Ok(());
            }
            // Numerically indefinite despite SPD theory (extreme W): use
            // the LU oracle for the rest of this solve.
            self.cholesky = None;
            self.use_cholesky = false;
        }
        self.lu = None;
        self.lu = Some(Lu::factor(kkt)?);
        self.backend = QpKktBackend::DenseLu;
        Ok(())
    }

    /// Solves the factored KKT system in place (permuting through the
    /// stage-interleaved ordering for the banded backend).
    fn solve_in_place(&mut self, rhs: &mut [f64]) -> Result<(), OptimError> {
        match self.backend {
            QpKktBackend::Banded => {
                for (i, &p) in self.pos.iter().enumerate() {
                    self.perm_rhs[p] = rhs[i];
                }
                self.band_factor.solve_in_place(&mut self.perm_rhs)?;
                for (i, &p) in self.pos.iter().enumerate() {
                    rhs[i] = self.perm_rhs[p];
                }
            }
            QpKktBackend::DenseCholesky => {
                self.cholesky
                    .as_ref()
                    .expect("backend implies factor")
                    .solve_in_place(rhs)?;
            }
            QpKktBackend::DenseLu => {
                let x = self
                    .lu
                    .as_ref()
                    .expect("backend implies factor")
                    .solve(rhs)?;
                rhs.copy_from_slice(&x);
            }
        }
        Ok(())
    }
}

/// Validates a declared [`QpStructure`] against the problem's Jacobians
/// and, if consistent, returns the stage-interleaved position of every
/// unknown plus the KKT bandwidth.
fn banded_plan(problem: &QpView<'_>) -> Option<(Vec<usize>, usize)> {
    let st = problem.structure?;
    let n = problem.num_vars();
    let me = problem.num_eq();
    let (vb, eb) = (st.vars_per_block, st.eq_per_block);
    if vb == 0 || n == 0 || !n.is_multiple_of(vb) {
        return None;
    }
    let blocks = n / vb;
    if me != blocks * eb {
        return None;
    }
    // The banded assembly reads constraint rows in CSR form only.
    let a_in = problem.a_in_sparse?;
    if me > 0 && problem.a_eq_sparse.is_none() {
        return None;
    }
    // Stage-interleaved position of variable `j` / equality multiplier `r`;
    // strictly increasing in the column index, so a row's in-band width is
    // the position distance between its first and last column.
    let stride = vb + eb;
    let var_pos = |j: usize| (j / vb) * stride + (j % vb);
    let eq_pos = |r: usize| (r / eb) * stride + vb + (r % eb);

    // Validate the declared structure and, as the same pass, measure the
    // bandwidth this problem *actually* needs. The declaration's
    // `st.bandwidth()` is the worst case (every variable of the previous
    // block coupled); real horizon problems touch only a suffix of it, and
    // the LDLᵀ factor cost scales with the square of the bandwidth.
    let mut w_req = vb.saturating_sub(1).max(eb.saturating_sub(1));
    for r in 0..a_in.rows() {
        let (cols, _) = a_in.row(r);
        if let (Some(&first), Some(&last)) = (cols.first(), cols.last()) {
            if last / vb > first / vb + st.lookback {
                return None;
            }
            w_req = w_req.max(var_pos(last) - var_pos(first));
        }
    }
    if let Some(a_eq) = problem.a_eq_sparse {
        for r in 0..a_eq.rows() {
            let kr = r / eb;
            let (cols, _) = a_eq.row(r);
            let pr = eq_pos(r);
            for &c in cols {
                let kc = c / vb;
                if kc > kr || kc + st.lookback < kr {
                    return None;
                }
                w_req = w_req.max(pr.abs_diff(var_pos(c)));
            }
        }
    }
    // The Hessian may couple variables across blocks anywhere inside the
    // declared band (the SQP's partitioned BFGS keeps it block-diagonal,
    // but hand-built problems need not) — measure its real couplings too.
    let w_max = st.bandwidth();
    for j in 0..n {
        let pj = var_pos(j);
        for j2 in (0..j).rev() {
            let d = pj - var_pos(j2);
            if d > w_max {
                break;
            }
            if d > w_req && problem.h.get(j, j2) != 0.0 {
                w_req = d;
            }
        }
    }
    let mut pos = vec![0usize; n + me];
    for (j, p) in pos.iter_mut().take(n).enumerate() {
        *p = var_pos(j);
    }
    for r in 0..me {
        pos[n + r] = eq_pos(r);
    }
    Some((pos, w_req.min(w_max)))
}

/// Largest α ∈ (0, 1] keeping `s + α·ds > 0` and `λ + α·dλ > 0`.
fn step_length(s: &[f64], ds: &[f64], lam: &[f64], dlam: &[f64]) -> f64 {
    let mut alpha: f64 = 1.0;
    for i in 0..s.len() {
        if ds[i] < 0.0 {
            alpha = alpha.min(-s[i] / ds[i]);
        }
        if dlam[i] < 0.0 {
            alpha = alpha.min(-lam[i] / dlam[i]);
        }
    }
    alpha.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(p: &QpProblem) -> QpSolution {
        QpSolver::default().solve(p).expect("qp should solve")
    }

    #[test]
    fn unconstrained_quadratic() {
        // min (z0-1)² + (z1+2)²
        let p = QpProblem::new(Matrix::from_diag(&[2.0, 2.0]), vec![-2.0, 4.0]).unwrap();
        let sol = solve(&p);
        assert!((sol.z[0] - 1.0).abs() < 1e-7);
        assert!((sol.z[1] + 2.0).abs() < 1e-7);
    }

    #[test]
    fn equality_constrained() {
        // min z0² + z1² s.t. z0 + z1 = 2 → (1, 1).
        let p = QpProblem::new(Matrix::from_diag(&[2.0, 2.0]), vec![0.0, 0.0])
            .unwrap()
            .with_equalities(Matrix::from_rows(&[&[1.0, 1.0]]).unwrap(), vec![2.0])
            .unwrap();
        let sol = solve(&p);
        assert!((sol.z[0] - 1.0).abs() < 1e-7);
        assert!((sol.z[1] - 1.0).abs() < 1e-7);
        // Multiplier: ∇f + Aᵀy = 0 → 2·1 + y = 0 → y = −2.
        assert!((sol.y_eq[0] + 2.0).abs() < 1e-6);
    }

    #[test]
    fn active_inequality() {
        // min (z-3)² s.t. z ≤ 1 → z = 1, λ = 4.
        let p = QpProblem::new(Matrix::from_diag(&[2.0]), vec![-6.0])
            .unwrap()
            .with_inequalities(Matrix::from_rows(&[&[1.0]]).unwrap(), vec![1.0])
            .unwrap();
        let sol = solve(&p);
        assert!((sol.z[0] - 1.0).abs() < 1e-6);
        assert!((sol.lambda_in[0] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn inactive_inequality() {
        // min (z-3)² s.t. z ≤ 10 → unconstrained optimum 3, λ = 0.
        let p = QpProblem::new(Matrix::from_diag(&[2.0]), vec![-6.0])
            .unwrap()
            .with_inequalities(Matrix::from_rows(&[&[1.0]]).unwrap(), vec![10.0])
            .unwrap();
        let sol = solve(&p);
        assert!((sol.z[0] - 3.0).abs() < 1e-6);
        assert!(sol.lambda_in[0].abs() < 1e-5);
    }

    #[test]
    fn box_constrained_projection() {
        // Project (5, -5) onto [0,1]².
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[-1.0, 0.0], &[0.0, 1.0], &[0.0, -1.0]]).unwrap();
        let p = QpProblem::new(Matrix::from_diag(&[2.0, 2.0]), vec![-10.0, 10.0])
            .unwrap()
            .with_inequalities(a, vec![1.0, 0.0, 1.0, 0.0])
            .unwrap();
        let sol = solve(&p);
        assert!((sol.z[0] - 1.0).abs() < 1e-6);
        assert!(sol.z[1].abs() < 1e-6);
    }

    #[test]
    fn mixed_equality_inequality() {
        // min ½‖z‖² s.t. z0 + z1 + z2 = 3, z0 ≤ 0.5.
        // Without the bound → (1,1,1); with it, z0 = 0.5, z1 = z2 = 1.25.
        let p = QpProblem::new(Matrix::identity(3), vec![0.0; 3])
            .unwrap()
            .with_equalities(Matrix::from_rows(&[&[1.0, 1.0, 1.0]]).unwrap(), vec![3.0])
            .unwrap()
            .with_inequalities(Matrix::from_rows(&[&[1.0, 0.0, 0.0]]).unwrap(), vec![0.5])
            .unwrap();
        let sol = solve(&p);
        assert!((sol.z[0] - 0.5).abs() < 1e-6, "{:?}", sol.z);
        assert!((sol.z[1] - 1.25).abs() < 1e-6);
        assert!((sol.z[2] - 1.25).abs() < 1e-6);
    }

    #[test]
    fn semidefinite_hessian() {
        // H has a zero eigenvalue along z1; inequality pins z1.
        let h = Matrix::from_diag(&[2.0, 0.0]);
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, -1.0]]).unwrap();
        let p = QpProblem::new(h, vec![-2.0, 1.0])
            .unwrap()
            .with_inequalities(a, vec![5.0, 5.0])
            .unwrap();
        let sol = solve(&p);
        // z0 = 1 from the curvature; z1 driven to its lower bound −5 by g1 = 1.
        assert!((sol.z[0] - 1.0).abs() < 1e-5);
        assert!((sol.z[1] + 5.0).abs() < 1e-4);
    }

    #[test]
    fn kkt_conditions_hold() {
        let a_in = Matrix::from_rows(&[&[1.0, 1.0], &[-1.0, 2.0], &[2.0, -1.0]]).unwrap();
        let p = QpProblem::new(
            Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 2.0]]).unwrap(),
            vec![1.0, 1.0],
        )
        .unwrap()
        .with_inequalities(a_in.clone(), vec![2.0, 2.0, 3.0])
        .unwrap();
        let sol = solve(&p);
        // Stationarity: Hz + g + Cᵀλ ≈ 0.
        let hz = p.h.matvec(&sol.z).unwrap();
        let ctl = a_in.matvec_transposed(&sol.lambda_in).unwrap();
        for i in 0..2 {
            assert!((hz[i] + p.g[i] + ctl[i]).abs() < 1e-5);
        }
        // Primal feasibility and dual non-negativity.
        let cz = a_in.matvec(&sol.z).unwrap();
        for i in 0..3 {
            assert!(cz[i] <= p.b_in[i] + 1e-6);
            assert!(sol.lambda_in[i] >= -1e-9);
            // Complementary slackness.
            assert!(sol.lambda_in[i] * (p.b_in[i] - cz[i]) < 1e-4);
        }
    }

    #[test]
    fn infeasible_problem_errors() {
        // z ≤ 0 and −z ≤ −1 (z ≥ 1) cannot both hold.
        let a = Matrix::from_rows(&[&[1.0], &[-1.0]]).unwrap();
        let p = QpProblem::new(Matrix::from_diag(&[2.0]), vec![0.0])
            .unwrap()
            .with_inequalities(a, vec![0.0, -1.0])
            .unwrap();
        let err = QpSolver::default().solve(&p).unwrap_err();
        assert!(
            matches!(
                err,
                OptimError::QpInfeasible { .. } | OptimError::QpMaxIterations { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn unbounded_lp_is_classified() {
        // min −z with only z ≥ 0: the objective decreases along the
        // feasible ray z → ∞.
        let a = Matrix::from_rows(&[&[-1.0]]).unwrap();
        let p = QpProblem::new(Matrix::from_diag(&[0.0]), vec![-1.0])
            .unwrap()
            .with_inequalities(a, vec![0.0])
            .unwrap();
        let err = QpSolver::default().solve(&p).unwrap_err();
        assert!(
            matches!(
                err,
                OptimError::QpUnbounded { .. } | OptimError::QpMaxIterations { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(
            QpProblem::new(Matrix::zeros(2, 3), vec![0.0; 3]),
            Err(OptimError::DimensionMismatch { .. })
        ));
        let asym = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(matches!(
            QpProblem::new(asym, vec![0.0; 2]),
            Err(OptimError::AsymmetricHessian)
        ));
        let nan = Matrix::from_diag(&[f64::NAN]);
        assert!(matches!(
            QpProblem::new(nan, vec![0.0]),
            Err(OptimError::NonFiniteData)
        ));
        let p = QpProblem::new(Matrix::identity(2), vec![0.0; 2]).unwrap();
        assert!(p.with_equalities(Matrix::zeros(1, 3), vec![0.0]).is_err());
    }

    #[test]
    fn warm_start_path() {
        let p = QpProblem::new(Matrix::from_diag(&[2.0]), vec![-6.0])
            .unwrap()
            .with_inequalities(Matrix::from_rows(&[&[1.0]]).unwrap(), vec![1.0])
            .unwrap();
        let sol = QpSolver::default().solve_from(&p, &[0.9]).unwrap();
        assert!((sol.z[0] - 1.0).abs() < 1e-6);
        assert!(QpSolver::default().solve_from(&p, &[0.0, 0.0]).is_err());
    }

    #[test]
    fn loose_tolerance_converges_in_fewer_iterations() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[-1.0, 0.0], &[0.0, 1.0], &[0.0, -1.0]]).unwrap();
        let p = QpProblem::new(Matrix::from_diag(&[2.0, 2.0]), vec![-10.0, 3.0])
            .unwrap()
            .with_inequalities(a, vec![1.0; 4])
            .unwrap();
        let tight = QpSolver::new(QpSolverOptions {
            tolerance: 1e-10,
            ..QpSolverOptions::default()
        })
        .solve(&p)
        .unwrap();
        let loose = QpSolver::new(QpSolverOptions {
            tolerance: 1e-4,
            ..QpSolverOptions::default()
        })
        .solve(&p)
        .unwrap();
        assert!(loose.iterations <= tight.iterations);
        // Both still land on the right active set.
        assert!((loose.z[0] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn zero_hessian_lp_is_handled_by_regularization() {
        // A pure LP (H = 0) on a box: the regularized KKT system stays
        // factorable and the solution hits the right vertex.
        let h = Matrix::from_diag(&[0.0, 0.0]);
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[-1.0, 0.0], &[0.0, 1.0], &[0.0, -1.0]]).unwrap();
        let p = QpProblem::new(h, vec![1.0, -2.0])
            .unwrap()
            .with_inequalities(a, vec![1.0; 4])
            .unwrap();
        let sol = QpSolver::default().solve(&p).unwrap();
        // min z0 − 2 z1 over [−1,1]² → (−1, 1).
        assert!((sol.z[0] + 1.0).abs() < 1e-4, "{:?}", sol.z);
        assert!((sol.z[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn larger_random_spd_problem() {
        // A 30-variable strongly convex QP with box constraints: verify
        // feasibility and stationarity rather than a closed form.
        let n = 30;
        let mut h = Matrix::identity(n);
        for i in 0..n {
            h.set(i, i, 1.0 + (i as f64) * 0.1);
        }
        let g: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let mut rows = Vec::new();
        for i in 0..n {
            let mut up = vec![0.0; n];
            up[i] = 1.0;
            rows.push(up);
            let mut lo = vec![0.0; n];
            lo[i] = -1.0;
            rows.push(lo);
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let a = Matrix::from_rows(&row_refs).unwrap();
        let b = vec![2.0; 2 * n];
        let p = QpProblem::new(h, g)
            .unwrap()
            .with_inequalities(a, b)
            .unwrap();
        let sol = solve(&p);
        for (i, &zi) in sol.z.iter().enumerate() {
            assert!((-2.0 - 1e-6..=2.0 + 1e-6).contains(&zi), "z[{i}] = {zi}");
        }
        assert!(sol.iterations < 50);
    }

    /// A horizon-structured box QP: `nb` blocks of `vb` variables, block
    /// tridiagonal Hessian, per-variable bounds (CSR), optional coupling
    /// equality per block. Returns (h, g, a_in CSR, b_in, a_eq CSR, b_eq).
    #[allow(clippy::type_complexity)]
    fn structured_problem(
        nb: usize,
        vb: usize,
        with_eq: bool,
    ) -> (
        Matrix,
        Vec<f64>,
        SparseMatrix,
        Vec<f64>,
        SparseMatrix,
        Vec<f64>,
    ) {
        let n = nb * vb;
        let mut h = Matrix::zeros(n, n);
        for i in 0..n {
            h.set(i, i, 2.0 + (i % 3) as f64 * 0.5);
            if i + 1 < n && (i + 1) / vb <= i / vb + 1 {
                h.set(i + 1, i, -0.3);
                h.set(i, i + 1, -0.3);
            }
        }
        let g: Vec<f64> = (0..n).map(|i| ((i * 5 % 11) as f64) * 0.4 - 2.0).collect();
        let mut a_in = SparseMatrix::new();
        a_in.reset(n);
        let mut b_in = Vec::new();
        for i in 0..n {
            a_in.push(i, 1.0);
            a_in.finish_row();
            b_in.push(1.5);
            a_in.push(i, -1.0);
            a_in.finish_row();
            b_in.push(1.5);
        }
        let mut a_eq = SparseMatrix::new();
        a_eq.reset(n);
        let mut b_eq = Vec::new();
        if with_eq {
            // One equality per block summing the block's variables, with a
            // one-step lookback coupling to the previous block's first var.
            for k in 0..nb {
                if k > 0 {
                    a_eq.push((k - 1) * vb, 0.5);
                }
                for j in 0..vb {
                    a_eq.push(k * vb + j, 1.0);
                }
                a_eq.finish_row();
                b_eq.push(0.3 * (k as f64) - 0.2);
            }
        }
        (h, g, a_in, b_in, a_eq, b_eq)
    }

    #[test]
    fn sparse_inequalities_match_dense() {
        let (h, g, a_in, b_in, _, _) = structured_problem(4, 3, false);
        let dense = QpProblem::new(h.clone(), g.clone())
            .unwrap()
            .with_inequalities(a_in.to_dense(), b_in.clone())
            .unwrap();
        let dense_sol = solve(&dense);

        let view = QpView::new(&h, &g)
            .unwrap()
            .with_sparse_inequalities(&a_in, &b_in)
            .unwrap();
        let sparse_sol = QpSolver::new(QpSolverOptions {
            prefer_dense_cholesky: true,
            ..QpSolverOptions::default()
        })
        .solve_view(&view)
        .unwrap();
        assert_eq!(sparse_sol.kkt_backend, QpKktBackend::DenseCholesky);
        for (zs, zd) in sparse_sol.z.iter().zip(&dense_sol.z) {
            assert!((zs - zd).abs() < 1e-8, "sparse {zs} vs dense {zd}");
        }
    }

    #[test]
    fn banded_backend_matches_dense_lu_oracle() {
        for with_eq in [false, true] {
            let (h, g, a_in, b_in, a_eq, b_eq) = structured_problem(5, 3, with_eq);
            let structure = QpStructure {
                vars_per_block: 3,
                eq_per_block: usize::from(with_eq),
                lookback: 1,
            };

            let mut view = QpView::new(&h, &g)
                .unwrap()
                .with_sparse_inequalities(&a_in, &b_in)
                .unwrap();
            let mut oracle = QpProblem::new(h.clone(), g.clone())
                .unwrap()
                .with_inequalities(a_in.to_dense(), b_in.clone())
                .unwrap();
            if with_eq {
                view = view.with_sparse_equalities(&a_eq, &b_eq).unwrap();
                oracle = oracle
                    .with_equalities(a_eq.to_dense(), b_eq.clone())
                    .unwrap();
            }
            let banded_sol = QpSolver::default()
                .solve_view(&view.with_structure(structure))
                .unwrap();
            let oracle_sol = solve(&oracle);
            assert_eq!(banded_sol.kkt_backend, QpKktBackend::Banded);
            // The dense oracle stays on the LU path unless Cholesky is
            // explicitly requested.
            assert_eq!(oracle_sol.kkt_backend, QpKktBackend::DenseLu);
            for (zb, zo) in banded_sol.z.iter().zip(&oracle_sol.z) {
                assert!(
                    (zb - zo).abs() < 1e-7,
                    "with_eq={with_eq}: banded {zb} vs LU {zo}"
                );
            }
            for (lb, lo) in banded_sol.lambda_in.iter().zip(&oracle_sol.lambda_in) {
                assert!((lb - lo).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn inconsistent_structure_falls_back_to_dense() {
        // Declared blocks don't divide n → the plan is rejected and the
        // dense path solves the problem correctly anyway.
        let (h, g, a_in, b_in, _, _) = structured_problem(4, 3, false);
        let view = QpView::new(&h, &g)
            .unwrap()
            .with_sparse_inequalities(&a_in, &b_in)
            .unwrap()
            .with_structure(QpStructure {
                vars_per_block: 5,
                eq_per_block: 0,
                lookback: 1,
            });
        let sol = QpSolver::default().solve_view(&view).unwrap();
        assert_ne!(sol.kkt_backend, QpKktBackend::Banded);
        for (i, &zi) in sol.z.iter().enumerate() {
            assert!((-1.5 - 1e-6..=1.5 + 1e-6).contains(&zi), "z[{i}] = {zi}");
        }
    }

    #[test]
    fn wide_jacobian_rows_reject_banded_plan() {
        // An inequality row coupling the first and last block violates the
        // declared lookback; the solver must notice and fall back.
        let (h, g, _, _, _, _) = structured_problem(4, 2, false);
        let n = 8;
        let mut a_in = SparseMatrix::new();
        a_in.reset(n);
        a_in.push(0, 1.0);
        a_in.push(n - 1, 1.0);
        a_in.finish_row();
        let b_in = vec![10.0];
        let view = QpView::new(&h, &g)
            .unwrap()
            .with_sparse_inequalities(&a_in, &b_in)
            .unwrap()
            .with_structure(QpStructure {
                vars_per_block: 2,
                eq_per_block: 0,
                lookback: 1,
            });
        let sol = QpSolver::default().solve_view(&view).unwrap();
        assert_ne!(sol.kkt_backend, QpKktBackend::Banded);
    }

    #[test]
    fn structure_bandwidth_formula() {
        let st = QpStructure {
            vars_per_block: 4,
            eq_per_block: 1,
            lookback: 1,
        };
        assert_eq!(st.bandwidth(), 9);
        let local = QpStructure {
            vars_per_block: 5,
            eq_per_block: 1,
            lookback: 1,
        };
        assert_eq!(local.bandwidth(), 11);
    }
}
