* Exercises MI / LO / PL bound kinds: min x^2 + y^2 + x + y with
* x in (-inf, inf) via MI, y in [-5, inf) via LO then PL.
* Unconstrained optimum (-0.5, -0.5) is interior, f* = -0.5.
NAME QPFREEBND
ROWS
 N OBJ
COLUMNS
 X OBJ 1.0
 Y OBJ 1.0
RHS
BOUNDS
 MI BND X
 LO BND Y -5.0
 PL BND Y
QUADOBJ
 X X 2.0
 Y Y 2.0
ENDATA
