//! Cholesky factorization for symmetric positive-definite systems.

use crate::{LinalgError, Matrix};

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix.
///
/// Used to solve the (regularized, hence SPD) Hessian systems inside the
/// SQP solver about twice as fast as LU, and to *certify* positive
/// definiteness: [`Cholesky::factor`] failing with
/// [`LinalgError::NotPositiveDefinite`] is the signal for the optimizer to
/// add Levenberg regularization.
///
/// # Examples
///
/// ```
/// use ev_linalg::{Cholesky, Matrix};
///
/// # fn main() -> Result<(), ev_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let ch = Cholesky::factor(&a)?;
/// let x = ch.solve(&[8.0, 7.0])?;
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored dense.
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is the caller's responsibility (checked loosely in debug
    /// builds).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular input and
    /// [`LinalgError::NotPositiveDefinite`] if a diagonal pivot is not
    /// strictly positive.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        let mut l = Matrix::zeros(a.rows().max(1), a.cols().max(1));
        factor_into(a, &mut l)?;
        Ok(Self { l })
    }

    /// Refactors a matrix of the same dimension in place, reusing the
    /// existing factor storage (no allocation).
    ///
    /// # Errors
    ///
    /// As [`Cholesky::factor`], plus [`LinalgError::DimensionMismatch`]
    /// if `a` does not match the current [`Cholesky::dim`]. On error the
    /// factor contents are unspecified; discard this instance.
    pub fn refactor(&mut self, a: &Matrix) -> Result<(), LinalgError> {
        if a.shape() != self.l.shape() {
            return Err(LinalgError::DimensionMismatch {
                expected: self.l.shape(),
                actual: a.shape(),
            });
        }
        factor_into(a, &mut self.l)
    }

    /// Dimension of the factored matrix.
    #[inline]
    #[must_use]
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    #[inline]
    #[must_use]
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` via the two triangular solves.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }

    /// Solves `A·x = b` in place (no allocation).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve_in_place(&self, b: &mut [f64]) -> Result<(), LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: (n, 1),
                actual: (b.len(), 1),
            });
        }
        // Forward: L·y = b.
        for r in 0..n {
            let mut sum = b[r];
            for c in 0..r {
                sum -= self.l.get(r, c) * b[c];
            }
            b[r] = sum / self.l.get(r, r);
        }
        // Backward: Lᵀ·x = y.
        for r in (0..n).rev() {
            let mut sum = b[r];
            for c in (r + 1)..n {
                sum -= self.l.get(c, r) * b[c];
            }
            b[r] = sum / self.l.get(r, r);
        }
        Ok(())
    }

    /// Determinant of the factored matrix (product of squared pivots).
    #[must_use]
    pub fn det(&self) -> f64 {
        let mut d = 1.0;
        for i in 0..self.dim() {
            let l = self.l.get(i, i);
            d *= l * l;
        }
        d
    }
}

/// Writes the lower-triangular factor of `a` into `l` (same shape).
fn factor_into(a: &Matrix, l: &mut Matrix) -> Result<(), LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    debug_assert!(
        a.is_symmetric(1e-8 * a.norm_max().max(1.0)),
        "Cholesky::factor called with an asymmetric matrix"
    );
    for j in 0..n {
        // Zero the (unused) upper triangle so reused storage stays clean.
        for i in 0..j {
            l.set(i, j, 0.0);
        }
        let mut d = a.get(j, j);
        for k in 0..j {
            let ljk = l.get(j, k);
            d -= ljk * ljk;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite);
        }
        let dj = d.sqrt();
        l.set(j, j, dj);
        for i in (j + 1)..n {
            let mut s = a.get(i, j);
            for k in 0..j {
                s -= l.get(i, k) * l.get(j, k);
            }
            l.set(i, j, s / dj);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_known_spd() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]])
            .unwrap();
        let ch = Cholesky::factor(&a).unwrap();
        let expected =
            Matrix::from_rows(&[&[5.0, 0.0, 0.0], &[3.0, 3.0, 0.0], &[-1.0, 1.0, 3.0]]).unwrap();
        assert!(ch.l().sub(&expected).unwrap().norm_max() < 1e-12);
        assert!((ch.det() - 2025.0).abs() < 1e-9);
    }

    #[test]
    fn solve_matches_lu() {
        let a = Matrix::from_rows(&[&[6.0, 2.0], &[2.0, 5.0]]).unwrap();
        let x = Cholesky::factor(&a).unwrap().solve(&[8.0, 7.0]).unwrap();
        let r = a.matvec(&x).unwrap();
        assert!((r[0] - 8.0).abs() < 1e-12);
        assert!((r[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert_eq!(
            Cholesky::factor(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn rejects_semidefinite() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]).unwrap(); // rank 1
        assert_eq!(
            Cholesky::factor(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn rejects_rectangular_and_empty() {
        assert!(matches!(
            Cholesky::factor(&Matrix::zeros(2, 3)).unwrap_err(),
            LinalgError::NotSquare { .. }
        ));
    }

    #[test]
    fn solve_rejects_wrong_rhs() {
        let ch = Cholesky::factor(&Matrix::identity(3)).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
    }
}
