//! A bounded scoped worker pool for fan-out jobs.
//!
//! [`run_bounded`] replaces the one-OS-thread-per-job pattern the sweep
//! harness used to rely on: a 200-cell sweep on a 4-core CI runner no
//! longer spawns 200 kernel threads, it spawns `min(workers, jobs)` and
//! feeds them from an atomic cursor. Results come back **in job order**
//! with per-job panics captured, so callers keep their cell-identity
//! panic messages.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// The default fan-out width: the machine's available parallelism, with
/// a conservative fallback when the OS cannot report it.
#[must_use]
pub fn available_workers() -> usize {
    thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
}

/// Runs every job on a pool of at most `max_workers` OS threads
/// (clamped to at least 1) and returns one result per job, **in the
/// order the jobs were given**. A panicking job is captured as
/// `Err(payload)` in its own slot — exactly what `JoinHandle::join`
/// would have produced — without poisoning its siblings, so callers can
/// re-raise with job identity attached.
///
/// The call blocks until every job has finished; worker threads are
/// scoped, so jobs may borrow from the caller's stack.
///
/// # Panics
///
/// Panics only on internal invariant violation (a result slot left
/// unfilled), never because a *job* panicked.
pub fn run_bounded<T, F>(max_workers: usize, jobs: Vec<F>) -> Vec<thread::Result<T>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = max_workers.max(1).min(n);
    // Slot-per-job storage lets workers claim jobs lock-free (an atomic
    // cursor) while staying within `forbid(unsafe_code)`.
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<thread::Result<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let job = jobs[idx]
                    .lock()
                    .expect("job slot lock poisoned")
                    .take()
                    .expect("job claimed twice");
                let outcome = catch_unwind(AssertUnwindSafe(job));
                *results[idx].lock().expect("result slot lock poisoned") = Some(outcome);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock poisoned")
                .expect("every job slot must be filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<_> = (0..32).map(|i| move || i * 10).collect();
        let out = run_bounded(3, jobs);
        let values: Vec<i32> = out.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_is_bounded() {
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..64)
            .map(|_| {
                let live = &live;
                let peak = &peak;
                move || {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::yield_now();
                    live.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        let out = run_bounded(4, jobs);
        assert_eq!(out.len(), 64);
        assert!(
            peak.load(Ordering::SeqCst) <= 4,
            "peak concurrency {} exceeded the 4-worker bound",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn a_panicking_job_is_isolated_to_its_slot() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("cell exploded")),
            Box::new(|| 3),
        ];
        let out = run_bounded(2, jobs);
        assert_eq!(*out[0].as_ref().unwrap(), 1);
        let payload = out[1].as_ref().unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "cell exploded");
        assert_eq!(*out[2].as_ref().unwrap(), 3);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let seen = Mutex::new(HashSet::new());
        let jobs: Vec<_> = (0..100usize)
            .map(|i| {
                let seen = &seen;
                move || assert!(seen.lock().unwrap().insert(i), "job {i} ran twice")
            })
            .collect();
        let out = run_bounded(8, jobs);
        assert!(out.iter().all(std::thread::Result::is_ok));
        assert_eq!(seen.lock().unwrap().len(), 100);
    }

    #[test]
    fn zero_workers_clamps_to_one_and_empty_jobs_return_empty() {
        let out = run_bounded(0, vec![|| 42]);
        assert_eq!(*out[0].as_ref().unwrap(), 42);
        let none: Vec<thread::Result<()>> = run_bounded(4, Vec::<fn()>::new());
        assert!(none.is_empty());
    }

    #[test]
    fn jobs_may_borrow_from_the_caller() {
        let data = [1u64, 2, 3, 4];
        let jobs: Vec<_> = data.iter().map(|v| move || v * 2).collect();
        let out = run_bounded(2, jobs);
        let sum: u64 = out.into_iter().map(|r| r.unwrap()).sum();
        assert_eq!(sum, 20);
    }
}
