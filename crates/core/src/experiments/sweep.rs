//! The shared drive-profile × controller sweep behind Figs. 7 and 8.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use ev_control::MpcDiagnostics;
use ev_drive::DriveCycle;
use ev_telemetry::{FlightRecorder, Registry, Snapshot};

use crate::flight::FlightRecorderObserver;
use crate::observe::{NoopObserver, StepObserver};
use crate::telemetry::TelemetryObserver;
use crate::{ControllerKind, ControllerSetup, Simulation, SimulationResult};

use super::{experiment_params, format_table, profile_at, COMPARISON_AMBIENT_C};

/// One cell of the evaluation matrix: a cycle driven by a controller.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Drive-profile name (e.g. `"NEDC"`).
    pub profile: String,
    /// Which controller drove it.
    pub controller: ControllerKind,
    /// The full simulation result.
    pub result: SimulationResult,
}

/// Runs the paper's full evaluation matrix — the five standard cycles
/// {NEDC, US06, ECE_EUDC, SC03, UDDS} × the three methodologies — at the
/// comparison ambient temperature. Figs. 7 and 8 are both projections of
/// this matrix.
///
/// # Panics
///
/// Panics if a simulation cannot be constructed (cannot happen for the
/// built-in cycles and parameters).
#[must_use]
pub fn evaluation_sweep() -> Vec<SweepCell> {
    evaluation_sweep_at(COMPARISON_AMBIENT_C, &DriveCycle::paper_evaluation_set())
}

/// The same matrix at an arbitrary ambient and cycle set (used by
/// Table I and the ablation benches).
///
/// # Panics
///
/// Panics if a simulation cannot be constructed (cannot happen for the
/// built-in cycles and parameters).
#[must_use]
pub fn evaluation_sweep_at(ambient_c: f64, cycles: &[DriveCycle]) -> Vec<SweepCell> {
    evaluation_sweep_observed(ambient_c, cycles, |_, _| NoopObserver)
        .into_iter()
        .map(|(cell, NoopObserver)| cell)
        .collect()
}

/// The evaluation matrix with a [`StepObserver`] attached to every cell,
/// so callers (the physics-invariant harness in `ev-testkit`, trace
/// exporters) can watch each simulated step of each cell. `make_observer`
/// is called once per cell with the profile name and controller kind;
/// the driven observers are returned alongside their cells.
///
/// # Panics
///
/// Panics if a simulation cannot be constructed (cannot happen for the
/// built-in cycles and parameters).
#[must_use]
pub fn evaluation_sweep_observed<O, F>(
    ambient_c: f64,
    cycles: &[DriveCycle],
    make_observer: F,
) -> Vec<(SweepCell, O)>
where
    O: StepObserver + Send,
    F: Fn(&str, ControllerKind) -> O + Sync,
{
    let mut params = experiment_params();
    // The paper compares the steady *regulation* behavior of the three
    // methodologies (its Fig. 5 traces start settled); start from a
    // preconditioned cabin so a controller cannot look cheap by simply
    // failing to pull a soaked cabin into the comfort zone.
    params.initial_cabin = Some(params.target);
    // Every cell is independent; fan them out on the bounded fleet pool
    // so an arbitrarily large matrix (custom cycle sets, ablation
    // grids) never spawns more OS threads than the machine has cores.
    let sims: Vec<(String, Simulation)> = cycles
        .iter()
        .map(|cycle| {
            let profile = profile_at(cycle, ambient_c);
            (
                cycle.name().to_owned(),
                Simulation::new(params.clone(), profile).expect("profile non-empty"),
            )
        })
        .collect();
    let mut identities = Vec::with_capacity(sims.len() * 3);
    let mut jobs = Vec::with_capacity(sims.len() * 3);
    for (name, sim) in &sims {
        for kind in ControllerKind::paper_lineup() {
            identities.push((name.as_str(), kind));
            let params = &params;
            let make_observer = &make_observer;
            jobs.push(move || {
                let mut controller = kind.instantiate(params).expect("controller instantiates");
                let mut observer = make_observer(name, kind);
                let result = sim
                    .run_observed(controller.as_mut(), &mut observer)
                    .expect("simulation runs");
                (
                    SweepCell {
                        profile: name.clone(),
                        controller: kind,
                        result,
                    },
                    observer,
                )
            });
        }
    }
    crate::fleet::run_bounded(crate::fleet::available_workers(), jobs)
        .into_iter()
        .zip(identities)
        .map(|(outcome, (name, kind))| {
            // A bare `.expect()` here loses which cell died — with up to
            // 15 identical workers the panic was undiagnosable. Re-panic
            // with the cell identity and the worker's own message.
            outcome.unwrap_or_else(|payload| {
                let msg = panic_message(payload.as_ref());
                panic!("sweep worker for {name} x {kind:?} panicked: {msg}");
            })
        })
        .collect()
}

/// How one sweep cell ended.
#[derive(Debug)]
pub enum SweepOutcome {
    /// The simulation ran to the end of its profile.
    Completed(Box<SimulationResult>),
    /// The cell failed — a simulation error or a worker panic — with a
    /// human-readable reason. The rest of the sweep is unaffected.
    Failed(String),
}

impl SweepOutcome {
    /// The simulation result, if the cell completed.
    #[must_use]
    pub fn result(&self) -> Option<&SimulationResult> {
        match self {
            Self::Completed(r) => Some(r),
            Self::Failed(_) => None,
        }
    }

    /// Whether the cell completed.
    #[must_use]
    pub fn is_completed(&self) -> bool {
        matches!(self, Self::Completed(_))
    }
}

/// One cell of a robust, instrumented sweep: identity, outcome, solver
/// diagnostics and a telemetry snapshot.
#[derive(Debug)]
pub struct SweepCellResult {
    /// Drive-profile name (e.g. `"NEDC"`).
    pub profile: String,
    /// Which controller drove it.
    pub controller: ControllerKind,
    /// How the cell ended.
    pub outcome: SweepOutcome,
    /// Cumulative solver diagnostics (`None` for rule-based controllers
    /// and for cells whose worker panicked before returning one).
    pub diagnostics: Option<MpcDiagnostics>,
    /// The cell's telemetry snapshot (empty when telemetry was off).
    pub telemetry: Snapshot,
    /// Wall-clock time the cell took (s).
    pub wall_seconds: f64,
    /// Path of the flight-recorder post-mortem dump written for this
    /// cell, if it failed during a recorded sweep.
    pub postmortem: Option<PathBuf>,
}

/// A full instrumented sweep: every cell, even the failed ones.
#[derive(Debug)]
pub struct SweepResult {
    /// Ambient temperature the matrix ran at (°C).
    pub ambient_c: f64,
    /// All cells, in cycle-major order.
    pub cells: Vec<SweepCellResult>,
}

impl SweepResult {
    /// Cells that completed, projected onto the plain [`SweepCell`] shape
    /// the figure builders consume.
    #[must_use]
    pub fn completed(&self) -> Vec<SweepCell> {
        self.cells
            .iter()
            .filter_map(|c| {
                c.outcome.result().map(|r| SweepCell {
                    profile: c.profile.clone(),
                    controller: c.controller,
                    result: r.clone(),
                })
            })
            .collect()
    }

    /// The failed cells, as `(profile, controller, reason)`.
    #[must_use]
    pub fn failures(&self) -> Vec<(&str, ControllerKind, &str)> {
        self.cells
            .iter()
            .filter_map(|c| match &c.outcome {
                SweepOutcome::Failed(msg) => Some((c.profile.as_str(), c.controller, msg.as_str())),
                SweepOutcome::Completed(_) => None,
            })
            .collect()
    }
}

/// Runs the evaluation matrix robustly: every cell is isolated behind
/// [`catch_unwind`], so one diverging solve or panicking worker yields a
/// [`SweepOutcome::Failed`] row instead of poisoning the whole sweep.
/// With `telemetry` on, each cell gets its own [`Registry`] capturing the
/// controller's solver metrics (via
/// [`ControllerKind::instantiate_instrumented`]) and the plant-side
/// [`TelemetryObserver`] stream; off, registries are disabled and the hot
/// paths stay on their uninstrumented code.
#[must_use]
pub fn evaluation_sweep_run(ambient_c: f64, cycles: &[DriveCycle], telemetry: bool) -> SweepResult {
    evaluation_sweep_run_recorded(ambient_c, cycles, telemetry, None)
}

/// [`evaluation_sweep_run`] with a flight recorder on every cell. When
/// `postmortem_dir` is `Some`, each cell records its MPC decisions and
/// realized plant steps into a bounded ring buffer, and any cell that
/// fails — simulation error or worker panic — writes its last recorded
/// window to `<dir>/<profile>_<controller>.jsonl` (readable with
/// `evsim explain`). With `postmortem_dir = None` the recorders stay
/// disabled and this is exactly [`evaluation_sweep_run`].
#[must_use]
pub fn evaluation_sweep_run_recorded(
    ambient_c: f64,
    cycles: &[DriveCycle],
    telemetry: bool,
    postmortem_dir: Option<&Path>,
) -> SweepResult {
    let mut params = experiment_params();
    // Match `evaluation_sweep_observed`: start from a preconditioned
    // cabin so the comparison is about regulation, not pull-down.
    params.initial_cabin = Some(params.target);
    let sims: Vec<(String, Simulation)> = cycles
        .iter()
        .map(|cycle| {
            let profile = profile_at(cycle, ambient_c);
            (
                cycle.name().to_owned(),
                Simulation::new(params.clone(), profile).expect("profile non-empty"),
            )
        })
        .collect();
    let mut identities = Vec::with_capacity(sims.len() * 3);
    let mut jobs = Vec::with_capacity(sims.len() * 3);
    for (name, sim) in &sims {
        for kind in ControllerKind::paper_lineup() {
            identities.push((name.clone(), kind));
            let params = &params;
            jobs.push(move || {
                let registry = Registry::with_enabled(telemetry);
                let recorder = FlightRecorder::with_enabled(postmortem_dir.is_some());
                let t0 = std::time::Instant::now();
                let mut controller = kind
                    .instantiate_configured(
                        params,
                        &ControllerSetup {
                            telemetry: registry.clone(),
                            recorder: recorder.clone(),
                            ..ControllerSetup::default()
                        },
                    )
                    .expect("controller instantiates");
                let mut observer = (
                    TelemetryObserver::new(&registry),
                    FlightRecorderObserver::new(&recorder),
                );
                let run = catch_unwind(AssertUnwindSafe(|| {
                    sim.run_observed(controller.as_mut(), &mut observer)
                }));
                let outcome = match run {
                    Ok(Ok(result)) => SweepOutcome::Completed(Box::new(result)),
                    Ok(Err(err)) => SweepOutcome::Failed(err.to_string()),
                    Err(payload) => SweepOutcome::Failed(panic_message(payload.as_ref())),
                };
                (
                    outcome,
                    controller.solver_diagnostics(),
                    registry.snapshot(),
                    t0.elapsed().as_secs_f64(),
                    recorder,
                )
            });
        }
    }
    let cells = crate::fleet::run_bounded(crate::fleet::available_workers(), jobs)
        .into_iter()
        .zip(identities)
        .map(|(worker, (profile, controller))| {
            // The job caught run-time panics itself; an Err slot means
            // something outside the guarded region blew up (instantiation).
            let (outcome, diagnostics, telemetry, wall_seconds, recorder) =
                worker.unwrap_or_else(|payload| {
                    (
                        SweepOutcome::Failed(panic_message(payload.as_ref())),
                        None,
                        Snapshot::default(),
                        0.0,
                        FlightRecorder::disabled(),
                    )
                });
            let postmortem = match (&outcome, postmortem_dir) {
                (SweepOutcome::Failed(reason), Some(dir)) => {
                    write_cell_postmortem(dir, &profile, controller, reason, &recorder)
                }
                _ => None,
            };
            SweepCellResult {
                profile,
                controller,
                outcome,
                diagnostics,
                telemetry,
                wall_seconds,
                postmortem,
            }
        })
        .collect();
    SweepResult { ambient_c, cells }
}

/// Dumps a failed cell's flight-recorder window to
/// `<dir>/<profile>_<controller>.jsonl`, returning the path on success.
/// A disabled recorder (or a dump that cannot be written) yields `None`;
/// the sweep itself is never failed by post-mortem I/O.
fn write_cell_postmortem(
    dir: &Path,
    profile: &str,
    controller: ControllerKind,
    reason: &str,
    recorder: &FlightRecorder,
) -> Option<PathBuf> {
    if !recorder.is_enabled() {
        return None;
    }
    let stem: String = profile
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let path = dir.join(format!("{stem}_{controller:?}.jsonl"));
    let why = format!("sweep cell {profile} x {controller:?} failed: {reason}");
    recorder.dump_to(&path, &why).ok().map(|()| path)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(ToString::to_string)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}

/// Formats an instrumented sweep as the human-readable run report printed
/// by the `repro` and `evsim` binaries: one row per cell with the solver
/// health columns (solves, convergence rate, the max-iteration / stalled
/// / error outcome counts, total and mean SQP iterations, warm-start hit
/// rate) and — when `include_timings` is set — the p50/p99 `control_step`
/// latencies from the cell's telemetry snapshot. Timings are redacted
/// with `include_timings = false` so the report is deterministic (the
/// golden-snapshot tests rely on this). Failed cells repeat their reason
/// below the table, naming the post-mortem dump when one was written.
#[must_use]
pub fn render_sweep_report(sweep: &SweepResult, include_timings: bool) -> String {
    let dash = || "-".to_owned();
    let fmt_rate = |x: f64| {
        if x.is_nan() {
            dash()
        } else {
            format!("{:.0}%", 100.0 * x)
        }
    };
    let mut header: Vec<String> = [
        "profile",
        "controller",
        "status",
        "solves",
        "conv",
        "max-iter",
        "stalled",
        "err",
        "iters",
        "iters/solve",
        "warm-start",
    ]
    .map(str::to_owned)
    .to_vec();
    if include_timings {
        header.push("p50 step".to_owned());
        header.push("p99 step".to_owned());
    }
    let mut rows = Vec::with_capacity(sweep.cells.len());
    for cell in &sweep.cells {
        let mut row = vec![
            cell.profile.clone(),
            short_name(cell.controller).to_owned(),
            match &cell.outcome {
                SweepOutcome::Completed(_) => "ok".to_owned(),
                SweepOutcome::Failed(_) => "FAILED".to_owned(),
            },
        ];
        match cell.diagnostics {
            Some(d) => {
                row.push(d.solves.to_string());
                row.push(fmt_rate(d.convergence_rate()));
                row.push(d.max_iterations.to_string());
                row.push(d.line_search_stalled.to_string());
                row.push(d.solver_errors.to_string());
                row.push(d.sqp_iterations.to_string());
                row.push(if d.mean_sqp_iterations().is_nan() {
                    dash()
                } else {
                    format!("{:.1}", d.mean_sqp_iterations())
                });
                row.push(fmt_rate(d.warm_start_hit_rate()));
            }
            None => row.extend(std::iter::repeat_with(dash).take(8)),
        }
        if include_timings {
            match cell.telemetry.histogram("mpc_control_step_seconds") {
                Some(h) if h.count > 0 => {
                    row.push(format!("{:.2} ms", 1e3 * h.quantile(0.5)));
                    row.push(format!("{:.2} ms", 1e3 * h.quantile(0.99)));
                }
                _ => row.extend([dash(), dash()]),
            }
        }
        rows.push(row);
    }
    let mut out = format!(
        "Run report: {} cells at {:.0} degC ambient\n",
        sweep.cells.len(),
        sweep.ambient_c
    );
    out.push_str(&format_table(&header, &rows));
    for cell in &sweep.cells {
        if let SweepOutcome::Failed(reason) = &cell.outcome {
            out.push_str(&format!(
                "FAILED {} x {}: {reason}",
                cell.profile,
                short_name(cell.controller)
            ));
            if let Some(path) = &cell.postmortem {
                out.push_str(&format!(" (post-mortem: {})", path.display()));
            }
            out.push('\n');
        }
    }
    out
}

fn short_name(kind: ControllerKind) -> &'static str {
    match kind {
        ControllerKind::OnOff => "On/Off",
        ControllerKind::Fuzzy => "Fuzzy",
        ControllerKind::Pid => "PID",
        ControllerKind::Mpc => "MPC",
    }
}

/// Finds a cell in a sweep by profile name and controller.
#[must_use]
pub fn find<'a>(
    cells: &'a [SweepCell],
    profile: &str,
    controller: ControllerKind,
) -> Option<&'a SweepCell> {
    cells
        .iter()
        .find(|c| c.profile == profile && c.controller == controller)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_sweep_has_all_controllers() {
        let cells = evaluation_sweep_at(35.0, &[DriveCycle::ece15()]);
        assert_eq!(cells.len(), 3);
        assert!(find(&cells, "ECE-15", ControllerKind::OnOff).is_some());
        assert!(find(&cells, "ECE-15", ControllerKind::Fuzzy).is_some());
        assert!(find(&cells, "ECE-15", ControllerKind::Mpc).is_some());
        assert!(find(&cells, "ECE-15", ControllerKind::Pid).is_none());
    }

    #[test]
    fn instrumented_sweep_reports_solver_and_plant_metrics() {
        let sweep = evaluation_sweep_run(35.0, &[DriveCycle::ece15()], true);
        assert_eq!(sweep.cells.len(), 3);
        assert!(sweep.failures().is_empty());
        assert_eq!(sweep.completed().len(), 3);
        for cell in &sweep.cells {
            assert!(cell.outcome.is_completed());
            assert!(cell.wall_seconds > 0.0);
            let steps = cell.telemetry.counter("sim_steps_total").unwrap();
            assert!(steps > 0, "{steps}");
            match cell.controller {
                ControllerKind::Mpc => {
                    let d = cell.diagnostics.expect("MPC exposes diagnostics");
                    assert!(d.solves > 0);
                    // Every solve is accounted for by exactly one outcome.
                    assert_eq!(
                        d.converged + d.max_iterations + d.line_search_stalled + d.solver_errors,
                        d.solves,
                        "{d:?}"
                    );
                    assert!(!d.convergence_rate().is_nan());
                    assert!(!d.warm_start_hit_rate().is_nan());
                    let h = cell
                        .telemetry
                        .histogram("mpc_control_step_seconds")
                        .expect("MPC records step latency");
                    assert_eq!(h.count, steps);
                }
                _ => assert!(cell.diagnostics.is_none()),
            }
        }
    }

    #[test]
    fn untelemetered_sweep_has_empty_snapshots_but_diagnostics() {
        let sweep = evaluation_sweep_run(35.0, &[DriveCycle::ece15()], false);
        for cell in &sweep.cells {
            assert!(cell.telemetry.is_empty());
        }
        let mpc = sweep
            .cells
            .iter()
            .find(|c| c.controller == ControllerKind::Mpc)
            .unwrap();
        // The plain-u64 diagnostics stay on even with telemetry off.
        assert!(mpc.diagnostics.unwrap().solves > 0);
    }

    #[test]
    fn sweep_report_renders_all_cells() {
        let sweep = evaluation_sweep_run(35.0, &[DriveCycle::ece15()], true);
        let with_timings = render_sweep_report(&sweep, true);
        assert!(with_timings.contains("MPC"));
        assert!(with_timings.contains("p99 step"));
        assert!(with_timings.contains("ms"));
        let redacted = render_sweep_report(&sweep, false);
        assert!(!redacted.contains("p99 step"));
        assert!(!redacted.contains("ms"));
        // "Run report:" line + table header + separator + one row per cell.
        assert_eq!(redacted.lines().count(), 3 + sweep.cells.len());
        // The solver-outcome columns are populated for the MPC row.
        assert!(redacted.contains("max-iter"));
        assert!(redacted.contains("stalled"));
    }

    #[test]
    fn mixed_outcome_report_lists_failures_and_postmortems() {
        let mut sweep = evaluation_sweep_run(35.0, &[DriveCycle::ece15()], false);
        // Append synthetic failed cells: a panicked rule-based worker
        // (no diagnostics, no dump) and an errored MPC cell whose
        // post-mortem was written.
        sweep.cells.push(SweepCellResult {
            profile: "ECE-15".to_owned(),
            controller: ControllerKind::OnOff,
            outcome: SweepOutcome::Failed("worker panicked: boom".to_owned()),
            diagnostics: None,
            telemetry: Snapshot::default(),
            wall_seconds: 0.0,
            postmortem: None,
        });
        sweep.cells.push(SweepCellResult {
            profile: "ECE-15".to_owned(),
            controller: ControllerKind::Mpc,
            outcome: SweepOutcome::Failed("solver error: non-finite data".to_owned()),
            diagnostics: Some(MpcDiagnostics {
                solves: 3,
                converged: 2,
                solver_errors: 1,
                sqp_iterations: 9,
                warm_start_hits: 2,
                warm_start_misses: 1,
                ..MpcDiagnostics::default()
            }),
            telemetry: Snapshot::default(),
            wall_seconds: 0.1,
            postmortem: Some(PathBuf::from("target/flight/ECE-15_Mpc.jsonl")),
        });
        let report = render_sweep_report(&sweep, false);
        // Header block + one row per cell + one trailing line per failure.
        assert_eq!(report.lines().count(), 3 + sweep.cells.len() + 2);
        assert!(report.contains("FAILED ECE-15 x On/Off: worker panicked: boom"));
        assert!(report.contains("FAILED ECE-15 x MPC: solver error: non-finite data"));
        assert!(report.contains("(post-mortem: target/flight/ECE-15_Mpc.jsonl)"));
        // The failed MPC row still surfaces its partial diagnostics.
        let mpc_failed = report
            .lines()
            .find(|l| l.contains("MPC") && l.contains("FAILED"))
            .expect("failed MPC row rendered");
        assert!(mpc_failed.contains('3'), "{mpc_failed}");
        // The panicked rule-based row renders dashes for all 8 columns.
        let panicked = report
            .lines()
            .find(|l| l.contains("On/Off") && l.contains("FAILED"))
            .expect("panicked row rendered");
        let dashes = panicked.split_whitespace().filter(|t| *t == "-").count();
        assert_eq!(dashes, 8, "{panicked}");
    }

    #[test]
    fn healthy_recorded_sweep_writes_no_postmortems() {
        let dir = std::env::temp_dir().join(format!(
            "ev-sweep-postmortem-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let sweep = evaluation_sweep_run_recorded(35.0, &[DriveCycle::ece15()], false, Some(&dir));
        assert!(sweep.failures().is_empty());
        assert!(sweep.cells.iter().all(|c| c.postmortem.is_none()));
        // No dump means the directory is never created.
        assert!(!dir.exists());
    }

    #[test]
    fn cell_postmortem_dump_is_written_and_readable() {
        let dir = std::env::temp_dir().join(format!(
            "ev-sweep-dump-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let recorder = FlightRecorder::enabled(8);
        recorder.note("sweep", "cell aborted");
        let path = write_cell_postmortem(
            &dir,
            "ECE-15",
            ControllerKind::Mpc,
            "cabin temperature diverged",
            &recorder,
        )
        .expect("dump written");
        assert_eq!(path, dir.join("ECE-15_Mpc.jsonl"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("sweep cell ECE-15 x Mpc failed: cabin temperature diverged"));
        assert!(text.contains("\"kind\":\"note\""));
        // Disabled recorders never write anything.
        assert!(write_cell_postmortem(
            &dir,
            "ECE-15",
            ControllerKind::OnOff,
            "boom",
            &FlightRecorder::disabled()
        )
        .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
