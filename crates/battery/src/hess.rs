//! Hybrid Energy Storage System: battery + ultracapacitor.
//!
//! The paper's introduction situates its BMS in the context of HESS
//! architectures (its ref [3]): an ultracapacitor bank absorbs the
//! high-frequency power transients so the battery sees a smoother load —
//! the same SoC-flattening goal the climate controller pursues, attacked
//! from the hardware side. This module implements that substrate as an
//! optional extension so the two mechanisms can be compared and combined.

use ev_units::{Seconds, Volts, Watts};
use serde::{Deserialize, Serialize};

use crate::{Battery, BatteryParams};

/// An ideal-ESR ultracapacitor bank.
///
/// State is the stored energy; usable power is limited by the rated
/// current at the present voltage, and the voltage window is
/// `[v_min, v_max]` (converters cannot drain a cap to zero volts).
///
/// # Examples
///
/// ```
/// use ev_battery::Ultracapacitor;
/// use ev_units::{Seconds, Watts};
///
/// let mut cap = Ultracapacitor::transit_bank();
/// let accepted = cap.exchange(Watts::new(-20_000.0), Seconds::new(1.0)); // charge
/// assert!(accepted.value() < 0.0);
/// let delivered = cap.exchange(Watts::new(15_000.0), Seconds::new(1.0)); // discharge
/// assert!(delivered.value() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ultracapacitor {
    /// Capacitance (F).
    capacitance: f64,
    /// Maximum (rated) voltage.
    v_max: f64,
    /// Minimum usable voltage (converter limit).
    v_min: f64,
    /// Round-trip efficiency applied to charging.
    efficiency: f64,
    /// Present voltage.
    voltage: f64,
}

impl Ultracapacitor {
    /// A transit-bus-class bank: 63 F at 125 V (≈0.12 kWh usable),
    /// scaled-down appropriate for a passenger EV assist.
    #[must_use]
    pub fn transit_bank() -> Self {
        Self {
            capacitance: 63.0,
            v_max: 125.0,
            v_min: 50.0,
            efficiency: 0.95,
            voltage: 90.0,
        }
    }

    /// Creates a bank.
    ///
    /// # Panics
    ///
    /// Panics if parameters are non-positive, the voltage window is
    /// inverted, or the initial voltage lies outside the window.
    #[must_use]
    pub fn new(capacitance: f64, v_min: Volts, v_max: Volts, initial: Volts) -> Self {
        assert!(capacitance > 0.0, "capacitance must be positive");
        assert!(
            0.0 < v_min.value() && v_min.value() < v_max.value(),
            "voltage window inverted"
        );
        assert!(
            (v_min.value()..=v_max.value()).contains(&initial.value()),
            "initial voltage outside window"
        );
        Self {
            capacitance,
            v_max: v_max.value(),
            v_min: v_min.value(),
            efficiency: 0.95,
            voltage: initial.value(),
        }
    }

    /// Present terminal voltage.
    #[must_use]
    pub fn voltage(&self) -> Volts {
        Volts::new(self.voltage)
    }

    /// Usable stored energy above the minimum voltage (J).
    #[must_use]
    pub fn usable_energy_j(&self) -> f64 {
        0.5 * self.capacitance * (self.voltage * self.voltage - self.v_min * self.v_min)
    }

    /// Remaining charge *headroom* below the maximum voltage (J).
    #[must_use]
    pub fn headroom_j(&self) -> f64 {
        0.5 * self.capacitance * (self.v_max * self.v_max - self.voltage * self.voltage)
    }

    /// State of charge of the usable window, 0–1.
    #[must_use]
    pub fn soc(&self) -> f64 {
        let lo = self.v_min * self.v_min;
        let hi = self.v_max * self.v_max;
        ((self.voltage * self.voltage - lo) / (hi - lo)).clamp(0.0, 1.0)
    }

    /// Exchanges power with the bank for `dt`: positive discharges,
    /// negative charges. Returns the power actually exchanged after
    /// energy-window clamping.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn exchange(&mut self, power: Watts, dt: Seconds) -> Watts {
        assert!(dt.value() > 0.0, "exchange step must be positive");
        let p = power.value();
        let actual = if p >= 0.0 {
            // Discharge limited by usable energy.
            let avail = self.usable_energy_j() / dt.value();
            p.min(avail)
        } else {
            // Charge limited by headroom, derated by efficiency.
            let room = self.headroom_j() / dt.value() / self.efficiency;
            p.max(-room)
        };
        let de = if actual >= 0.0 {
            -actual * dt.value()
        } else {
            -actual * dt.value() * self.efficiency
        };
        let e_now = 0.5 * self.capacitance * self.voltage * self.voltage;
        let e_next = (e_now + de).max(0.0);
        self.voltage = (2.0 * e_next / self.capacitance)
            .sqrt()
            .clamp(self.v_min, self.v_max);
        Watts::new(actual)
    }
}

/// The HESS charge-split policy: how much of a power transient the
/// ultracapacitor absorbs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SplitPolicy {
    /// The battery serves everything (degenerate baseline).
    BatteryOnly,
    /// The cap serves the excess above a battery power ceiling and
    /// absorbs all regeneration it has room for.
    PeakShave {
        /// Battery power ceiling (W).
        battery_ceiling_w: f64,
    },
    /// Exponential moving average split: the battery follows the slow
    /// component, the cap serves the fast residual.
    LowPass {
        /// Smoothing constant per step, 0–1 (smaller = smoother battery).
        alpha: f64,
    },
}

/// A hybrid energy storage system: the battery plus an ultracapacitor
/// behind a charge-split policy.
///
/// # Examples
///
/// ```
/// use ev_battery::{BatteryParams, Hess, SplitPolicy, Ultracapacitor};
/// use ev_units::{Seconds, Watts};
///
/// let mut hess = Hess::new(
///     BatteryParams::leaf_24kwh(),
///     Ultracapacitor::transit_bank(),
///     SplitPolicy::PeakShave { battery_ceiling_w: 25_000.0 },
/// );
/// let split = hess.apply_load(Watts::new(60_000.0), Seconds::new(1.0));
/// assert!(split.battery_power.value() <= 25_000.0 + 1e-9);
/// assert!(split.cap_power.value() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Hess {
    battery: Battery,
    cap: Ultracapacitor,
    policy: SplitPolicy,
    /// Low-pass state for [`SplitPolicy::LowPass`].
    filtered: f64,
}

/// How one HESS step split the requested power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HessSplit {
    /// Power served by (or into) the battery.
    pub battery_power: Watts,
    /// Power served by (or into) the ultracapacitor.
    pub cap_power: Watts,
}

impl Hess {
    /// Creates a HESS.
    #[must_use]
    pub fn new(battery: BatteryParams, cap: Ultracapacitor, policy: SplitPolicy) -> Self {
        Self {
            battery: Battery::new(battery),
            cap,
            policy,
            filtered: 0.0,
        }
    }

    /// Borrows the battery.
    #[must_use]
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Borrows the ultracapacitor.
    #[must_use]
    pub fn ultracapacitor(&self) -> &Ultracapacitor {
        &self.cap
    }

    /// Serves a load for `dt` according to the split policy; whatever the
    /// cap cannot take falls back onto the battery, so the request is
    /// always met (within battery capability).
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`.
    pub fn apply_load(&mut self, power: Watts, dt: Seconds) -> HessSplit {
        assert!(dt.value() > 0.0, "hess step must be positive");
        let p = power.value();
        let cap_request = match self.policy {
            SplitPolicy::BatteryOnly => 0.0,
            SplitPolicy::PeakShave { battery_ceiling_w } => {
                if p > battery_ceiling_w {
                    p - battery_ceiling_w
                } else if p < 0.0 {
                    p // caps love regen
                } else {
                    0.0
                }
            }
            SplitPolicy::LowPass { alpha } => {
                self.filtered += alpha.clamp(0.0, 1.0) * (p - self.filtered);
                p - self.filtered
            }
        };
        let cap_actual = self.cap.exchange(Watts::new(cap_request), dt);
        let battery_power = Watts::new(p - cap_actual.value());
        self.battery.step(battery_power, dt);
        HessSplit {
            battery_power,
            cap_power: cap_actual,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_units::Percent;

    fn cap() -> Ultracapacitor {
        Ultracapacitor::transit_bank()
    }

    #[test]
    fn cap_energy_window() {
        let c = cap();
        assert!(c.usable_energy_j() > 0.0);
        assert!(c.headroom_j() > 0.0);
        assert!(c.soc() > 0.0 && c.soc() < 1.0);
    }

    #[test]
    fn cap_discharge_lowers_voltage_charge_raises_it() {
        let mut c = cap();
        let v0 = c.voltage().value();
        c.exchange(Watts::new(5_000.0), Seconds::new(1.0));
        assert!(c.voltage().value() < v0);
        c.exchange(Watts::new(-10_000.0), Seconds::new(1.0));
        assert!(c.voltage().value() > c.v_min);
    }

    #[test]
    fn cap_respects_voltage_floor() {
        let mut c = cap();
        for _ in 0..10_000 {
            c.exchange(Watts::new(50_000.0), Seconds::new(1.0));
        }
        assert!((c.voltage().value() - 50.0).abs() < 1e-6);
        assert!(c.usable_energy_j() < 1e-6);
        // Fully drained: discharge requests return ~0.
        let p = c.exchange(Watts::new(1_000.0), Seconds::new(1.0));
        assert!(p.value() < 1e-6);
    }

    #[test]
    fn cap_respects_voltage_ceiling() {
        let mut c = cap();
        for _ in 0..10_000 {
            c.exchange(Watts::new(-50_000.0), Seconds::new(1.0));
        }
        assert!((c.voltage().value() - 125.0).abs() < 1e-6);
        let p = c.exchange(Watts::new(-1_000.0), Seconds::new(1.0));
        assert!(p.value() > -1e-6, "no more charge accepted: {p:?}");
    }

    #[test]
    fn charge_round_trip_loses_efficiency() {
        let mut c = cap();
        let e0 = c.usable_energy_j();
        c.exchange(Watts::new(-10_000.0), Seconds::new(1.0));
        c.exchange(Watts::new(10_000.0 * 0.95), Seconds::new(1.0));
        let e1 = c.usable_energy_j();
        assert!(
            (e1 - e0).abs() < 1.0,
            "95 % in, 95 % of request out: {e0} vs {e1}"
        );
    }

    #[test]
    fn peak_shave_caps_battery_power() {
        let mut h = Hess::new(
            BatteryParams::leaf_24kwh(),
            cap(),
            SplitPolicy::PeakShave {
                battery_ceiling_w: 20_000.0,
            },
        );
        let split = h.apply_load(Watts::new(55_000.0), Seconds::new(1.0));
        assert!((split.battery_power.value() - 20_000.0).abs() < 1e-6);
        assert!((split.cap_power.value() - 35_000.0).abs() < 1e-6);
    }

    #[test]
    fn peak_shave_routes_regen_to_cap_first() {
        let mut h = Hess::new(
            BatteryParams::leaf_24kwh(),
            cap(),
            SplitPolicy::PeakShave {
                battery_ceiling_w: 20_000.0,
            },
        );
        let split = h.apply_load(Watts::new(-15_000.0), Seconds::new(1.0));
        assert!(split.cap_power.value() < 0.0, "{split:?}");
        // Battery sees only what the cap could not take.
        assert!(split.battery_power.value().abs() < 15_000.0);
    }

    #[test]
    fn depleted_cap_falls_back_to_battery() {
        let mut h = Hess::new(
            BatteryParams::leaf_24kwh(),
            Ultracapacitor::new(10.0, Volts::new(50.0), Volts::new(60.0), Volts::new(51.0)),
            SplitPolicy::PeakShave {
                battery_ceiling_w: 10_000.0,
            },
        );
        // Tiny cap: the second big pull must land on the battery.
        let _ = h.apply_load(Watts::new(50_000.0), Seconds::new(1.0));
        let split = h.apply_load(Watts::new(50_000.0), Seconds::new(1.0));
        assert!(split.battery_power.value() > 45_000.0, "{split:?}");
    }

    #[test]
    fn low_pass_smooths_battery_power() {
        let mut h = Hess::new(
            BatteryParams::leaf_24kwh(),
            cap(),
            SplitPolicy::LowPass { alpha: 0.1 },
        );
        // Alternating load: battery power variance must be far below the
        // raw variance.
        let mut battery_powers = Vec::new();
        for k in 0..200 {
            let p = if k % 2 == 0 { 30_000.0 } else { 0.0 };
            let split = h.apply_load(Watts::new(p), Seconds::new(1.0));
            battery_powers.push(split.battery_power.value());
        }
        let tail = &battery_powers[100..];
        let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        let var: f64 = tail.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / tail.len() as f64;
        // Raw signal variance is 15 000² = 2.25e8; smoothed should be
        // at least 10× smaller.
        assert!(var < 2.25e7, "battery variance {var}");
    }

    #[test]
    fn battery_only_policy_is_transparent() {
        let mut h = Hess::new(BatteryParams::leaf_24kwh(), cap(), SplitPolicy::BatteryOnly);
        let split = h.apply_load(Watts::new(42_000.0), Seconds::new(1.0));
        assert_eq!(split.cap_power.value(), 0.0);
        assert_eq!(split.battery_power.value(), 42_000.0);
    }

    #[test]
    fn hess_battery_soc_flatter_with_peak_shave() {
        // Same spiky load with and without the cap: the HESS battery ends
        // at a higher SoC (fewer Peukert losses).
        let load = |k: usize| {
            if k.is_multiple_of(4) {
                60_000.0
            } else {
                4_000.0
            }
        };
        let mut plain = Hess::new(BatteryParams::leaf_24kwh(), cap(), SplitPolicy::BatteryOnly);
        let mut hybrid = Hess::new(
            BatteryParams::leaf_24kwh(),
            cap(),
            SplitPolicy::PeakShave {
                battery_ceiling_w: 15_000.0,
            },
        );
        for k in 0..300 {
            plain.apply_load(Watts::new(load(k)), Seconds::new(1.0));
            hybrid.apply_load(Watts::new(load(k)), Seconds::new(1.0));
        }
        assert!(
            hybrid.battery().soc().value() > plain.battery().soc().value(),
            "hybrid {} vs plain {}",
            hybrid.battery().soc(),
            plain.battery().soc()
        );
        let _ = Percent::new(0.0);
    }

    #[test]
    #[should_panic(expected = "voltage window inverted")]
    fn rejects_inverted_window() {
        let _ = Ultracapacitor::new(10.0, Volts::new(60.0), Volts::new(50.0), Volts::new(55.0));
    }
}
