//! Convenience runners that wire observers into a simulation.

use std::path::{Path, PathBuf};

use ev_core::{
    ControllerKind, ControllerSetup, EvParams, FlightRecorderObserver, SimulationResult,
    StepObserver, TraceRecorder,
};
use ev_drive::DriveProfile;
use ev_telemetry::FlightRecorder;

use crate::invariants::{InvariantObserver, InvariantReport};

/// Runs one (profile × controller) cell and returns the result together
/// with the full step-level trace.
///
/// # Panics
///
/// Panics if the profile is empty or the controller cannot be
/// instantiated for `params` (cannot happen for the built-in cycles and
/// parameter sets).
#[must_use]
pub fn run_traced(
    params: &EvParams,
    profile: DriveProfile,
    kind: ControllerKind,
) -> (SimulationResult, TraceRecorder) {
    let sim = ev_core::Simulation::new(params.clone(), profile).expect("profile non-empty");
    let mut controller = kind.instantiate(params).expect("controller instantiates");
    let mut recorder = TraceRecorder::new();
    let result = sim
        .run_observed(controller.as_mut(), &mut recorder)
        .expect("simulation runs");
    (result, recorder)
}

/// Runs one cell with both a trace recorder and an invariant observer
/// attached, returning the result, the trace and the invariant report.
/// The harness behind the golden-trace suite.
///
/// # Panics
///
/// Panics as [`run_traced`] does.
#[must_use]
pub fn run_checked(
    params: &EvParams,
    profile: DriveProfile,
    kind: ControllerKind,
) -> (SimulationResult, TraceRecorder, InvariantReport) {
    let sim = ev_core::Simulation::new(params.clone(), profile).expect("profile non-empty");
    let mut controller = kind.instantiate(params).expect("controller instantiates");
    let mut observers = (TraceRecorder::new(), InvariantObserver::for_params(params));
    let result = sim
        .run_observed(controller.as_mut(), &mut observers)
        .expect("simulation runs");
    let (recorder, invariants) = observers;
    (result, recorder, invariants.into_report())
}

/// Runs one cell with a flight recorder and the invariant observer
/// attached. If any invariant is violated, the recorder's window — the
/// MPC's decision records interleaved with the realized plant steps — is
/// dumped to `dump_path` (readable with `evsim explain`), naming the
/// first offending step in the dump reason. A clean run writes nothing.
///
/// # Panics
///
/// Panics as [`run_traced`] does, or if a due post-mortem dump cannot be
/// written.
#[must_use]
pub fn run_recorded(
    params: &EvParams,
    profile: DriveProfile,
    kind: ControllerKind,
    dump_path: &Path,
) -> (SimulationResult, InvariantReport, Option<PathBuf>) {
    let sim = ev_core::Simulation::new(params.clone(), profile).expect("profile non-empty");
    let recorder = FlightRecorder::enabled(FlightRecorder::DEFAULT_CAPACITY);
    let setup = ControllerSetup {
        recorder: recorder.clone(),
        ..ControllerSetup::default()
    };
    let mut controller = kind
        .instantiate_configured(params, &setup)
        .expect("controller instantiates");
    let mut observers = (
        FlightRecorderObserver::new(&recorder),
        InvariantObserver::for_params(params),
    );
    let result = sim
        .run_observed(controller.as_mut(), &mut observers)
        .expect("simulation runs");
    let (_, invariants) = observers;
    let report = invariants.into_report();
    let dump = dump_on_violation(&recorder, &report, dump_path);
    (result, report, dump)
}

/// Dumps the recorder's window to `path` when `report` carries any
/// violation, with a dump reason naming the first offending step (or
/// the whole-trace check that tripped). Returns the written path, or
/// `None` for a clean report.
///
/// # Panics
///
/// Panics if the dump cannot be written.
#[must_use]
pub fn dump_on_violation(
    recorder: &FlightRecorder,
    report: &InvariantReport,
    path: &Path,
) -> Option<PathBuf> {
    // A clean report records nothing; the first violation is always in
    // `recorded` (drops only start past MAX_RECORDED).
    let first = report.recorded.first()?;
    let at = first
        .step()
        .map_or_else(|| "whole-trace check".to_owned(), |s| format!("step {s}"));
    let reason = format!(
        "{} invariant violation(s), first at {at}: {first}",
        report.total
    );
    recorder
        .dump_to(path, &reason)
        .expect("invariant post-mortem dump written");
    Some(path.to_owned())
}

/// Drives an arbitrary observer over one cell; returns result + observer.
///
/// # Panics
///
/// Panics as [`run_traced`] does.
#[must_use]
pub fn run_with<O: StepObserver>(
    params: &EvParams,
    profile: DriveProfile,
    kind: ControllerKind,
    mut observer: O,
) -> (SimulationResult, O) {
    let sim = ev_core::Simulation::new(params.clone(), profile).expect("profile non-empty");
    let mut controller = kind.instantiate(params).expect("controller instantiates");
    let result = sim
        .run_observed(controller.as_mut(), &mut observer)
        .expect("simulation runs");
    (result, observer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_core::experiments::profile_at;
    use ev_drive::DriveCycle;

    #[test]
    fn run_checked_is_clean_on_the_builtin_cell() {
        let params = EvParams::nissan_leaf_like();
        let profile = profile_at(&DriveCycle::ece15(), 35.0);
        let (result, trace, report) = run_checked(&params, profile, ControllerKind::OnOff);
        assert_eq!(trace.records().len(), result.series.t.len());
        report.assert_clean();
    }

    #[test]
    fn recorded_run_writes_nothing_when_clean() {
        let dir = std::env::temp_dir().join(format!(
            "ev-testkit-recorded-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let params = EvParams::nissan_leaf_like();
        let profile = profile_at(&DriveCycle::ece15(), 35.0);
        let dump_path = dir.join("violation.jsonl");
        let (result, report, dump) =
            run_recorded(&params, profile, ControllerKind::Mpc, &dump_path);
        assert!(!result.series.t.is_empty());
        report.assert_clean();
        assert!(dump.is_none());
        assert!(!dump_path.exists());
    }

    #[test]
    fn violations_trigger_a_dump_naming_the_offending_step() {
        use crate::invariants::InvariantViolation;

        let dir = std::env::temp_dir().join(format!(
            "ev-testkit-dump-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let recorder = FlightRecorder::enabled(8);
        recorder.note("test", "synthetic trace");
        let report = InvariantReport {
            profile: "ECE-15".to_owned(),
            controller: "MPC".to_owned(),
            steps: 100,
            total: 2,
            recorded: vec![
                InvariantViolation::SocOutOfBounds {
                    step: 7,
                    soc: 120.0,
                },
                InvariantViolation::EnergyBookkeeping {
                    metered_j: 1.0,
                    expected_j: 2.0,
                },
            ],
        };
        let path = dir.join("nested").join("violation.jsonl");
        let written = dump_on_violation(&recorder, &report, &path).expect("dump written");
        assert_eq!(written, path);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("2 invariant violation(s), first at step 7"));
        assert!(text.contains("\"kind\":\"note\""));
        // Clean reports are inert.
        assert!(dump_on_violation(&recorder, &InvariantReport::default(), &path).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn violation_steps_are_exposed() {
        use crate::invariants::InvariantViolation;

        let v = InvariantViolation::CabinUnreachable {
            step: 42,
            cabin: 60.0,
            lo: 10.0,
            hi: 50.0,
        };
        assert_eq!(v.step(), Some(42));
        let whole_trace = InvariantViolation::ResultMismatch {
            what: "energy".to_owned(),
            result: 1.0,
            observed: 2.0,
        };
        assert_eq!(whole_trace.step(), None);
    }
}
