#![allow(clippy::all, clippy::pedantic, clippy::nursery)]
//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls against the vendored
//! value-tree `serde` core. `syn`/`quote` are unavailable in this
//! container, so the item is parsed directly from the raw
//! [`TokenStream`]: attributes and visibility are skipped, the field or
//! variant lists are extracted, and the impl is emitted as a formatted
//! string parsed back into tokens.
//!
//! Supported shapes (everything this workspace derives on):
//! - structs with named fields → JSON object
//! - tuple structs with one field → transparent (the inner value)
//! - tuple structs with several fields → JSON array
//! - unit structs → `null`
//! - enums of unit variants → the variant name as a string
//! - enums with named-field variants → externally tagged object
//!   `{"Variant": {fields...}}`
//!
//! Generics are not supported and panic with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its identifier and whether `#[serde(default)]`
/// was applied (missing JSON key → `Default::default()`).
struct Field {
    name: String,
    default: bool,
}

/// Field list of a struct or enum variant.
enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<Field>),
    /// Tuple fields (arity only).
    Tuple(usize),
    /// No fields.
    Unit,
}

/// What the derive was applied to.
enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Item {
    name: String,
    kind: Kind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        Kind::Struct(fields) => serialize_struct_body(fields),
        Kind::Enum(variants) => serialize_enum_body(variants),
    };
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}",
        name = item.name,
    );
    parse_code(&code)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        Kind::Struct(fields) => deserialize_struct_body(fields),
        Kind::Enum(variants) => deserialize_enum_body(&item.name, variants),
    };
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value)\n\
                 -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}",
        name = item.name,
    );
    parse_code(&code)
}

fn parse_code(code: &str) -> TokenStream {
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid code: {e}\n{code}"))
}

// ---------------------------------------------------------------- codegen

fn serialize_struct_body(fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    }
}

fn deserialize_struct_body(fields: &Fields) -> String {
    match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names.iter().map(named_field_init).collect();
            format!("::std::result::Result::Ok(Self {{ {} }})", inits.join(", "))
        }
        Fields::Tuple(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_value(v)?))".to_string()
        }
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(v.index({i})?)?"))
                .collect();
            format!("::std::result::Result::Ok(Self({}))", inits.join(", "))
        }
        Fields::Unit => "::std::result::Result::Ok(Self)".to_string(),
    }
}

/// The initializer expression for one named field during
/// deserialization; `#[serde(default)]` fields fall back to
/// `Default::default()` when the key is absent.
fn named_field_init(f: &Field) -> String {
    let name = &f.name;
    if f.default {
        format!(
            "{name}: match v.field(\"{name}\") {{ \
                 ::std::result::Result::Ok(fv) => ::serde::Deserialize::from_value(fv)?, \
                 ::std::result::Result::Err(_) => ::std::default::Default::default() \
             }}"
        )
    } else {
        format!("{name}: ::serde::Deserialize::from_value(v.field(\"{name}\")?)?")
    }
}

fn serialize_enum_body(variants: &[(String, Fields)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(v, fields)| match fields {
            Fields::Unit => format!(
                "Self::{v} => \
                 ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
            ),
            Fields::Named(names) => {
                let binds = names
                    .iter()
                    .map(|f| f.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ");
                let entries: Vec<String> = names
                    .iter()
                    .map(|f| {
                        let f = &f.name;
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value({f}))"
                        )
                    })
                    .collect();
                format!(
                    "Self::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                         ::std::string::String::from(\"{v}\"), \
                         ::serde::Value::Map(::std::vec![{}])\
                     )]),",
                    entries.join(", ")
                )
            }
            Fields::Tuple(_) => panic!("tuple enum variants are not supported by this derive"),
        })
        .collect();
    format!("match self {{\n{}\n}}", arms.join("\n"))
}

fn deserialize_enum_body(name: &str, variants: &[(String, Fields)]) -> String {
    let mut out = String::new();
    // Unit variants arrive as a plain string.
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, f)| matches!(f, Fields::Unit))
        .map(|(v, _)| format!("\"{v}\" => return ::std::result::Result::Ok(Self::{v}),"))
        .collect();
    if !unit_arms.is_empty() {
        out.push_str(&format!(
            "if let ::std::result::Result::Ok(s) = v.as_str() {{\n\
                 match s {{\n{}\n_ => {{}}\n}}\n\
             }}\n",
            unit_arms.join("\n")
        ));
    }
    // Data variants arrive externally tagged: {"Variant": {...}}.
    for (v, fields) in variants {
        if let Fields::Named(names) = fields {
            let inits: Vec<String> = names
                .iter()
                .map(|f| named_field_init(f).replace("v.field(", "inner.field("))
                .collect();
            out.push_str(&format!(
                "if let ::std::result::Result::Ok(inner) = v.field(\"{v}\") {{\n\
                     return ::std::result::Result::Ok(Self::{v} {{ {} }});\n\
                 }}\n",
                inits.join(", ")
            ));
        }
    }
    out.push_str(&format!(
        "::std::result::Result::Err(::serde::Error::msg(\
             format!(\"no variant of `{name}` matches {{v:?}}\")))"
    ));
    out
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let keyword = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // attribute
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1; // pub(crate) etc.
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break id.to_string();
            }
            other => panic!("serde_derive: unexpected token before struct/enum: {other:?}"),
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the offline stub");
    }
    let kind = if keyword == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Fields::Unit),
            other => panic!("serde_derive: unexpected struct body: {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, found {other:?}"),
        }
    };
    Item { name, kind }
}

/// Extracts field names from the brace-group of a named-field struct or
/// enum variant, skipping attributes, visibility, and type tokens.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut pending_default = false;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if attr_is_serde_default(tokens.get(i + 1)) {
                    pending_default = true;
                }
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) => {
                names.push(Field {
                    name: id.to_string(),
                    default: pending_default,
                });
                pending_default = false;
                i += 1;
                assert!(
                    matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
                    "serde_derive: expected `:` after field `{}`",
                    names.last().unwrap().name
                );
                i += 1;
                i = skip_type(&tokens, i);
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    i += 1;
                }
            }
            other => panic!("serde_derive: unexpected token in fields: {other:?}"),
        }
    }
    names
}

/// Whether the attribute body (the `[...]` group after `#`) is exactly
/// `serde(default)`.
fn attr_is_serde_default(tt: Option<&TokenTree>) -> bool {
    let Some(TokenTree::Group(g)) = tt else {
        return false;
    };
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            matches!(inner.as_slice(),
                [TokenTree::Ident(d)] if d.to_string() == "default")
        }
        _ => false,
    }
}

/// Advances past a type expression, stopping at a top-level `,`.
/// Tracks angle-bracket depth so commas inside generics don't split the
/// type; `->` inside fn types is treated as a unit.
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) => match p.as_char() {
                ',' if depth == 0 => return i,
                '<' => depth += 1,
                '-' if matches!(tokens.get(i + 1), Some(TokenTree::Punct(q))
                    if q.as_char() == '>') =>
                {
                    i += 1; // the `>` of `->` is not a closing bracket
                }
                '>' => depth = depth.saturating_sub(1),
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    i
}

/// Counts the fields of a tuple struct's paren group (top-level commas).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            _ => {}
        }
        let next = skip_type(&tokens, i);
        if next < tokens.len() {
            count += 1;
            i = next + 1;
        } else {
            break;
        }
    }
    count
}

/// Extracts `(variant name, fields)` pairs from an enum's brace group.
fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let fields = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        Fields::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        Fields::Tuple(count_tuple_fields(g.stream()))
                    }
                    _ => Fields::Unit,
                };
                variants.push((name, fields));
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    i += 1;
                }
            }
            other => panic!("serde_derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}
