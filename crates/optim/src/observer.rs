//! Per-iteration observation of the SQP solver.
//!
//! [`SqpObserver`] is the solver-level analogue of ev-core's
//! `StepObserver`: [`crate::SqpSolver::solve_observed`] calls
//! [`SqpObserver::on_iteration`] once per major iteration with the merit
//! value, step length, KKT/constraint residuals, QP subproblem status and
//! timing, and the active-set size. Observation is strictly read-only —
//! the solver's float path is identical with or without an observer
//! attached, so instrumented runs stay bit-for-bit reproducible.
//!
//! The [`SqpObserver::active`] gate lets the solver skip assembling a
//! record (including the `Instant::now()` reads around the QP solve and
//! the extra stationarity-residual matvecs) when nobody is listening;
//! [`NoopSqpObserver`] reports inactive, so the plain
//! [`crate::SqpSolver::solve`] entry point monomorphizes to the exact
//! pre-instrumentation hot loop.

/// How the QP subproblem of one SQP iteration was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpSubproblemStatus {
    /// The nominal borrowed-view QP solved directly.
    Nominal,
    /// The nominal QP hit a singular/ill-conditioned KKT system and was
    /// re-solved successfully with boosted Hessian regularization.
    RegularizationRetry,
    /// The nominal QP failed (even after the regularization retry) and
    /// the elastic (slack-penalized) reformulation was solved instead.
    Elastic,
    /// Both QP paths failed numerically; a scaled gradient-descent
    /// fallback step was taken.
    GradientFallback,
}

/// One major SQP iteration, as seen from outside the solver.
#[derive(Debug, Clone)]
pub struct SqpIterationRecord {
    /// Zero-based major-iteration index.
    pub iteration: usize,
    /// Objective value at the iterate the step was computed from.
    pub objective: f64,
    /// L1 merit value (`f + penalty · violation`) at that iterate.
    pub merit: f64,
    /// L1 constraint violation at that iterate.
    pub constraint_violation: f64,
    /// Stationarity residual `‖∇f + J_eqᵀy + J_inᵀλ‖_∞` of the KKT
    /// system at the iterate (NaN if a Jacobian product failed).
    pub kkt_residual: f64,
    /// Infinity norm of the proposed step `d`.
    pub step_norm: f64,
    /// Line-search step length α actually applied (0.0 when the
    /// iteration terminated before a line search ran).
    pub step_length: f64,
    /// Whether the line search accepted a trial point.
    pub accepted: bool,
    /// Number of line-search trials performed.
    pub line_search_steps: usize,
    /// Which QP path produced the step.
    pub qp_status: QpSubproblemStatus,
    /// Inner iterations reported by the QP solver (0 for the
    /// gradient-descent fallback).
    pub qp_iterations: usize,
    /// Wall-clock seconds spent in the QP subproblem (factorization +
    /// interior-point iterations).
    pub qp_seconds: f64,
    /// Number of inequality multipliers above threshold — the size of
    /// the QP's active set at the solution.
    pub active_set_size: usize,
    /// Indices of the inequality rows whose multipliers are above
    /// threshold — the QP's active set at the solution, in row order.
    /// Only assembled when the observer opts in via
    /// [`SqpObserver::wants_active_set`]; empty otherwise, so
    /// metrics-only observers pay no per-iteration allocation.
    pub active_set: Vec<usize>,
}

/// Receives one [`SqpIterationRecord`] per major SQP iteration.
pub trait SqpObserver {
    /// Whether records should be assembled at all. When this returns
    /// `false` the solver skips all record-only work (clock reads,
    /// residual matvecs) — identical to running unobserved.
    fn active(&self) -> bool {
        true
    }

    /// Whether [`SqpIterationRecord::active_set`] should be assembled.
    /// Defaults to `false`: [`SqpIterationRecord::active_set_size`] is
    /// always populated (a count costs nothing), but the index list
    /// requires a per-iteration allocation, so the solver only builds it
    /// for observers that ask.
    fn wants_active_set(&self) -> bool {
        false
    }

    /// Called once per major iteration, including the final one on
    /// which convergence was detected.
    fn on_iteration(&mut self, record: &SqpIterationRecord);
}

/// The do-nothing observer; [`SqpObserver::active`] is `false`, so the
/// solver pays nothing for the hook.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSqpObserver;

impl SqpObserver for NoopSqpObserver {
    fn active(&self) -> bool {
        false
    }

    fn on_iteration(&mut self, _record: &SqpIterationRecord) {}
}

impl<O: SqpObserver + ?Sized> SqpObserver for &mut O {
    fn active(&self) -> bool {
        (**self).active()
    }

    fn wants_active_set(&self) -> bool {
        (**self).wants_active_set()
    }

    fn on_iteration(&mut self, record: &SqpIterationRecord) {
        (**self).on_iteration(record);
    }
}

/// An observer that retains every record — convenient for tests and
/// offline convergence analysis.
#[derive(Debug, Clone, Default)]
pub struct SqpTraceObserver {
    /// All records received so far, in iteration order.
    pub records: Vec<SqpIterationRecord>,
}

impl SqpObserver for SqpTraceObserver {
    fn wants_active_set(&self) -> bool {
        true
    }

    fn on_iteration(&mut self, record: &SqpIterationRecord) {
        self.records.push(record.clone());
    }
}
