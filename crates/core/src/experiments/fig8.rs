//! Fig. 8 — average HVAC power comparison across drive profiles.

use crate::ControllerKind;

use super::format_table;
use super::sweep::{evaluation_sweep, SweepCell};

/// One drive profile's average-HVAC-power comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig8Row {
    /// Drive-profile name.
    pub profile: String,
    /// On/Off average HVAC power (kW).
    pub onoff_kw: f64,
    /// Fuzzy average HVAC power (kW).
    pub fuzzy_kw: f64,
    /// MPC average HVAC power (kW).
    pub mpc_kw: f64,
}

/// Projects the evaluation sweep into the Fig. 8 rows.
#[must_use]
pub fn fig8_from(cells: &[SweepCell]) -> Vec<Fig8Row> {
    let mut profiles: Vec<String> = Vec::new();
    for c in cells {
        if !profiles.contains(&c.profile) {
            profiles.push(c.profile.clone());
        }
    }
    profiles
        .into_iter()
        .map(|profile| {
            let get = |kind: ControllerKind| {
                super::sweep::find(cells, &profile, kind)
                    .expect("sweep contains every cell")
                    .result
                    .metrics()
                    .avg_hvac_power
                    .value()
            };
            Fig8Row {
                onoff_kw: get(ControllerKind::OnOff),
                fuzzy_kw: get(ControllerKind::Fuzzy),
                mpc_kw: get(ControllerKind::Mpc),
                profile,
            }
        })
        .collect()
}

/// Runs the full sweep and produces the Fig. 8 rows.
///
/// # Panics
///
/// Panics only if built-in simulations fail to construct (they do not).
#[must_use]
pub fn fig8() -> Vec<Fig8Row> {
    fig8_from(&evaluation_sweep())
}

/// Formats the Fig. 8 rows as a text table.
#[must_use]
pub fn render_fig8(rows: &[Fig8Row]) -> String {
    let header: Vec<String> = ["Drive profile", "On/Off kW", "Fuzzy kW", "Ours kW"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.profile.clone(),
                format!("{:.3}", r.onoff_kw),
                format!("{:.3}", r.fuzzy_kw),
                format!("{:.3}", r.mpc_kw),
            ]
        })
        .collect();
    let avg_vs_onoff: f64 = rows
        .iter()
        .map(|r| 100.0 * (r.onoff_kw - r.mpc_kw) / r.onoff_kw)
        .sum::<f64>()
        / rows.len() as f64;
    let avg_vs_fuzzy: f64 = rows
        .iter()
        .map(|r| 100.0 * (r.fuzzy_kw - r.mpc_kw) / r.fuzzy_kw)
        .sum::<f64>()
        / rows.len() as f64;
    format!(
        "Fig. 8 — average HVAC power per drive profile\n{}\naverage reduction vs On/Off: {:.1} % (paper: ~39 %); vs fuzzy: {:.1} % (paper: ~6 %)\n",
        format_table(&header, &body),
        avg_vs_onoff,
        avg_vs_fuzzy
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::evaluation_sweep_at;
    use ev_drive::DriveCycle;

    #[test]
    fn fig8_shape_on_reduced_sweep() {
        let cells = evaluation_sweep_at(35.0, &[DriveCycle::ece_eudc()]);
        let rows = fig8_from(&cells);
        let r = &rows[0];
        // Paper Fig. 8 ordering: On/Off ≥ fuzzy ≥ ours.
        assert!(
            r.onoff_kw > r.fuzzy_kw,
            "onoff {} fuzzy {}",
            r.onoff_kw,
            r.fuzzy_kw
        );
        assert!(
            r.mpc_kw <= r.fuzzy_kw * 1.05,
            "mpc {} fuzzy {}",
            r.mpc_kw,
            r.fuzzy_kw
        );
        assert!(
            r.mpc_kw < r.onoff_kw,
            "mpc {} onoff {}",
            r.mpc_kw,
            r.onoff_kw
        );
        // Everything is in a physically plausible band (< 6 kW cap).
        for v in [r.onoff_kw, r.fuzzy_kw, r.mpc_kw] {
            assert!(v > 0.0 && v < 6.0, "power {v}");
        }
    }

    #[test]
    fn render_includes_reduction_summary() {
        let cells = evaluation_sweep_at(35.0, &[DriveCycle::ece15()]);
        let text = render_fig8(&fig8_from(&cells));
        assert!(text.contains("reduction vs On/Off"));
    }
}
