//! End-to-end pipeline tests spanning every crate: drive-profile
//! generation → power train → controller → HVAC → battery → metrics.

use ev_testkit::InvariantObserver;
use evclimate::core::ControllerKind;
use evclimate::drive::synthetic::RouteConfig;
use evclimate::prelude::*;

/// Runs one cell with the `ev-testkit` physics invariants checked at
/// every simulated step.
fn run(kind: ControllerKind, profile: DriveProfile) -> SimulationResult {
    let mut params = EvParams::nissan_leaf_like();
    params.initial_cabin = Some(params.target);
    let sim = Simulation::new(params.clone(), profile).expect("profile non-empty");
    let mut controller = kind.instantiate(&params).expect("instantiates");
    let mut invariants = InvariantObserver::for_params(&params);
    let result = sim
        .run_observed(controller.as_mut(), &mut invariants)
        .expect("runs");
    invariants.report().assert_clean();
    result
}

fn synthetic_profile() -> DriveProfile {
    RouteConfig::new(42)
        .urban_minutes(3.0)
        .highway_minutes(3.0)
        .hilliness(3.0)
        .ambient(Celsius::new(33.0))
        .generate()
}

#[test]
fn synthetic_route_full_pipeline() {
    for kind in ControllerKind::paper_lineup() {
        let r = run(kind, synthetic_profile());
        let m = r.metrics();
        assert!(m.distance.value() > 2.0, "{kind:?}: {m:?}");
        assert!(m.energy.value() > 0.0);
        assert!(
            m.kwh_per_100km > 5.0 && m.kwh_per_100km < 40.0,
            "{kind:?}: {}",
            m.kwh_per_100km
        );
        assert!(m.final_soc < 95.0 && m.final_soc > 80.0);
        assert!(m.delta_soh_milli_percent > 0.0);
        assert!(m.cycles_to_eol.is_finite() && m.cycles_to_eol > 100.0);
    }
}

#[test]
fn runs_are_deterministic() {
    let a = run(ControllerKind::Mpc, synthetic_profile());
    let b = run(ControllerKind::Mpc, synthetic_profile());
    assert_eq!(a, b, "two identical MPC runs must agree bit-for-bit");
}

#[test]
fn result_serde_round_trip() {
    let r = run(ControllerKind::Fuzzy, synthetic_profile());
    let json = serde_json::to_string(&r).expect("serializes");
    let back: SimulationResult = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back.profile, r.profile);
    assert_eq!(back.series.t.len(), r.series.t.len());
    assert!(
        (back.metrics().avg_hvac_power.value() - r.metrics().avg_hvac_power.value()).abs() < 1e-9
    );
}

#[test]
fn energy_accounting_is_consistent() {
    // The battery energy must equal the integral of the positive battery
    // power (the metric definition), and the power series must decompose
    // into motor + HVAC + accessories wherever the BMS did not clamp.
    let r = run(ControllerKind::OnOff, synthetic_profile());
    let dt = r.dt;
    let integral: f64 = r
        .series
        .battery_power
        .iter()
        .map(|p| p.max(0.0) * dt)
        .sum::<f64>()
        / 3.6e6;
    assert!((integral - r.metrics().energy.value()).abs() < 1e-9);
    for k in 0..r.series.t.len() {
        let total = r.series.motor_power[k] + r.series.hvac_power[k] + 300.0;
        let clamped = total.clamp(-50_000.0, 90_000.0);
        assert!(
            (r.series.battery_power[k] - clamped).abs() < 1e-6,
            "sample {k}: battery {} vs decomposition {clamped}",
            r.series.battery_power[k]
        );
    }
}

#[test]
fn hvac_power_split_sums_to_total() {
    let r = run(ControllerKind::Fuzzy, synthetic_profile());
    for k in 0..r.series.t.len() {
        let sum = r.series.heating_power[k] + r.series.cooling_power[k] + r.series.fan_power[k];
        assert!(
            (sum - r.series.hvac_power[k]).abs() < 1e-9,
            "sample {k}: {sum} vs {}",
            r.series.hvac_power[k]
        );
    }
}

#[test]
fn diurnal_climate_drives_varying_ambient() {
    use evclimate::drive::synthetic::DiurnalClimate;
    use evclimate::drive::{DriveCycle as DC, DriveProfile as DP};
    let climate = DiurnalClimate::new(Celsius::new(18.0), Celsius::new(36.0));
    let cond = climate.conditions_for_drive(13.0, Seconds::new(1200.0));
    let profile = DP::from_cycle(&DC::nedc(), cond, Seconds::new(1.0));
    // Ambient actually varies along the drive.
    let first = profile.sample(0).ambient.value();
    let last = profile.sample(profile.len() - 1).ambient.value();
    assert!((first - last).abs() > 0.05, "ambient {first} → {last}");
    let r = run(ControllerKind::Fuzzy, profile);
    assert!(r.metrics().avg_hvac_power.value() > 0.0);
}
