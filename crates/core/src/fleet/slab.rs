//! A minimal slab allocator for per-shard session state.
//!
//! Sessions churn constantly in a long-lived serving process (vehicles
//! connect, drive, disconnect); a slab keeps them in one contiguous
//! `Vec` with O(1) insert/remove and **stable keys**, recycling vacated
//! slots through an intrusive free list instead of shifting neighbours
//! or fragmenting the heap with per-session boxes.

/// One slab slot: either a live value or a link in the free list.
#[derive(Debug)]
enum Entry<T> {
    Occupied(T),
    /// Vacant, pointing at the next free slot (`None` = end of list).
    Vacant(Option<usize>),
}

/// A contiguous arena with O(1) insert/remove and stable `usize` keys.
///
/// Keys are recycled after removal, so holders of a stale key must
/// guard against re-use themselves (the fleet shard does: its
/// vehicle-id map is the single source of truth for key validity).
#[derive(Debug, Default)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    /// Head of the free list.
    next_free: Option<usize>,
    len: usize,
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    #[must_use]
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
            next_free: None,
            len: 0,
        }
    }

    /// Creates an empty slab with room for `capacity` values before
    /// reallocating.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
            next_free: None,
            len: 0,
        }
    }

    /// Number of live values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no live values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `value`, returning its key. Reuses the most recently
    /// vacated slot when one exists.
    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        match self.next_free {
            Some(key) => {
                let Entry::Vacant(next) = self.entries[key] else {
                    unreachable!("free list pointed at an occupied slot");
                };
                self.next_free = next;
                self.entries[key] = Entry::Occupied(value);
                key
            }
            None => {
                self.entries.push(Entry::Occupied(value));
                self.entries.len() - 1
            }
        }
    }

    /// Removes and returns the value at `key`, if occupied.
    pub fn remove(&mut self, key: usize) -> Option<T> {
        match self.entries.get_mut(key) {
            Some(slot @ Entry::Occupied(_)) => {
                let prev = std::mem::replace(slot, Entry::Vacant(self.next_free));
                self.next_free = Some(key);
                self.len -= 1;
                match prev {
                    Entry::Occupied(value) => Some(value),
                    Entry::Vacant(_) => unreachable!("matched occupied above"),
                }
            }
            _ => None,
        }
    }

    /// Borrows the value at `key`, if occupied.
    #[must_use]
    pub fn get(&self, key: usize) -> Option<&T> {
        match self.entries.get(key) {
            Some(Entry::Occupied(value)) => Some(value),
            _ => None,
        }
    }

    /// Mutably borrows the value at `key`, if occupied.
    #[must_use]
    pub fn get_mut(&mut self, key: usize) -> Option<&mut T> {
        match self.entries.get_mut(key) {
            Some(Entry::Occupied(value)) => Some(value),
            _ => None,
        }
    }

    /// Iterates over `(key, &value)` for every live slot.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(k, e)| match e {
                Entry::Occupied(v) => Some((k, v)),
                Entry::Vacant(_) => None,
            })
    }

    /// Iterates over `(key, &mut value)` for every live slot.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut T)> {
        self.entries
            .iter_mut()
            .enumerate()
            .filter_map(|(k, e)| match e {
                Entry::Occupied(v) => Some((k, v)),
                Entry::Vacant(_) => None,
            })
    }

    /// Removes every value, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.next_free = None;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab = Slab::new();
        let a = slab.insert("a");
        let b = slab.insert("b");
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.remove(a), Some("a"));
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.remove(a), None, "double remove must be None");
        assert_eq!(slab.get(b), Some(&"b"));
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn vacated_slots_are_recycled_lifo() {
        let mut slab = Slab::new();
        let keys: Vec<usize> = (0..4).map(|i| slab.insert(i)).collect();
        slab.remove(keys[1]);
        slab.remove(keys[3]);
        // Most recently vacated first.
        assert_eq!(slab.insert(30), keys[3]);
        assert_eq!(slab.insert(10), keys[1]);
        // Free list exhausted: the next insert grows the arena.
        assert_eq!(slab.insert(40), 4);
        assert_eq!(slab.len(), 5);
    }

    #[test]
    fn iter_skips_vacant_slots() {
        let mut slab = Slab::with_capacity(8);
        let keys: Vec<usize> = (0..5).map(|i| slab.insert(i * 100)).collect();
        slab.remove(keys[0]);
        slab.remove(keys[2]);
        let live: Vec<(usize, i32)> = slab.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(live, vec![(1, 100), (3, 300), (4, 400)]);
        for (_, v) in slab.iter_mut() {
            *v += 1;
        }
        assert_eq!(slab.get(keys[1]), Some(&101));
    }

    #[test]
    fn clear_resets_everything() {
        let mut slab = Slab::new();
        for i in 0..10 {
            slab.insert(i);
        }
        slab.clear();
        assert!(slab.is_empty());
        assert_eq!(slab.insert(99), 0, "fresh arena after clear");
    }
}
