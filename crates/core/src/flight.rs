//! Bridges the simulation's [`StepObserver`] stream into an
//! [`ev_telemetry::FlightRecorder`].
//!
//! [`FlightRecorderObserver`] is the plant-side half of the flight
//! recorder: the MPC pushes one `DecisionRecord` per solve on its own,
//! and this observer interleaves a compact [`StepSummary`] per realized
//! plant step, so a post-mortem dump shows what the controller *planned*
//! next to what the plant actually *did*. Against a disabled recorder
//! `on_step` is a single branch.

use ev_telemetry::{FlightRecorder, StepSummary};

use crate::observe::{StepObserver, StepRecord};

/// A [`StepObserver`] that records each simulated step into a flight
/// recorder's ring buffer.
///
/// # Examples
///
/// ```
/// use ev_core::{FlightRecorderObserver, Simulation};
/// use ev_telemetry::FlightRecorder;
/// # use ev_core::{ControllerKind, EvParams};
/// # use ev_drive::{AmbientConditions, DriveCycle, DriveProfile};
/// # use ev_units::{Celsius, Seconds};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let recorder = FlightRecorder::enabled(128);
/// let params = EvParams::nissan_leaf_like();
/// let profile = DriveProfile::from_cycle(
///     &DriveCycle::ece15(),
///     AmbientConditions::constant(Celsius::new(35.0)),
///     Seconds::new(1.0),
/// );
/// let sim = Simulation::new(params.clone(), profile)?;
/// let mut controller = ControllerKind::OnOff.instantiate(&params)?;
/// let mut observer = FlightRecorderObserver::new(&recorder);
/// sim.run_observed(controller.as_mut(), &mut observer)?;
/// assert!(!recorder.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FlightRecorderObserver {
    recorder: FlightRecorder,
}

impl FlightRecorderObserver {
    /// Wraps a recorder handle (clones are cheap and share the ring).
    #[must_use]
    pub fn new(recorder: &FlightRecorder) -> Self {
        Self {
            recorder: recorder.clone(),
        }
    }
}

impl StepObserver for FlightRecorderObserver {
    fn on_step(&mut self, record: &StepRecord) {
        if !self.recorder.is_enabled() {
            return;
        }
        self.recorder.record_step(StepSummary {
            step: record.step as u64,
            t_s: record.t,
            motor_power_w: record.motor_power,
            hvac_power_w: record.hvac_power(),
            battery_power_w: record.battery_power,
            soc_pct: record.soc,
            cabin_c: record.cabin_temp,
            ambient_c: record.ambient,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::ControllerMode;
    use ev_telemetry::FlightRecord;

    fn record(step: usize) -> StepRecord {
        StepRecord {
            step,
            t: step as f64,
            dt: 1.0,
            motor_power: 4_000.0,
            heating_power: 0.0,
            cooling_power: 1_500.0,
            fan_power: 60.0,
            accessory_power: 300.0,
            battery_power: 5_860.0,
            soc: 90.0,
            cabin_temp: 24.5,
            pack_temp: 30.0,
            ambient: 35.0,
            solar: 400.0,
            supply_temp: 12.0,
            coil_temp: 12.0,
            recirculation: 0.9,
            flow: 0.1,
            mode: ControllerMode::Cooling,
        }
    }

    #[test]
    fn steps_land_in_the_ring() {
        let recorder = FlightRecorder::enabled(8);
        let mut obs = FlightRecorderObserver::new(&recorder);
        obs.on_step(&record(0));
        obs.on_step(&record(1));
        let records = recorder.records();
        assert_eq!(records.len(), 2);
        match &records[1] {
            FlightRecord::Step(s) => {
                assert_eq!(s.step, 1);
                assert_eq!(s.hvac_power_w, 1_560.0);
                assert_eq!(s.cabin_c, 24.5);
            }
            other => panic!("expected step record, got {other:?}"),
        }
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let recorder = FlightRecorder::disabled();
        let mut obs = FlightRecorderObserver::new(&recorder);
        obs.on_step(&record(0));
        assert!(recorder.is_empty());
    }
}
