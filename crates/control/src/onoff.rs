//! The switching On/Off (bang-bang) baseline controller.

use ev_hvac::{Hvac, HvacInput, HvacLimits};
use ev_units::Celsius;

use crate::{ClimateController, ControlContext};

/// The switching On/Off climate-control baseline (the paper's refs
/// \[8\]\[9\]): a thermostat with hysteresis that runs the HVAC at full
/// capacity whenever the cabin temperature leaves the deadband and shuts
/// it to minimum ventilation when it returns.
///
/// This is the i-MiEV-style production strategy the paper compares
/// against; it produces the largest cabin-temperature fluctuation
/// (its Fig. 5) and the highest power draw (its Fig. 8).
///
/// # Examples
///
/// ```
/// use ev_control::{ClimateController, ControlContext, OnOffController};
/// use ev_hvac::{CabinParams, Hvac, HvacLimits, HvacParams, HvacState};
/// use ev_units::{Celsius, Percent, Seconds, Watts};
///
/// let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
/// let mut ctrl = OnOffController::new(hvac, HvacLimits::default(), Celsius::new(24.0), 1.5);
/// let ctx = ControlContext {
///     state: HvacState::new(Celsius::new(28.0)), // too hot → full cooling
///     ambient: Celsius::new(35.0),
///     solar: Watts::new(400.0),
///     soc: Percent::new(90.0),
///     soc_avg: 92.0,
///     dt: Seconds::new(1.0),
///     elapsed: Seconds::ZERO,
///     preview: &[],
/// };
/// let input = ctrl.control(&ctx);
/// assert_eq!(input.mz.value(), 0.25); // full fan
/// ```
#[derive(Debug, Clone)]
pub struct OnOffController {
    hvac: Hvac,
    limits: HvacLimits,
    target: Celsius,
    hysteresis: f64,
    /// Whether the machine is currently running.
    on: bool,
    /// Safety margin on the power-cap-derived coil temperature span.
    cap_margin: f64,
}

impl OnOffController {
    /// Blower flow fraction (of the min–max span) held while the
    /// coils are switched off.
    const VENT_FLOW_FRACTION: f64 = 0.55;
}

impl OnOffController {
    /// Creates the controller.
    ///
    /// `hysteresis` is the half-width of the thermostat deadband in
    /// kelvins.
    ///
    /// # Panics
    ///
    /// Panics if `hysteresis <= 0`.
    #[must_use]
    pub fn new(hvac: Hvac, limits: HvacLimits, target: Celsius, hysteresis: f64) -> Self {
        assert!(hysteresis > 0.0, "hysteresis must be positive");
        Self {
            hvac,
            limits,
            target,
            hysteresis,
            on: false,
            cap_margin: 0.98,
        }
    }

    /// The thermostat target.
    #[must_use]
    pub fn target(&self) -> Celsius {
        self.target
    }

    /// Whether the HVAC machine is currently switched on.
    #[must_use]
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Builds the full-capacity input for the current conditions: maximum
    /// fan, coil driven as far as its power cap allows.
    fn full_power_input(&self, ctx: &ControlContext<'_>, cooling: bool) -> HvacInput {
        let p = self.hvac.params();
        let cp = self.hvac.cabin().air_heat_capacity.value();
        let mz = p.max_flow;
        let dr = 0.5;
        let probe = HvacInput {
            ts: self.target,
            tc: self.target,
            dr,
            mz,
        };
        let tm = self.hvac.mixed_air(&probe, ctx.state.tz, ctx.ambient);
        if cooling {
            // Pc = cp/ηc·ṁz·(Tm − Tc) ≤ P̄c ⇒ Tc ≥ Tm − P̄c·ηc/(cp·ṁz).
            let span = p.max_cooling_power.value() * p.cooler_efficiency / (cp * mz.value())
                * self.cap_margin;
            let tc = Celsius::new(tm.value() - span).max(p.min_coil_temp);
            HvacInput { ts: tc, tc, dr, mz }
        } else {
            // Heater from a passive coil at Tm up its power cap.
            let span = p.max_heating_power.value() * p.heater_efficiency / (cp * mz.value())
                * self.cap_margin;
            let tc = tm;
            let ts = Celsius::new(tm.value() + span).min(p.max_supply_temp);
            HvacInput { ts, tc, dr, mz }
        }
    }
}

impl ClimateController for OnOffController {
    fn name(&self) -> &'static str {
        "on-off"
    }

    fn reset_session(&mut self) {
        self.on = false;
    }

    fn control(&mut self, ctx: &ControlContext<'_>) -> HvacInput {
        let error = ctx.state.tz.diff(self.target); // + = too hot
                                                    // Mode by the sign of the error once outside the deadband;
                                                    // hysteresis on the switch decision.
        if error.abs() > self.hysteresis {
            self.on = true;
        } else if error.abs() < 0.15 * self.hysteresis {
            self.on = false;
        }
        let input = if self.on {
            self.full_power_input(ctx, error > 0.0)
        } else {
            // Production bang-bang systems (the i-MiEV-class reference
            // [8]) cycle the compressor/heater but keep the blower
            // running at its set speed: passive coils, ventilation flow.
            let p = self.hvac.params();
            let mz = Self::VENT_FLOW_FRACTION * (p.max_flow.value() - p.min_flow.value())
                + p.min_flow.value();
            let probe = HvacInput {
                ts: ctx.state.tz,
                tc: ctx.state.tz,
                dr: 0.5,
                mz: ev_units::KgPerSecond::new(mz),
            };
            let tm = self.hvac.mixed_air(&probe, ctx.state.tz, ctx.ambient);
            HvacInput {
                ts: tm,
                tc: tm,
                dr: 0.5,
                mz: ev_units::KgPerSecond::new(mz),
            }
        };
        self.limits
            .clamp_input(&self.hvac, input, ctx.state, ctx.ambient)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ev_hvac::{CabinParams, HvacParams, HvacState};
    use ev_units::{Percent, Seconds, Watts};

    fn controller() -> OnOffController {
        OnOffController::new(
            Hvac::new(CabinParams::default(), HvacParams::default()),
            HvacLimits::default(),
            Celsius::new(24.0),
            1.5,
        )
    }

    fn ctx_at(tz: f64, to: f64) -> ControlContext<'static> {
        ControlContext {
            state: HvacState::new(Celsius::new(tz)),
            ambient: Celsius::new(to),
            solar: Watts::new(400.0),
            soc: Percent::new(90.0),
            soc_avg: 92.0,
            dt: Seconds::new(1.0),
            elapsed: Seconds::ZERO,
            preview: &[],
        }
    }

    #[test]
    fn switches_on_when_hot() {
        let mut c = controller();
        let input = c.control(&ctx_at(27.0, 35.0));
        assert!(c.is_on());
        assert_eq!(input.mz.value(), 0.25);
        // Cooling: coil well below the mix temperature.
        assert!(input.tc.value() < 24.0);
        assert_eq!(input.ts, input.tc);
    }

    #[test]
    fn switches_on_when_cold_in_heating_direction() {
        let mut c = controller();
        let input = c.control(&ctx_at(20.0, -5.0));
        assert!(c.is_on());
        assert!(input.ts.value() > input.tc.value(), "heater active");
    }

    #[test]
    fn stays_off_inside_deadband_with_blower_running() {
        let mut c = controller();
        let input = c.control(&ctx_at(24.5, 35.0));
        assert!(!c.is_on());
        // Coils passive but the blower keeps its set speed.
        assert!(input.mz.value() > c.hvac.params().min_flow.value());
        let power = c.hvac.power(
            &input,
            HvacState::new(Celsius::new(24.5)),
            Celsius::new(35.0),
        );
        assert_eq!(power.heating.value(), 0.0);
        assert!(power.cooling.value() < 1e-9);
        assert!(power.fan.value() > 0.0);
    }

    #[test]
    fn hysteresis_keeps_running_until_near_target() {
        let mut c = controller();
        let _ = c.control(&ctx_at(27.0, 35.0));
        assert!(c.is_on());
        // Still above the switch-off threshold: keeps cooling.
        let _ = c.control(&ctx_at(25.0, 35.0));
        assert!(c.is_on());
        // Close enough to the target: switches off.
        let _ = c.control(&ctx_at(24.1, 35.0));
        assert!(!c.is_on());
    }

    #[test]
    fn full_power_respects_caps() {
        let mut c = controller();
        // Extreme heat: the commanded input must stay within C8/C9.
        let ctx = ctx_at(27.0, 43.0);
        let input = c.control(&ctx);
        let power = c.hvac.power(&input, ctx.state, ctx.ambient);
        assert!(power.cooling.value() <= 6000.0 + 1.0, "{:?}", power);
        assert!(power.heating.value() <= 6000.0 + 1.0);
    }

    #[test]
    fn produces_limit_cycle_in_closed_loop() {
        // Closed loop against the plant: temperature must oscillate
        // around the deadband rather than diverge.
        let hvac = Hvac::new(CabinParams::default(), HvacParams::default());
        let mut c = controller();
        let mut state = HvacState::new(Celsius::new(30.0));
        let mut min_tz: f64 = f64::MAX;
        let mut max_tz: f64 = f64::MIN;
        for k in 0..1500 {
            let ctx = ControlContext {
                state,
                ..ctx_at(state.tz.value(), 35.0)
            };
            let input = c.control(&ctx);
            let (next, _) = hvac.step(
                state,
                &input,
                Celsius::new(35.0),
                Watts::new(400.0),
                Seconds::new(1.0),
            );
            state = next;
            if k > 500 {
                min_tz = min_tz.min(state.tz.value());
                max_tz = max_tz.max(state.tz.value());
            }
        }
        assert!(max_tz < 27.5, "max {max_tz}");
        assert!(min_tz > 21.0, "min {min_tz}");
        // Genuine oscillation, the signature of bang-bang control.
        assert!(max_tz - min_tz > 1.0, "swing {}", max_tz - min_tz);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn rejects_non_positive_hysteresis() {
        let _ = OnOffController::new(
            Hvac::new(CabinParams::default(), HvacParams::default()),
            HvacLimits::default(),
            Celsius::new(24.0),
            0.0,
        );
    }
}
