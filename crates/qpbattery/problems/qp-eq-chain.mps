* Equality-only QP (exercises the solver's pure-equality KKT path):
* min 0.5 ||x||^2 s.t. x_i + x_{i+1} = 1 for i = 1..5, x free.
* Optimum x_i = 0.5 for all i, f* = 0.75.
NAME QPEQCHAIN
ROWS
 N OBJ
 E E1
 E E2
 E E3
 E E4
 E E5
COLUMNS
 X1 OBJ 0.0 E1 1.0
 X2 OBJ 0.0 E1 1.0
 X2 E2 1.0
 X3 OBJ 0.0 E2 1.0
 X3 E3 1.0
 X4 OBJ 0.0 E3 1.0
 X4 E4 1.0
 X5 OBJ 0.0 E4 1.0
 X5 E5 1.0
 X6 OBJ 0.0 E5 1.0
RHS
 RHS E1 1.0 E2 1.0
 RHS E3 1.0 E4 1.0
 RHS E5 1.0
BOUNDS
 FR BND X1
 FR BND X2
 FR BND X3
 FR BND X4
 FR BND X5
 FR BND X6
QUADOBJ
 X1 X1 1.0
 X2 X2 1.0
 X3 X3 1.0
 X4 X4 1.0
 X5 X5 1.0
 X6 X6 1.0
ENDATA
