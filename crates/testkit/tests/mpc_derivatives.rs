//! Property test pinning the MPC's analytic derivatives to the
//! central-difference reference.
//!
//! The controller's NLP supplies an adjoint-sweep objective gradient and a
//! forward-sensitivity inequality Jacobian; the solver's documented
//! fallback is [`ev_optim::finite_diff`]. The two must agree to ≤1e-5
//! relative at random cabin/ambient/SoC states and random decision
//! vectors, otherwise the "exact" derivatives are silently steering the
//! SQP iterates somewhere else.

use ev_control::{ControlContext, MpcController, PreviewSample};
use ev_hvac::{CabinParams, Hvac, HvacLimits, HvacState};
use ev_optim::NlpProblem;
use ev_units::{Celsius, Percent, Seconds, Watts};
use proptest::prelude::*;

const HORIZON: usize = 6;
const VARS_PER_STEP: usize = 4;
const INEQ_PER_STEP: usize = 13;
/// The C4 row (`tc − tm`), used to recover `tm` from constraint values.
const C4_ROW: usize = 5;
/// The coil floor of the default HVAC parameters (°C). The floor
/// constraint `min(min_coil, tm) − tc` has a kink at `tm = min_coil`
/// where central differences straddle two branches; samples near it are
/// rejected rather than asserted on.
const MIN_COIL_C: f64 = 4.0;

fn controller() -> MpcController {
    MpcController::builder(
        Hvac::new(CabinParams::default(), ev_hvac::HvacParams::default()),
        HvacLimits::default(),
    )
    .horizon(HORIZON)
    .prediction_dt(Seconds::new(4.0))
    .recompute_every(1)
    .build()
    .expect("valid mpc config")
}

fn preview(motor_kw: f64, to: f64) -> Vec<PreviewSample> {
    (0..HORIZON * 4)
        .map(|i| PreviewSample {
            // Saw-tooth motor power so SoC couplings differ per step.
            motor_power: Watts::new(motor_kw * 1000.0 * (1.0 + 0.5 * ((i % 5) as f64 - 2.0) / 2.0)),
            ambient: Celsius::new(to),
            solar: Watts::new(350.0),
        })
        .collect()
}

fn ctx_at<'a>(tz: f64, to: f64, soc: f64, samples: &'a [PreviewSample]) -> ControlContext<'a> {
    ControlContext {
        state: HvacState::new(Celsius::new(tz)),
        ambient: Celsius::new(to),
        solar: Watts::new(350.0),
        soc: Percent::new(soc),
        soc_avg: soc + 1.5,
        dt: Seconds::new(1.0),
        elapsed: Seconds::ZERO,
        preview: samples,
    }
}

/// `|analytic − fd|` must be ≤ `1e-5·max(|fd|, 1)`.
fn close(analytic: f64, fd: f64) -> bool {
    (analytic - fd).abs() <= 1e-5 * fd.abs().max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn analytic_derivatives_match_central_difference(
        tz in 12.0f64..40.0,
        to in -15.0f64..45.0,
        soc in 25.0f64..95.0,
        motor_kw in 0.0f64..60.0,
        steps in proptest::collection::vec(
            (1.0f64..4.5, 0.8f64..4.2, 0.0f64..0.7, 0.3f64..2.4),
            HORIZON,
        ),
    ) {
        let c = controller();
        let samples = preview(motor_kw, to);
        let context = ctx_at(tz, to, soc, &samples);
        let nlp = c.nlp(&context);
        prop_assert!(nlp.has_exact_derivatives());

        let mut z = Vec::with_capacity(HORIZON * VARS_PER_STEP);
        for &(ts, tc, dr, mz) in &steps {
            z.extend_from_slice(&[ts, tc, dr, mz]);
        }

        // Recover tm per step from the C4 row (tc − tm) and reject
        // samples near the coil-floor kink.
        let m = nlp.num_ineq();
        let mut cons = vec![0.0; m];
        nlp.ineq_constraints(&z, &mut cons);
        for k in 0..HORIZON {
            let tc_phys = z[k * VARS_PER_STEP + 1] * 10.0;
            let tm = tc_phys - cons[k * INEQ_PER_STEP + C4_ROW];
            prop_assume!((tm - MIN_COIL_C).abs() > 0.05);
        }

        let n = nlp.num_vars();
        let mut grad = vec![0.0; n];
        nlp.gradient(&z, &mut grad);
        let fd_grad = ev_optim::finite_diff::gradient(&|p: &[f64]| nlp.objective(p), &z);
        for i in 0..n {
            prop_assert!(
                close(grad[i], fd_grad[i]),
                "grad[{}]: analytic {} vs central-difference {}",
                i, grad[i], fd_grad[i]
            );
        }

        let jac = nlp.ineq_jacobian(&z);
        let fd_jac = ev_optim::finite_diff::jacobian(
            &|p: &[f64], out: &mut [f64]| nlp.ineq_constraints(p, out),
            &z,
            m,
        );
        prop_assert_eq!(m, fd_jac.len());
        for (r, fd_row) in fd_jac.iter().enumerate() {
            for (col, &f) in fd_row.iter().enumerate() {
                prop_assert!(
                    close(jac.get(r, col), f),
                    "jac[{},{}]: analytic {} vs central-difference {}",
                    r, col, jac.get(r, col), f
                );
            }
        }
    }
}
