#!/usr/bin/env python3
"""Benchmark regression gate.

Parses the output of the vendored-criterion benchmark harness
(`cargo bench -p ev-bench --bench mpc_derivatives`), whose timing lines
look like

    mpc_derivatives/control_step_h32_banded  time: [204.56 µs 214.05 µs 230.52 µs]

and compares each median against the committed baseline in
``BENCH_mpc.json``. Exits non-zero if any benchmark's median regresses by
more than the threshold (default 20%), printing a per-benchmark table
either way.

Benchmarks present in the run but absent from the baseline are reported
as "new" and do not fail the gate (commit an updated BENCH_mpc.json to
start tracking them). Baseline entries missing from the run DO fail the
gate: a silently dropped benchmark is how a regression hides.

Usage:
    cargo bench -p ev-bench --bench mpc_derivatives | tee bench.out
    python3 scripts/bench_gate.py bench.out [--baseline BENCH_mpc.json]
                                            [--threshold 0.20]
"""

from __future__ import annotations

import argparse
import json
import re
import sys

# `time: [<lo> <unit> <median> <unit> <hi> <unit>]`
TIME_LINE = re.compile(
    r"^(?P<id>\S+)\s+time:\s+\["
    r"\s*[\d.]+\s*(?:ns|µs|us|ms|s)"
    r"\s+(?P<median>[\d.]+)\s*(?P<unit>ns|µs|us|ms|s)"
    r"\s+[\d.]+\s*(?:ns|µs|us|ms|s)\s*\]"
)

UNIT_TO_US = {"ns": 1e-3, "µs": 1.0, "us": 1.0, "ms": 1e3, "s": 1e6}


def parse_run(path: str) -> dict[str, float]:
    """Benchmark id -> median in microseconds, from a bench output file."""
    medians: dict[str, float] = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            m = TIME_LINE.match(line.strip())
            if m:
                medians[m.group("id")] = float(m.group("median")) * UNIT_TO_US[
                    m.group("unit")
                ]
    return medians


def parse_baseline(path: str) -> dict[str, float]:
    """Benchmark id -> median in microseconds, from BENCH_mpc.json."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    out: dict[str, float] = {}
    for bench_id, entry in doc.get("benchmarks", {}).items():
        if "median_us" in entry:
            out[bench_id] = float(entry["median_us"])
        elif "median_ms" in entry:
            out[bench_id] = float(entry["median_ms"]) * 1e3
        elif "median_s" in entry:
            out[bench_id] = float(entry["median_s"]) * 1e6
        else:
            raise ValueError(f"{bench_id}: no median_us/median_ms/median_s key")
    return out


def fmt_us(us: float) -> str:
    if us < 1.0:
        return f"{us * 1e3:.2f} ns"
    if us < 1e3:
        return f"{us:.2f} µs"
    if us < 1e6:
        return f"{us / 1e3:.2f} ms"
    return f"{us / 1e6:.3f} s"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("run", help="file holding `cargo bench` stdout")
    ap.add_argument("--baseline", default="BENCH_mpc.json")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="maximum allowed fractional median regression (default 0.20)",
    )
    args = ap.parse_args()

    run = parse_run(args.run)
    if not run:
        print(f"error: no benchmark timing lines found in {args.run}")
        return 2
    baseline = parse_baseline(args.baseline)

    failures: list[str] = []
    width = max(len(b) for b in set(run) | set(baseline))
    for bench_id in sorted(set(run) | set(baseline)):
        if bench_id not in run:
            failures.append(bench_id)
            print(f"{bench_id:<{width}}  MISSING from run (baseline "
                  f"{fmt_us(baseline[bench_id])})")
            continue
        if bench_id not in baseline:
            print(f"{bench_id:<{width}}  new: {fmt_us(run[bench_id])} "
                  "(not in baseline, not gated)")
            continue
        ratio = run[bench_id] / baseline[bench_id]
        status = "ok"
        if ratio > 1.0 + args.threshold:
            status = "REGRESSION"
            failures.append(bench_id)
        print(
            f"{bench_id:<{width}}  {fmt_us(run[bench_id]):>10} vs baseline "
            f"{fmt_us(baseline[bench_id]):>10}  ({ratio - 1.0:+.1%})  {status}"
        )

    if failures:
        print(
            f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
            f"{args.threshold:.0%} or went missing: {', '.join(failures)}"
        )
        return 1
    print(f"\nOK: all medians within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
