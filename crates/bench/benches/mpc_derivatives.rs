//! Analytic vs finite-difference MPC derivative benchmarks.
//!
//! The MPC NLP supplies an adjoint objective gradient and a
//! forward-sensitivity inequality Jacobian; the solver's fallback is
//! central differencing (2·n extra rollouts per gradient, another 2·n per
//! Jacobian). These benches pin the speedup at the two granularities that
//! matter: one `MpcController::control` solve and a whole
//! evaluation-sweep cell. `BENCH_mpc.json` at the repository root records
//! the baseline medians.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ev_bench::{bench_context, bench_preview, paper_mpc, run_mpc_cell};
use ev_control::{ClimateController, MpcController};
use ev_core::EvParams;
use ev_drive::DriveCycle;
use ev_optim::NlpProblem;

/// One gradient + inequality-Jacobian evaluation of the paper MPC's NLP
/// (32 variables, 104 constraints): the analytic adjoint/sensitivity
/// sweeps against the central-difference fallback the solver would
/// otherwise use. This is where the exact-derivative speedup lives —
/// end-to-end solves dilute it with QP time.
fn bench_derivative_eval(c: &mut Criterion) {
    let params = EvParams::nissan_leaf_like();
    let mpc = paper_mpc(&params, false);
    let preview = bench_preview(64);
    let ctx = bench_context(&preview);
    let nlp = mpc.nlp(&ctx);
    let n = nlp.num_vars();
    let m = nlp.num_ineq();
    let base: Vec<f64> = (0..n)
        .map(|i| [2.0, 1.8, 0.5, 1.2][i % 4] + 0.01 * (i % 3) as f64)
        .collect();

    let mut group = c.benchmark_group("mpc_derivatives");
    group.sample_size(20);
    group.bench_function("derivative_eval_analytic", |b| {
        let mut z = base.clone();
        let mut grad = vec![0.0; n];
        b.iter(|| {
            // Nudge the iterate so the shared-rollout cache cannot hide
            // the forward pass.
            z[0] += 1e-9;
            nlp.gradient(black_box(&z), &mut grad);
            black_box(nlp.ineq_jacobian(black_box(&z)));
            black_box(grad[0])
        })
    });
    group.bench_function("derivative_eval_finite_diff", |b| {
        let mut z = base.clone();
        b.iter(|| {
            z[0] += 1e-9;
            let g = ev_optim::finite_diff::gradient(&|p: &[f64]| nlp.objective(p), &z);
            let j = ev_optim::finite_diff::jacobian(
                &|p: &[f64], out: &mut [f64]| nlp.ineq_constraints(p, out),
                &z,
                m,
            );
            black_box((g[0], j[0][0]))
        })
    });
    group.finish();
}

/// One full MPC solve (horizon 8, re-solve every call), analytic vs
/// finite-difference derivatives on the same hot-day context, plus an
/// analytic variant with a live telemetry registry attached and one with
/// an explicitly attached — but disabled — flight recorder. The
/// observability acceptance bar is that `control_step_analytic` and
/// `control_step_flight_recorder_disabled` stay at the
/// `control_step_analytic` baseline in `BENCH_mpc.json` (both inert
/// paths must cost nothing); `control_step_telemetry` pins what enabling
/// the registry costs.
fn bench_control_step(c: &mut Criterion) {
    let preview = bench_preview(64);
    let mut group = c.benchmark_group("mpc_derivatives");
    group.sample_size(15);
    for (label, fd, telemetry) in [
        ("control_step_analytic", false, false),
        ("control_step_finite_diff", true, false),
        ("control_step_telemetry", false, true),
        ("control_step_flight_recorder_disabled", false, false),
    ] {
        group.bench_function(label, |b| {
            let params = EvParams::nissan_leaf_like();
            let registry = ev_telemetry::Registry::with_enabled(telemetry);
            let recorder = ev_telemetry::FlightRecorder::disabled();
            let mut builder = MpcController::builder(params.hvac_model(), params.limits())
                .target(params.target)
                .horizon(8)
                .recompute_every(1)
                .battery(params.mpc_battery_model())
                .accessory_power(params.accessory_power)
                .finite_difference_derivatives(fd)
                .telemetry(&registry);
            if label == "control_step_flight_recorder_disabled" {
                builder = builder.flight_recorder(&recorder);
            }
            let mut mpc = builder.build().expect("valid config");
            let ctx = bench_context(&preview);
            b.iter(|| black_box(mpc.control(black_box(&ctx))))
        });
    }
    group.finish();
}

/// The observability tax of the labeled fleet instrumentation: the same
/// telemetry-enabled control step as `control_step_telemetry`, but paid
/// the way one fleet loadgen step pays it — the registry is
/// shard-scoped (every MPC series carries a `shard` label, so each
/// counter/histogram lookup went through the labeled series map at mint
/// time), a live trace ring records an `mpc_solve` span per solve, and
/// the step runs under the shard worker's per-command latency span.
/// Acceptance bar: within 5% of the `control_step_telemetry` baseline
/// in `BENCH_mpc.json`.
fn bench_fleet_step_labeled_metrics(c: &mut Criterion) {
    let preview = bench_preview(64);
    let mut group = c.benchmark_group("mpc_derivatives");
    group.sample_size(15);
    group.bench_function("fleet_step_labeled_metrics", |b| {
        let params = EvParams::nissan_leaf_like();
        let registry = ev_telemetry::Registry::enabled().scoped(&[("shard", "3")]);
        let trace = ev_telemetry::TraceRing::enabled(4096).scoped(3, 42);
        let step_latency = registry.histogram_with(
            "fleet_cmd_seconds",
            ev_telemetry::HistogramSpec::latency_seconds(),
            &[("cmd", "step")],
        );
        let mut mpc = MpcController::builder(params.hvac_model(), params.limits())
            .target(params.target)
            .horizon(8)
            .recompute_every(1)
            .battery(params.mpc_battery_model())
            .accessory_power(params.accessory_power)
            .telemetry(&registry)
            .trace(&trace)
            .build()
            .expect("valid config");
        let ctx = bench_context(&preview);
        b.iter(|| {
            let span = step_latency.start_span();
            let out = black_box(mpc.control(black_box(&ctx)));
            drop(span);
            out
        })
    });
    group.finish();
}

/// The exemplar tax on top of the labeled path: identical to
/// `fleet_step_labeled_metrics` except the per-step latency span is
/// stamped with the trace span id the way the fleet engine stamps it
/// (`finish_with_exemplar`), so every observation also races the
/// seqlocked per-bucket exemplar slot. Acceptance bar: within 5% of
/// the `fleet_step_labeled_metrics` baseline in `BENCH_mpc.json`.
fn bench_fleet_step_exemplar_metrics(c: &mut Criterion) {
    let preview = bench_preview(64);
    let mut group = c.benchmark_group("mpc_derivatives");
    group.sample_size(15);
    group.bench_function("fleet_step_exemplar_metrics", |b| {
        let params = EvParams::nissan_leaf_like();
        let registry = ev_telemetry::Registry::enabled().scoped(&[("shard", "3")]);
        let trace = ev_telemetry::TraceRing::enabled(4096).scoped(3, 42);
        let step_id = trace.intern("step");
        let step_latency = registry.histogram_with(
            "fleet_cmd_seconds",
            ev_telemetry::HistogramSpec::latency_seconds(),
            &[("cmd", "step")],
        );
        let mut mpc = MpcController::builder(params.hvac_model(), params.limits())
            .target(params.target)
            .horizon(8)
            .recompute_every(1)
            .battery(params.mpc_battery_model())
            .accessory_power(params.accessory_power)
            .telemetry(&registry)
            .trace(&trace)
            .build()
            .expect("valid config");
        let ctx = bench_context(&preview);
        b.iter(|| {
            let span = step_latency.start_span();
            let trace_span = trace.span(step_id);
            let out = black_box(mpc.control(black_box(&ctx)));
            span.finish_with_exemplar(trace_span.finish_id());
            out
        })
    });
    group.finish();
}

/// Horizon-scaling arms for the structure-exploiting KKT path: the same
/// hot-day control step at horizons 32/64/128, condensed-dense versus
/// multiple-shooting banded (`.multiple_shooting(true)` declares the
/// per-stage `QpStructure`, routing the interior-point KKT solves through
/// the block-banded LDLᵀ with the stage-interleaved ordering and the
/// cross-step multiplier warm start). The controller is settled into
/// receding-horizon steady state before timing, as in deployment, so the
/// warm-start cache is live. The dense arm stops at horizon 32 — the
/// O((5N)³) factorization already costs milliseconds there, which is the
/// point of the comparison — while the banded arms extend to 128 to pin
/// the near-linear scaling claim in `BENCH_mpc.json`.
fn bench_horizon_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc_derivatives");
    group.sample_size(10);
    for (label, horizon, ms) in [
        ("control_step_h32_dense", 32usize, false),
        ("control_step_h32_banded", 32, true),
        ("control_step_h64_banded", 64, true),
        ("control_step_h128_banded", 128, true),
    ] {
        group.bench_function(label, |b| {
            let params = EvParams::nissan_leaf_like();
            let preview = bench_preview(horizon.max(64));
            let mut mpc = MpcController::builder(params.hvac_model(), params.limits())
                .target(params.target)
                .horizon(horizon)
                .recompute_every(1)
                .battery(params.mpc_battery_model())
                .accessory_power(params.accessory_power)
                .multiple_shooting(ms)
                .build()
                .expect("valid config");
            let ctx = bench_context(&preview);
            for _ in 0..5 {
                mpc.control(&ctx);
            }
            b.iter(|| black_box(mpc.control(black_box(&ctx))))
        });
    }
    group.finish();
}

/// One whole ECE-15 × MPC evaluation-sweep cell (the granularity
/// `evaluation_sweep` parallelizes over), analytic vs finite-difference.
fn bench_sweep_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpc_derivatives");
    group.sample_size(2);
    for (label, fd) in [
        ("sweep_cell_ece15_analytic", false),
        ("sweep_cell_ece15_finite_diff", true),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| black_box(run_mpc_cell(&DriveCycle::ece15(), 35.0, fd)))
        });
    }
    group.finish();
}

criterion_group!(
    mpc_derivatives,
    bench_derivative_eval,
    bench_control_step,
    bench_fleet_step_labeled_metrics,
    bench_fleet_step_exemplar_metrics,
    bench_horizon_scaling,
    bench_sweep_cell
);
criterion_main!(mpc_derivatives);
