* QP with a ranged E row (E + RANGES turns the equality into an
* interval): min (x-3)^2 + (y-3)^2 s.t. 2 <= x + y <= 4, x, y free.
* Optimum (2, 2) on the upper face, f* = 2.
NAME QPRANGESEQ
ROWS
 N OBJ
 E SUM
COLUMNS
 X OBJ -6.0 SUM 1.0
 Y OBJ -6.0 SUM 1.0
RHS
 RHS SUM 2.0 OBJ -18.0
RANGES
 RNG SUM 2.0
BOUNDS
 FR BND X
 FR BND Y
QUADOBJ
 X X 2.0
 Y Y 2.0
ENDATA
