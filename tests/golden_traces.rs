//! Golden-trace snapshot suite: pins the step-level behavior of every
//! (cycle × controller) cell of the paper's urban/mixed comparison to
//! baselines checked into `tests/golden/`.
//!
//! A failure names the first diverging step and channel — the cheapest
//! possible bisect of a behavioral change. After an *intentional* model
//! change, re-baseline with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_traces
//! ```

use std::path::PathBuf;

use ev_testkit::{golden_filename, run_checked, verify_or_update, GoldenTrace};
use evclimate::core::experiments::{experiment_params, profile_at};
use evclimate::core::ControllerKind;
use evclimate::prelude::*;

/// The snapshotted matrix: both ECE cycles × the paper's three
/// methodologies.
const CYCLES: [fn() -> DriveCycle; 2] = [DriveCycle::ece15, DriveCycle::ece_eudc];
const CONTROLLERS: [ControllerKind; 3] = [
    ControllerKind::OnOff,
    ControllerKind::Fuzzy,
    ControllerKind::Mpc,
];
const AMBIENT_C: f64 = 35.0;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

fn snapshot(cycle: &DriveCycle, kind: ControllerKind) -> GoldenTrace {
    let mut params = experiment_params();
    params.initial_cabin = Some(params.target);
    let profile = profile_at(cycle, AMBIENT_C);
    let (result, trace, report) = run_checked(&params, profile, kind);
    // The golden baselines must only ever pin physically valid traces.
    report.assert_clean();
    GoldenTrace::from_records(
        trace.profile(),
        trace.controller(),
        result.dt,
        trace.records(),
    )
}

#[test]
fn golden_traces_match_baselines() {
    let dir = golden_dir();
    let mut failures = Vec::new();
    for cycle in CYCLES.map(|c| c()) {
        for kind in CONTROLLERS {
            let actual = snapshot(&cycle, kind);
            let path = dir.join(golden_filename(&actual.profile, &actual.controller));
            if let Err(e) = verify_or_update(&path, &actual) {
                failures.push(e);
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn traces_are_bit_identical_across_runs() {
    // Determinism at full step-level resolution: two independent runs of
    // the same cell must produce byte-for-byte identical traces.
    let params = {
        let mut p = experiment_params();
        p.initial_cabin = Some(p.target);
        p
    };
    for kind in CONTROLLERS {
        let profile = || profile_at(&DriveCycle::ece15(), AMBIENT_C);
        let (_, first, _) = ev_testkit::run_checked(&params, profile(), kind);
        let (_, second, _) = ev_testkit::run_checked(&params, profile(), kind);
        assert_eq!(
            first.records(),
            second.records(),
            "{kind:?}: traces must be bit-identical"
        );
    }
}

#[test]
fn baselines_cover_the_whole_matrix() {
    // Every cell the suite claims to pin actually has a checked-in file.
    let dir = golden_dir();
    for cycle in CYCLES.map(|c| c()) {
        for kind in CONTROLLERS {
            let params = experiment_params();
            let name = kind
                .instantiate(&params)
                .expect("controller instantiates")
                .name()
                .to_owned();
            let path = dir.join(golden_filename(cycle.name(), &name));
            assert!(
                path.exists(),
                "missing golden baseline {} — run UPDATE_GOLDEN=1 cargo test --test golden_traces",
                path.display()
            );
        }
    }
}
