//! ODE integration for low-order vehicle thermal and electrical models.
//!
//! The DAC 2015 climate-control paper models every EV component — cabin
//! thermal dynamics, power train, battery — with low-order ordinary
//! differential equations (its Section II). This crate provides the
//! integrators that advance those models in the co-simulation engine:
//!
//! * fixed-step explicit [`euler`] and classic fourth-order [`rk4`]
//!   one-step maps,
//! * an adaptive Runge–Kutta–Fehlberg 4(5) driver ([`Rkf45`]) with PI step
//!   control for validation runs,
//! * the implicit [`trapezoidal`] one-step map for *linear-in-state*
//!   scalar dynamics, matching exactly the discretization the paper's MPC
//!   applies to the cabin equation (its Eq. 18–19),
//! * an [`integrate`] driver that collects a [`Trajectory`].
//!
//! # Examples
//!
//! Exponential decay `x' = -x` integrated over one unit of time:
//!
//! ```
//! use ev_ode::{integrate, OdeSystem, StepMethod};
//!
//! struct Decay;
//! impl OdeSystem for Decay {
//!     fn dim(&self) -> usize { 1 }
//!     fn rhs(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
//!         dx[0] = -x[0];
//!     }
//! }
//!
//! let traj = integrate(&Decay, &[1.0], 0.0, 1.0, 1e-3, StepMethod::Rk4);
//! let x_end = traj.last_state()[0];
//! assert!((x_end - (-1.0f64).exp()).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod stepper;
mod trajectory;

pub use adaptive::{AdaptiveOptions, Rkf45, StepError};
pub use stepper::{euler, rk4, trapezoidal, StepMethod};
pub use trajectory::Trajectory;

/// A continuous-time dynamical system `x' = f(t, x)`.
///
/// Implementors describe the right-hand side of the ODE; integrators in
/// this crate advance it. The state is a flat `&[f64]` so that systems of
/// any (small) dimension share one interface.
///
/// # Examples
///
/// ```
/// use ev_ode::OdeSystem;
///
/// /// Harmonic oscillator x'' = -x as a first-order system.
/// struct Oscillator;
/// impl OdeSystem for Oscillator {
///     fn dim(&self) -> usize { 2 }
///     fn rhs(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
///         dx[0] = x[1];
///         dx[1] = -x[0];
///     }
/// }
/// ```
pub trait OdeSystem {
    /// Dimension of the state vector.
    fn dim(&self) -> usize;

    /// Evaluates the right-hand side `f(t, x)` into `dx`.
    ///
    /// `dx` has length [`OdeSystem::dim`]; implementations must write every
    /// component.
    fn rhs(&self, t: f64, x: &[f64], dx: &mut [f64]);
}

/// Integrates `system` from `t0` to `t1` with fixed step `dt`, collecting
/// every accepted state into a [`Trajectory`].
///
/// The final step is shortened so the trajectory ends exactly at `t1`.
///
/// # Panics
///
/// Panics if `dt <= 0`, `t1 < t0`, or `x0.len() != system.dim()`.
///
/// # Examples
///
/// ```
/// use ev_ode::{integrate, OdeSystem, StepMethod};
///
/// struct Constant;
/// impl OdeSystem for Constant {
///     fn dim(&self) -> usize { 1 }
///     fn rhs(&self, _t: f64, _x: &[f64], dx: &mut [f64]) { dx[0] = 2.0; }
/// }
///
/// let traj = integrate(&Constant, &[0.0], 0.0, 5.0, 0.5, StepMethod::Euler);
/// assert!((traj.last_state()[0] - 10.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn integrate<S: OdeSystem>(
    system: &S,
    x0: &[f64],
    t0: f64,
    t1: f64,
    dt: f64,
    method: StepMethod,
) -> Trajectory {
    assert!(dt > 0.0, "integrate: dt must be positive");
    assert!(t1 >= t0, "integrate: t1 must be >= t0");
    assert_eq!(
        x0.len(),
        system.dim(),
        "integrate: state dimension mismatch"
    );

    let mut traj = Trajectory::new(system.dim());
    let mut t = t0;
    let mut x = x0.to_vec();
    traj.push(t, &x);
    while t < t1 {
        let h = dt.min(t1 - t);
        if h <= f64::EPSILON * t.abs().max(1.0) {
            break;
        }
        match method {
            StepMethod::Euler => euler(system, t, &mut x, h),
            StepMethod::Rk4 => rk4(system, t, &mut x, h),
        }
        t += h;
        traj.push(t, &x);
    }
    traj
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Decay;
    impl OdeSystem for Decay {
        fn dim(&self) -> usize {
            1
        }
        fn rhs(&self, _t: f64, x: &[f64], dx: &mut [f64]) {
            dx[0] = -x[0];
        }
    }

    #[test]
    fn integrate_hits_end_time_exactly() {
        let traj = integrate(&Decay, &[1.0], 0.0, 1.05, 0.1, StepMethod::Rk4);
        let times = traj.times();
        assert!((times[times.len() - 1] - 1.05).abs() < 1e-12);
    }

    #[test]
    fn rk4_beats_euler_on_decay() {
        let exact = (-1.0f64).exp();
        let e = integrate(&Decay, &[1.0], 0.0, 1.0, 0.1, StepMethod::Euler).last_state()[0];
        let r = integrate(&Decay, &[1.0], 0.0, 1.0, 0.1, StepMethod::Rk4).last_state()[0];
        assert!((r - exact).abs() < (e - exact).abs() / 100.0);
    }

    #[test]
    fn zero_span_returns_initial_state_only() {
        let traj = integrate(&Decay, &[3.0], 2.0, 2.0, 0.1, StepMethod::Euler);
        assert_eq!(traj.len(), 1);
        assert_eq!(traj.last_state(), &[3.0]);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn integrate_rejects_bad_dt() {
        let _ = integrate(&Decay, &[1.0], 0.0, 1.0, 0.0, StepMethod::Euler);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn integrate_rejects_bad_state() {
        let _ = integrate(&Decay, &[1.0, 2.0], 0.0, 1.0, 0.1, StepMethod::Euler);
    }
}
