//! `repro` — regenerates every table and figure of the paper's
//! evaluation section from live simulations.
//!
//! ```text
//! repro fig1      EV vs ICE power split across ambient temperatures
//! repro fig5      cabin-temperature traces per controller
//! repro fig6      MPC pre-cooling against the motor-power profile
//! repro fig7      SoH degradation per drive profile
//! repro fig8      average HVAC power per drive profile
//! repro table1      HVAC power & SoH improvement vs ambient temperature
//! repro ablation    MPC horizon / lifetime-weight ablations (extension)
//! repro robustness  forecast-noise robustness sweep (extension)
//! repro fullcycle   drive + CC-CV recharge ΔSoH comparison (extension)
//! repro all         everything above, in order
//! ```

use std::process::ExitCode;

use ev_core::experiments::{
    ablation_horizon, ablation_w2, evaluation_sweep_run, fig1, fig5, fig6, fig7_from, fig8_from,
    full_cycle, render_ablation, render_fig1, render_fig5, render_fig6, render_fig7, render_fig8,
    render_full_cycle, render_robustness, render_sweep_report, render_table1, robustness_sweep,
    table1, COMPARISON_AMBIENT_C,
};
use ev_drive::DriveCycle;

fn usage() -> &'static str {
    "usage: repro <fig1|fig5|fig6|fig7|fig8|table1|ablation|robustness|fullcycle|all>"
}

/// The Fig. 7/8 evaluation matrix with telemetry on, so the figures come
/// with a solver-health run report.
fn instrumented_sweep() -> ev_core::experiments::SweepResult {
    evaluation_sweep_run(
        COMPARISON_AMBIENT_C,
        &DriveCycle::paper_evaluation_set(),
        true,
    )
}

fn run(which: &str) -> Result<(), String> {
    match which {
        "fig1" => println!("{}", render_fig1(&fig1())),
        "fig5" => println!("{}", render_fig5(&fig5())),
        "fig6" => println!("{}", render_fig6(&fig6())),
        "fig7" => {
            let sweep = instrumented_sweep();
            println!("{}", render_fig7(&fig7_from(&sweep.completed())));
            println!("{}", render_sweep_report(&sweep, true));
        }
        "fig8" => {
            let sweep = instrumented_sweep();
            println!("{}", render_fig8(&fig8_from(&sweep.completed())));
            println!("{}", render_sweep_report(&sweep, true));
        }
        "table1" => println!("{}", render_table1(&table1())),
        "ablation" => {
            println!(
                "{}",
                render_ablation("Ablation — MPC horizon", &ablation_horizon())
            );
            println!(
                "{}",
                render_ablation("Ablation — lifetime weight w2", &ablation_w2())
            );
        }
        "robustness" => println!("{}", render_robustness(&robustness_sweep())),
        "fullcycle" => println!("{}", render_full_cycle(&full_cycle())),
        "all" => {
            println!("{}", render_fig1(&fig1()));
            println!("{}", render_fig5(&fig5()));
            println!("{}", render_fig6(&fig6()));
            // Figs. 7 and 8 share one sweep; run it once.
            let sweep = instrumented_sweep();
            let cells = sweep.completed();
            println!("{}", render_fig7(&fig7_from(&cells)));
            println!("{}", render_fig8(&fig8_from(&cells)));
            println!("{}", render_sweep_report(&sweep, true));
            println!("{}", render_table1(&table1()));
            println!(
                "{}",
                render_ablation("Ablation — MPC horizon", &ablation_horizon())
            );
            println!(
                "{}",
                render_ablation("Ablation — lifetime weight w2", &ablation_w2())
            );
            println!("{}", render_robustness(&robustness_sweep()));
            println!("{}", render_full_cycle(&full_cycle()));
        }
        other => return Err(format!("unknown experiment '{other}'\n{}", usage())),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = match args.first() {
        Some(w) => w.as_str(),
        None => {
            eprintln!("{}", usage());
            return ExitCode::FAILURE;
        }
    };
    match run(which) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
